#include "util/checkpoint.hpp"

#include <array>
#include <bit>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <set>

#if defined(__unix__) || defined(__APPLE__)
#define TZGEO_CHECKPOINT_POSIX 1
#include <fcntl.h>
#include <unistd.h>
#endif

namespace tzgeo::util {

namespace {

constexpr char kMagic[4] = {'T', 'Z', 'C', 'K'};
constexpr char kManifestMagic[4] = {'T', 'Z', 'C', 'M'};
constexpr std::size_t kHeaderSize = 4 + 4 + 8;  // magic + version + payload_size
constexpr std::size_t kTrailerSize = 4;         // crc32
constexpr std::size_t kManifestHeaderSize = 4 + 4 + 4;  // magic + version + entry_count

/// Reflected CRC-32 table for polynomial 0xEDB88320, built once.
[[nodiscard]] const std::array<std::uint32_t, 256>& crc_table() {
  static const std::array<std::uint32_t, 256> table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1u) != 0 ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  return table;
}

void append_u32(std::string& out, std::uint32_t value) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<char>((value >> (8 * i)) & 0xFFu));
}

void append_u64(std::string& out, std::uint64_t value) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<char>((value >> (8 * i)) & 0xFFu));
}

[[nodiscard]] std::uint32_t load_u32(const char* bytes) noexcept {
  std::uint32_t value = 0;
  for (int i = 3; i >= 0; --i) {
    value = (value << 8) | static_cast<std::uint8_t>(bytes[i]);
  }
  return value;
}

[[nodiscard]] std::uint64_t load_u64(const char* bytes) noexcept {
  std::uint64_t value = 0;
  for (int i = 7; i >= 0; --i) {
    value = (value << 8) | static_cast<std::uint8_t>(bytes[i]);
  }
  return value;
}

#ifdef TZGEO_CHECKPOINT_POSIX
/// fsync an already-open fd, converting failure into CheckpointError.
void fsync_or_throw(int fd, const std::string& what) {
  if (::fsync(fd) != 0) {
    throw CheckpointError(CheckpointErrorCode::kIo, "fsync " + what + " failed");
  }
}
#endif

/// Stages `blob` to `<path>.tmp`, fsyncs it, renames over `path`, and
/// fsyncs the containing directory — the full power-loss-safe sequence.
/// On any failure the tmp file is removed and `path` is left untouched.
void write_file_atomic(const std::string& path, std::string_view blob) {
  const std::string tmp = path + ".tmp";
#ifdef TZGEO_CHECKPOINT_POSIX
  const auto fail = [&tmp](const std::string& message) {
    std::error_code ignored;
    std::filesystem::remove(tmp, ignored);
    throw CheckpointError(CheckpointErrorCode::kIo, message);
  };
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) fail("cannot open " + tmp + " for writing");
  std::size_t written = 0;
  while (written < blob.size()) {
    const ::ssize_t n = ::write(fd, blob.data() + written, blob.size() - written);
    if (n < 0) {
      ::close(fd);
      fail("short write to " + tmp);
    }
    written += static_cast<std::size_t>(n);
  }
  // fsync the data before the rename: otherwise the rename can become
  // durable while the bytes it points at are still only in page cache.
  try {
    fsync_or_throw(fd, tmp);
  } catch (const CheckpointError&) {
    ::close(fd);
    fail("fsync " + tmp + " failed");
  }
  if (::close(fd) != 0) fail("close " + tmp + " failed");
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) fail("rename " + tmp + " -> " + path + ": " + ec.message());
  // fsync the directory so the rename itself survives power loss (a
  // renamed entry lives in the directory's data blocks, not the file's).
  const std::filesystem::path parent = std::filesystem::path(path).parent_path();
  const std::string dir = parent.empty() ? std::string{"."} : parent.string();
  const int dir_fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dir_fd < 0) {
    throw CheckpointError(CheckpointErrorCode::kIo, "cannot open directory " + dir);
  }
  try {
    fsync_or_throw(dir_fd, dir);
  } catch (const CheckpointError&) {
    ::close(dir_fd);
    throw;
  }
  ::close(dir_fd);
#else
  // Fallback without POSIX fds: atomic rename only (no directory fsync).
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      throw CheckpointError(CheckpointErrorCode::kIo, "cannot open " + tmp + " for writing");
    }
    out.write(blob.data(), static_cast<std::streamsize>(blob.size()));
    out.flush();
    if (!out) {
      out.close();
      std::error_code ignored;
      std::filesystem::remove(tmp, ignored);
      throw CheckpointError(CheckpointErrorCode::kIo, "short write to " + tmp);
    }
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    std::error_code ignored;
    std::filesystem::remove(tmp, ignored);
    throw CheckpointError(CheckpointErrorCode::kIo,
                          "rename " + tmp + " -> " + path + ": " + ec.message());
  }
#endif
}

/// Reads the whole file; throws CheckpointError{kIo} on open/read errors.
[[nodiscard]] std::string read_file_bytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw CheckpointError(CheckpointErrorCode::kIo, "cannot open " + path);
  }
  std::string blob{std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
  if (in.bad()) {
    throw CheckpointError(CheckpointErrorCode::kIo, "read error on " + path);
  }
  return blob;
}

}  // namespace

const char* to_string(CheckpointErrorCode code) noexcept {
  switch (code) {
    case CheckpointErrorCode::kIo: return "io";
    case CheckpointErrorCode::kBadMagic: return "bad-magic";
    case CheckpointErrorCode::kBadCrc: return "bad-crc";
    case CheckpointErrorCode::kBadVersion: return "bad-version";
    case CheckpointErrorCode::kTruncated: return "truncated";
    case CheckpointErrorCode::kMalformed: return "malformed";
  }
  return "unknown";
}

CheckpointError::CheckpointError(CheckpointErrorCode code, const std::string& detail)
    : std::runtime_error("checkpoint " + std::string{to_string(code)} + ": " + detail),
      code_(code) {}

std::uint32_t crc32(std::string_view bytes) noexcept {
  const auto& table = crc_table();
  std::uint32_t crc = 0xFFFFFFFFu;
  for (const char c : bytes) {
    crc = table[(crc ^ static_cast<std::uint8_t>(c)) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

void ByteWriter::u8(std::uint8_t value) { data_.push_back(static_cast<char>(value)); }
void ByteWriter::u32(std::uint32_t value) { append_u32(data_, value); }
void ByteWriter::u64(std::uint64_t value) { append_u64(data_, value); }
void ByteWriter::i64(std::int64_t value) { append_u64(data_, static_cast<std::uint64_t>(value)); }
void ByteWriter::f64(double value) { append_u64(data_, std::bit_cast<std::uint64_t>(value)); }

void ByteWriter::str(std::string_view value) {
  append_u64(data_, value.size());
  data_.append(value);
}

void ByteReader::need(std::size_t bytes) const {
  if (data_.size() - pos_ < bytes) {
    throw CheckpointError(CheckpointErrorCode::kTruncated,
                          "payload ends " + std::to_string(bytes - (data_.size() - pos_)) +
                              " byte(s) short");
  }
}

std::uint8_t ByteReader::u8() {
  need(1);
  return static_cast<std::uint8_t>(data_[pos_++]);
}

std::uint32_t ByteReader::u32() {
  need(4);
  const std::uint32_t value = load_u32(data_.data() + pos_);
  pos_ += 4;
  return value;
}

std::uint64_t ByteReader::u64() {
  need(8);
  const std::uint64_t value = load_u64(data_.data() + pos_);
  pos_ += 8;
  return value;
}

std::int64_t ByteReader::i64() { return static_cast<std::int64_t>(u64()); }

double ByteReader::f64() { return std::bit_cast<double>(u64()); }

std::string ByteReader::str() {
  const std::uint64_t size = u64();
  need(size);
  std::string value{data_.substr(pos_, size)};
  pos_ += size;
  return value;
}

void write_checkpoint_file(const std::string& path, std::string_view payload,
                           std::uint32_t version) {
  std::string blob;
  blob.reserve(kHeaderSize + payload.size() + kTrailerSize);
  blob.append(kMagic, sizeof kMagic);
  append_u32(blob, version);
  append_u64(blob, payload.size());
  blob.append(payload);
  append_u32(blob, crc32(blob));

  write_file_atomic(path, blob);
}

std::string read_checkpoint_file(const std::string& path, std::uint32_t expected_version) {
  const std::string blob = read_file_bytes(path);

  if (blob.size() < kHeaderSize + kTrailerSize) {
    throw CheckpointError(CheckpointErrorCode::kTruncated,
                          path + " holds " + std::to_string(blob.size()) +
                              " byte(s), below the minimum frame");
  }
  if (std::memcmp(blob.data(), kMagic, sizeof kMagic) != 0) {
    throw CheckpointError(CheckpointErrorCode::kBadMagic, path + " is not a checkpoint file");
  }
  const std::uint64_t payload_size = load_u64(blob.data() + 8);
  if (blob.size() != kHeaderSize + payload_size + kTrailerSize) {
    throw CheckpointError(CheckpointErrorCode::kTruncated,
                          path + " frame length mismatch (header promises " +
                              std::to_string(payload_size) + " payload bytes)");
  }
  const std::uint32_t stored_crc = load_u32(blob.data() + blob.size() - kTrailerSize);
  const std::uint32_t actual_crc =
      crc32(std::string_view{blob}.substr(0, blob.size() - kTrailerSize));
  if (stored_crc != actual_crc) {
    throw CheckpointError(CheckpointErrorCode::kBadCrc, path + " failed CRC verification");
  }
  const std::uint32_t version = load_u32(blob.data() + 4);
  if (version != expected_version) {
    throw CheckpointError(CheckpointErrorCode::kBadVersion,
                          path + " is format v" + std::to_string(version) + ", expected v" +
                              std::to_string(expected_version));
  }
  return blob.substr(kHeaderSize, payload_size);
}

void write_manifest_checkpoint_file(const std::string& path,
                                    const std::vector<ManifestEntry>& entries,
                                    std::uint32_t version) {
  std::set<std::string_view> keys;
  for (const ManifestEntry& entry : entries) {
    if (!keys.insert(entry.key).second) {
      throw CheckpointError(CheckpointErrorCode::kMalformed,
                            "duplicate manifest key '" + entry.key + "'");
    }
  }

  std::string blob;
  blob.append(kManifestMagic, sizeof kManifestMagic);
  append_u32(blob, version);
  append_u32(blob, static_cast<std::uint32_t>(entries.size()));
  for (const ManifestEntry& entry : entries) {
    append_u64(blob, entry.key.size());
    blob.append(entry.key);
    append_u64(blob, entry.payload.size());
    append_u32(blob, crc32(entry.payload));
  }
  append_u32(blob, crc32(blob));  // directory CRC: magic through directory
  for (const ManifestEntry& entry : entries) blob.append(entry.payload);

  write_file_atomic(path, blob);
}

std::vector<ManifestEntryStatus> read_manifest_checkpoint_file(const std::string& path,
                                                               std::uint32_t expected_version) {
  const std::string blob = read_file_bytes(path);
  if (blob.size() < kManifestHeaderSize) {
    throw CheckpointError(CheckpointErrorCode::kTruncated,
                          path + " holds " + std::to_string(blob.size()) +
                              " byte(s), below the minimum manifest frame");
  }
  if (std::memcmp(blob.data(), kManifestMagic, sizeof kManifestMagic) != 0) {
    throw CheckpointError(CheckpointErrorCode::kBadMagic,
                          path + " is not a manifest checkpoint file");
  }
  const std::uint32_t version = load_u32(blob.data() + 4);
  if (version != expected_version) {
    throw CheckpointError(CheckpointErrorCode::kBadVersion,
                          path + " is format v" + std::to_string(version) + ", expected v" +
                              std::to_string(expected_version));
  }
  const std::uint32_t entry_count = load_u32(blob.data() + 8);

  // Parse the directory with bounds checks; any shortfall here is a
  // whole-file error (the directory is the index to everything else).
  struct DirectoryRow {
    std::string key;
    std::uint64_t payload_size = 0;
    std::uint32_t payload_crc = 0;
  };
  std::vector<DirectoryRow> directory;
  directory.reserve(entry_count);
  std::size_t pos = kManifestHeaderSize;
  const auto need = [&](std::size_t bytes) {
    if (blob.size() - pos < bytes) {
      throw CheckpointError(CheckpointErrorCode::kTruncated,
                            path + " manifest directory ends mid-entry");
    }
  };
  std::set<std::string_view> keys;
  for (std::uint32_t i = 0; i < entry_count; ++i) {
    DirectoryRow row;
    need(8);
    const std::uint64_t key_len = load_u64(blob.data() + pos);
    pos += 8;
    need(key_len);
    row.key = blob.substr(pos, key_len);
    pos += key_len;
    need(8 + 4);
    row.payload_size = load_u64(blob.data() + pos);
    pos += 8;
    row.payload_crc = load_u32(blob.data() + pos);
    pos += 4;
    directory.push_back(std::move(row));
  }
  need(4);
  const std::uint32_t stored_dir_crc = load_u32(blob.data() + pos);
  const std::uint32_t actual_dir_crc = crc32(std::string_view{blob}.substr(0, pos));
  pos += 4;
  if (stored_dir_crc != actual_dir_crc) {
    throw CheckpointError(CheckpointErrorCode::kBadCrc,
                          path + " manifest directory failed CRC verification");
  }
  // Key uniqueness is a directory-level invariant: the CRC already passed,
  // so a duplicate means the writer was broken, not the disk.
  for (const DirectoryRow& row : directory) {
    if (!keys.insert(row.key).second) {
      throw CheckpointError(CheckpointErrorCode::kMalformed,
                            path + " manifest repeats key '" + row.key + "'");
    }
  }

  // Expected total length check AFTER the directory verified: a file
  // longer than the directory promises is corruption the per-entry CRCs
  // cannot localize.
  std::uint64_t blobs_size = 0;
  for (const DirectoryRow& row : directory) blobs_size += row.payload_size;
  if (blob.size() > pos + blobs_size) {
    throw CheckpointError(CheckpointErrorCode::kMalformed,
                          path + " carries trailing bytes after the last manifest payload");
  }

  // Per-entry verdicts: a short or corrupt blob damns only its own entry.
  std::vector<ManifestEntryStatus> statuses;
  statuses.reserve(directory.size());
  for (const DirectoryRow& row : directory) {
    ManifestEntryStatus status;
    status.key = row.key;
    if (blob.size() - pos < row.payload_size) {
      status.ok = false;
      status.error = CheckpointErrorCode::kTruncated;
      status.detail = "payload ends " +
                      std::to_string(row.payload_size - (blob.size() - pos)) +
                      " byte(s) short";
      pos = blob.size();  // everything after a truncation point is gone
    } else {
      const std::string_view payload = std::string_view{blob}.substr(pos, row.payload_size);
      pos += row.payload_size;
      if (crc32(payload) != row.payload_crc) {
        status.ok = false;
        status.error = CheckpointErrorCode::kBadCrc;
        status.detail = "payload failed CRC verification";
      } else {
        status.ok = true;
        status.payload = std::string{payload};
      }
    }
    statuses.push_back(std::move(status));
  }
  return statuses;
}

}  // namespace tzgeo::util
