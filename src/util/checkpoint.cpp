#include "util/checkpoint.hpp"

#include <array>
#include <bit>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>

namespace tzgeo::util {

namespace {

constexpr char kMagic[4] = {'T', 'Z', 'C', 'K'};
constexpr std::size_t kHeaderSize = 4 + 4 + 8;  // magic + version + payload_size
constexpr std::size_t kTrailerSize = 4;         // crc32

/// Reflected CRC-32 table for polynomial 0xEDB88320, built once.
[[nodiscard]] const std::array<std::uint32_t, 256>& crc_table() {
  static const std::array<std::uint32_t, 256> table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1u) != 0 ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  return table;
}

void append_u32(std::string& out, std::uint32_t value) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<char>((value >> (8 * i)) & 0xFFu));
}

void append_u64(std::string& out, std::uint64_t value) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<char>((value >> (8 * i)) & 0xFFu));
}

[[nodiscard]] std::uint32_t load_u32(const char* bytes) noexcept {
  std::uint32_t value = 0;
  for (int i = 3; i >= 0; --i) {
    value = (value << 8) | static_cast<std::uint8_t>(bytes[i]);
  }
  return value;
}

[[nodiscard]] std::uint64_t load_u64(const char* bytes) noexcept {
  std::uint64_t value = 0;
  for (int i = 7; i >= 0; --i) {
    value = (value << 8) | static_cast<std::uint8_t>(bytes[i]);
  }
  return value;
}

}  // namespace

const char* to_string(CheckpointErrorCode code) noexcept {
  switch (code) {
    case CheckpointErrorCode::kIo: return "io";
    case CheckpointErrorCode::kBadMagic: return "bad-magic";
    case CheckpointErrorCode::kBadCrc: return "bad-crc";
    case CheckpointErrorCode::kBadVersion: return "bad-version";
    case CheckpointErrorCode::kTruncated: return "truncated";
    case CheckpointErrorCode::kMalformed: return "malformed";
  }
  return "unknown";
}

CheckpointError::CheckpointError(CheckpointErrorCode code, const std::string& detail)
    : std::runtime_error("checkpoint " + std::string{to_string(code)} + ": " + detail),
      code_(code) {}

std::uint32_t crc32(std::string_view bytes) noexcept {
  const auto& table = crc_table();
  std::uint32_t crc = 0xFFFFFFFFu;
  for (const char c : bytes) {
    crc = table[(crc ^ static_cast<std::uint8_t>(c)) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

void ByteWriter::u8(std::uint8_t value) { data_.push_back(static_cast<char>(value)); }
void ByteWriter::u32(std::uint32_t value) { append_u32(data_, value); }
void ByteWriter::u64(std::uint64_t value) { append_u64(data_, value); }
void ByteWriter::i64(std::int64_t value) { append_u64(data_, static_cast<std::uint64_t>(value)); }
void ByteWriter::f64(double value) { append_u64(data_, std::bit_cast<std::uint64_t>(value)); }

void ByteWriter::str(std::string_view value) {
  append_u64(data_, value.size());
  data_.append(value);
}

void ByteReader::need(std::size_t bytes) const {
  if (data_.size() - pos_ < bytes) {
    throw CheckpointError(CheckpointErrorCode::kTruncated,
                          "payload ends " + std::to_string(bytes - (data_.size() - pos_)) +
                              " byte(s) short");
  }
}

std::uint8_t ByteReader::u8() {
  need(1);
  return static_cast<std::uint8_t>(data_[pos_++]);
}

std::uint32_t ByteReader::u32() {
  need(4);
  const std::uint32_t value = load_u32(data_.data() + pos_);
  pos_ += 4;
  return value;
}

std::uint64_t ByteReader::u64() {
  need(8);
  const std::uint64_t value = load_u64(data_.data() + pos_);
  pos_ += 8;
  return value;
}

std::int64_t ByteReader::i64() { return static_cast<std::int64_t>(u64()); }

double ByteReader::f64() { return std::bit_cast<double>(u64()); }

std::string ByteReader::str() {
  const std::uint64_t size = u64();
  need(size);
  std::string value{data_.substr(pos_, size)};
  pos_ += size;
  return value;
}

void write_checkpoint_file(const std::string& path, std::string_view payload,
                           std::uint32_t version) {
  std::string blob;
  blob.reserve(kHeaderSize + payload.size() + kTrailerSize);
  blob.append(kMagic, sizeof kMagic);
  append_u32(blob, version);
  append_u64(blob, payload.size());
  blob.append(payload);
  append_u32(blob, crc32(blob));

  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      throw CheckpointError(CheckpointErrorCode::kIo, "cannot open " + tmp + " for writing");
    }
    out.write(blob.data(), static_cast<std::streamsize>(blob.size()));
    out.flush();
    if (!out) {
      out.close();
      std::error_code ignored;
      std::filesystem::remove(tmp, ignored);
      throw CheckpointError(CheckpointErrorCode::kIo, "short write to " + tmp);
    }
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    std::error_code ignored;
    std::filesystem::remove(tmp, ignored);
    throw CheckpointError(CheckpointErrorCode::kIo,
                          "rename " + tmp + " -> " + path + ": " + ec.message());
  }
}

std::string read_checkpoint_file(const std::string& path, std::uint32_t expected_version) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw CheckpointError(CheckpointErrorCode::kIo, "cannot open " + path);
  }
  std::string blob{std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
  if (in.bad()) {
    throw CheckpointError(CheckpointErrorCode::kIo, "read error on " + path);
  }

  if (blob.size() < kHeaderSize + kTrailerSize) {
    throw CheckpointError(CheckpointErrorCode::kTruncated,
                          path + " holds " + std::to_string(blob.size()) +
                              " byte(s), below the minimum frame");
  }
  if (std::memcmp(blob.data(), kMagic, sizeof kMagic) != 0) {
    throw CheckpointError(CheckpointErrorCode::kBadMagic, path + " is not a checkpoint file");
  }
  const std::uint64_t payload_size = load_u64(blob.data() + 8);
  if (blob.size() != kHeaderSize + payload_size + kTrailerSize) {
    throw CheckpointError(CheckpointErrorCode::kTruncated,
                          path + " frame length mismatch (header promises " +
                              std::to_string(payload_size) + " payload bytes)");
  }
  const std::uint32_t stored_crc = load_u32(blob.data() + blob.size() - kTrailerSize);
  const std::uint32_t actual_crc =
      crc32(std::string_view{blob}.substr(0, blob.size() - kTrailerSize));
  if (stored_crc != actual_crc) {
    throw CheckpointError(CheckpointErrorCode::kBadCrc, path + " failed CRC verification");
  }
  const std::uint32_t version = load_u32(blob.data() + 4);
  if (version != expected_version) {
    throw CheckpointError(CheckpointErrorCode::kBadVersion,
                          path + " is format v" + std::to_string(version) + ", expected v" +
                              std::to_string(expected_version));
  }
  return blob.substr(kHeaderSize, payload_size);
}

}  // namespace tzgeo::util
