// Crash-safe checkpoint files.
//
// Long-running campaigns (the monitor mode polls a hidden service for
// months) must survive crashes: state is periodically serialized into a
// checkpoint file and a restarted run resumes from it.  The format is
// deliberately paranoid — a crash can truncate a write, a disk can flip a
// bit, an operator can point the resume at the wrong file — so every
// checkpoint carries a magic tag, a format version, an explicit payload
// length, and a CRC-32 over everything, and the reader refuses to surface
// bytes unless all four check out.  Writes are atomic: the file is staged
// as `<path>.tmp` and renamed over the target, so a crash mid-write leaves
// the previous checkpoint intact.
//
// Layout (little-endian):
//   "TZCK" | u32 version | u64 payload_size | payload bytes | u32 crc32
// The CRC covers magic, version, payload_size, and payload.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>

namespace tzgeo::util {

/// Why a checkpoint could not be read (or written).
enum class CheckpointErrorCode : std::uint8_t {
  kIo,          ///< file missing / unreadable / unwritable
  kBadMagic,    ///< not a checkpoint file
  kBadCrc,      ///< bytes corrupted after the magic check
  kBadVersion,  ///< intact file, but a different format generation
  kTruncated,   ///< fewer bytes than the header promises
  kMalformed,   ///< payload decoded to impossible state
};

[[nodiscard]] const char* to_string(CheckpointErrorCode code) noexcept;

/// Typed checkpoint failure; every detectable corruption surfaces as one
/// of these (never UB, never a partial-state resume).
class CheckpointError : public std::runtime_error {
 public:
  CheckpointError(CheckpointErrorCode code, const std::string& detail);
  [[nodiscard]] CheckpointErrorCode code() const noexcept { return code_; }

 private:
  CheckpointErrorCode code_;
};

/// CRC-32 (IEEE 802.3 reflected polynomial 0xEDB88320) of `bytes`.
[[nodiscard]] std::uint32_t crc32(std::string_view bytes) noexcept;

/// Append-only little-endian payload builder.
class ByteWriter {
 public:
  void u8(std::uint8_t value);
  void u32(std::uint32_t value);
  void u64(std::uint64_t value);
  void i64(std::int64_t value);
  void f64(double value);
  /// Length-prefixed (u64) byte string.
  void str(std::string_view value);

  [[nodiscard]] const std::string& data() const noexcept { return data_; }
  [[nodiscard]] std::string take() noexcept { return std::move(data_); }

 private:
  std::string data_;
};

/// Bounds-checked little-endian payload reader: any read past the end
/// throws CheckpointError{kTruncated}, so a corrupt length field can never
/// walk off the buffer.
class ByteReader {
 public:
  explicit ByteReader(std::string_view data) : data_(data) {}

  [[nodiscard]] std::uint8_t u8();
  [[nodiscard]] std::uint32_t u32();
  [[nodiscard]] std::uint64_t u64();
  [[nodiscard]] std::int64_t i64();
  [[nodiscard]] double f64();
  [[nodiscard]] std::string str();

  [[nodiscard]] std::size_t remaining() const noexcept { return data_.size() - pos_; }
  [[nodiscard]] bool done() const noexcept { return pos_ == data_.size(); }

 private:
  void need(std::size_t bytes) const;

  std::string_view data_;
  std::size_t pos_ = 0;
};

/// Writes `payload` to `path` atomically (stage to `<path>.tmp`, flush,
/// rename over).  Throws CheckpointError{kIo} on any filesystem failure;
/// on failure the previous checkpoint at `path` is left untouched.
void write_checkpoint_file(const std::string& path, std::string_view payload,
                           std::uint32_t version);

/// Reads and verifies the checkpoint at `path`, returning the payload.
/// Throws CheckpointError with the matching code on a missing file, bad
/// magic, truncation, CRC mismatch, or a version other than
/// `expected_version`.
[[nodiscard]] std::string read_checkpoint_file(const std::string& path,
                                               std::uint32_t expected_version);

}  // namespace tzgeo::util
