// Crash-safe checkpoint files.
//
// Long-running campaigns (the monitor mode polls a hidden service for
// months) must survive crashes: state is periodically serialized into a
// checkpoint file and a restarted run resumes from it.  The format is
// deliberately paranoid — a crash can truncate a write, a disk can flip a
// bit, an operator can point the resume at the wrong file — so every
// checkpoint carries a magic tag, a format version, an explicit payload
// length, and a CRC-32 over everything, and the reader refuses to surface
// bytes unless all four check out.
//
// Durability: writes are atomic AND power-loss safe.  The file is staged
// as `<path>.tmp`, fsync'd, renamed over the target, and the containing
// directory is fsync'd after the rename — without that last step a crash
// can persist the data blocks but drop the directory entry, losing the
// rename.  A failure at any point leaves the previous checkpoint intact.
// (On platforms without POSIX fds the directory fsync degrades to a
// stream flush; the atomic-rename guarantee still holds.)
//
// Single-frame layout (little-endian):
//   "TZCK" | u32 version | u64 payload_size | payload bytes | u32 crc32
// The CRC covers magic, version, payload_size, and payload.
//
// Manifest-frame layout ("TZCM", for fleet checkpoints): one atomic file
// carrying many independently-CRC'd sub-entries, so one flipped bit
// quarantines one entry instead of discarding the whole fleet:
//   "TZCM" | u32 version | u32 entry_count
//   | directory: per entry  u64 key_len | key | u64 payload_size | u32 payload_crc
//   | u32 directory_crc     (covers magic through the directory)
//   | payload blobs, concatenated in directory order
// Directory corruption is a whole-file error (the directory is a few
// dozen bytes per entry — small surface); payload corruption or a
// truncated tail surfaces per entry via ManifestEntryStatus.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace tzgeo::util {

/// Why a checkpoint could not be read (or written).
enum class CheckpointErrorCode : std::uint8_t {
  kIo,          ///< file missing / unreadable / unwritable
  kBadMagic,    ///< not a checkpoint file
  kBadCrc,      ///< bytes corrupted after the magic check
  kBadVersion,  ///< intact file, but a different format generation
  kTruncated,   ///< fewer bytes than the header promises
  kMalformed,   ///< payload decoded to impossible state
};

[[nodiscard]] const char* to_string(CheckpointErrorCode code) noexcept;

/// Typed checkpoint failure; every detectable corruption surfaces as one
/// of these (never UB, never a partial-state resume).
class CheckpointError : public std::runtime_error {
 public:
  CheckpointError(CheckpointErrorCode code, const std::string& detail);
  [[nodiscard]] CheckpointErrorCode code() const noexcept { return code_; }

 private:
  CheckpointErrorCode code_;
};

/// CRC-32 (IEEE 802.3 reflected polynomial 0xEDB88320) of `bytes`.
[[nodiscard]] std::uint32_t crc32(std::string_view bytes) noexcept;

/// Append-only little-endian payload builder.
class ByteWriter {
 public:
  void u8(std::uint8_t value);
  void u32(std::uint32_t value);
  void u64(std::uint64_t value);
  void i64(std::int64_t value);
  void f64(double value);
  /// Length-prefixed (u64) byte string.
  void str(std::string_view value);

  [[nodiscard]] const std::string& data() const noexcept { return data_; }
  [[nodiscard]] std::string take() noexcept { return std::move(data_); }

 private:
  std::string data_;
};

/// Bounds-checked little-endian payload reader: any read past the end
/// throws CheckpointError{kTruncated}, so a corrupt length field can never
/// walk off the buffer.
class ByteReader {
 public:
  explicit ByteReader(std::string_view data) : data_(data) {}

  [[nodiscard]] std::uint8_t u8();
  [[nodiscard]] std::uint32_t u32();
  [[nodiscard]] std::uint64_t u64();
  [[nodiscard]] std::int64_t i64();
  [[nodiscard]] double f64();
  [[nodiscard]] std::string str();

  [[nodiscard]] std::size_t remaining() const noexcept { return data_.size() - pos_; }
  [[nodiscard]] bool done() const noexcept { return pos_ == data_.size(); }

 private:
  void need(std::size_t bytes) const;

  std::string_view data_;
  std::size_t pos_ = 0;
};

/// Writes `payload` to `path` atomically and durably (stage to
/// `<path>.tmp`, fsync, rename over, fsync the containing directory).
/// Throws CheckpointError{kIo} on any filesystem failure; on failure the
/// previous checkpoint at `path` is left untouched.
void write_checkpoint_file(const std::string& path, std::string_view payload,
                           std::uint32_t version);

/// Reads and verifies the checkpoint at `path`, returning the payload.
/// Throws CheckpointError with the matching code on a missing file, bad
/// magic, truncation, CRC mismatch, or a version other than
/// `expected_version`.
[[nodiscard]] std::string read_checkpoint_file(const std::string& path,
                                               std::uint32_t expected_version);

/// One sub-state in a manifest checkpoint (a fleet forum, keyed by name).
struct ManifestEntry {
  std::string key;
  std::string payload;
};

/// Decode verdict for one manifest sub-entry.  `ok` means the entry's
/// bytes passed their own CRC; otherwise `error`/`detail` say why and
/// `payload` is empty.  The caller decides the blast radius (the fleet
/// parks that one forum and resumes everything else).
struct ManifestEntryStatus {
  std::string key;
  bool ok = false;
  std::string payload;
  CheckpointErrorCode error = CheckpointErrorCode::kBadCrc;
  std::string detail;
};

/// Writes a manifest checkpoint (layout in the header comment) with the
/// same atomicity + durability guarantees as write_checkpoint_file.
/// Duplicate keys throw CheckpointError{kMalformed}.
void write_manifest_checkpoint_file(const std::string& path,
                                    const std::vector<ManifestEntry>& entries,
                                    std::uint32_t version);

/// Reads a manifest checkpoint.  File-level problems (missing file, bad
/// magic, wrong version, corrupt/truncated directory, trailing junk)
/// throw CheckpointError; per-entry payload corruption or a truncated
/// blob tail is reported in that entry's status instead, leaving every
/// other entry readable.  Entries come back in directory (write) order.
[[nodiscard]] std::vector<ManifestEntryStatus> read_manifest_checkpoint_file(
    const std::string& path, std::uint32_t expected_version);

}  // namespace tzgeo::util
