// Minimal CSV reading/writing used by the bench harness to persist
// per-figure data series alongside the terminal rendering, and by the
// ingest pipeline to scan large author/time dumps without materializing
// them.
//
// Supports RFC-4180-style quoting (fields containing the separator, quotes,
// or newlines are double-quoted; embedded quotes are doubled).
//
// Two reading APIs share one state machine:
//   * CsvScanner — streaming, zero-copy: yields rows of std::string_view
//     fields pointing into the scanned buffer.  Only fields that need
//     unescaping (embedded doubled quotes, stray CRs, content around
//     quote characters) are materialized, into a per-row scratch arena
//     that is reused across rows.  This is the ingest hot path.
//   * parse_csv — materializes the whole document into a CsvTable; kept
//     for callers that want random access to rows.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace tzgeo::util {

/// A parsed CSV document: a header row plus data rows of equal arity.
struct CsvTable {
  std::vector<std::string> header;
  std::vector<std::vector<std::string>> rows;

  /// Index of a header column, or npos when missing.
  [[nodiscard]] std::size_t column(std::string_view name) const noexcept;

  static constexpr std::size_t npos = static_cast<std::size_t>(-1);
};

/// Streaming zero-copy CSV scanner over an in-memory buffer.
///
/// Matches parse_csv's dialect exactly: quote-aware fields, doubled-quote
/// escapes, CRs tolerated (and dropped) outside quotes, blank lines
/// skipped.  Throws std::invalid_argument on an unterminated quoted
/// field.  The scanned buffer must outlive the scanner.
class CsvScanner {
 public:
  explicit CsvScanner(std::string_view text, char sep = ',') noexcept
      : text_(text), sep_(sep) {}

  /// Scans the next row into `fields` (cleared first).  Returns false at
  /// end of input.  The views point into the scanned buffer or into an
  /// internal scratch arena; both stay valid until the next call.
  bool next(std::vector<std::string_view>& fields);

  /// Bytes consumed so far: the offset of the first unscanned byte.
  [[nodiscard]] std::size_t offset() const noexcept { return pos_; }

  /// Fields materialized into the scratch arena so far (escaped fields the
  /// zero-copy path could not view in place).  Feeds the
  /// tzgeo_ingest_escaped_fixups_total counter.
  [[nodiscard]] std::uint64_t fixups_applied() const noexcept { return fixups_applied_; }

 private:
  /// A field emitted into scratch_: patched into `fields` at row end,
  /// once scratch_ can no longer reallocate under it.
  struct Fixup {
    std::size_t field = 0;  ///< index into the output row
    std::size_t begin = 0;  ///< offset into scratch_
    std::size_t size = 0;
  };

  std::string_view text_;
  std::size_t pos_ = 0;
  char sep_;
  std::string scratch_;  ///< unescaped field bytes, reused across rows
  std::uint64_t fixups_applied_ = 0;  ///< lifetime count of materialized fields
  std::vector<Fixup> fixups_;
  std::vector<std::pair<std::size_t, std::size_t>> runs_;  ///< spilled runs of a multi-run field
};

/// Streaming CSV writer.
class CsvWriter {
 public:
  /// Writes to `out`; the stream must outlive the writer.
  explicit CsvWriter(std::ostream& out, char sep = ',');

  /// Writes one row, quoting fields as needed.
  void write_row(const std::vector<std::string>& fields);

  /// Convenience: formats doubles with `precision` digits.
  void write_row(const std::vector<double>& values, int precision = 6);

 private:
  std::ostream& out_;
  char sep_;
  std::string line_;  ///< per-row scratch, reused across write_row calls
};

/// Serializes a whole table (header + rows).
[[nodiscard]] std::string to_csv(const CsvTable& table, char sep = ',');

/// Parses CSV text. The first row becomes the header.
/// Throws std::invalid_argument on unterminated quotes or ragged rows.
[[nodiscard]] CsvTable parse_csv(std::string_view text, char sep = ',');

}  // namespace tzgeo::util
