// Minimal CSV reading/writing used by the bench harness to persist
// per-figure data series alongside the terminal rendering.
//
// Supports RFC-4180-style quoting (fields containing the separator, quotes,
// or newlines are double-quoted; embedded quotes are doubled).
#pragma once

#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace tzgeo::util {

/// A parsed CSV document: a header row plus data rows of equal arity.
struct CsvTable {
  std::vector<std::string> header;
  std::vector<std::vector<std::string>> rows;

  /// Index of a header column, or npos when missing.
  [[nodiscard]] std::size_t column(std::string_view name) const noexcept;

  static constexpr std::size_t npos = static_cast<std::size_t>(-1);
};

/// Streaming CSV writer.
class CsvWriter {
 public:
  /// Writes to `out`; the stream must outlive the writer.
  explicit CsvWriter(std::ostream& out, char sep = ',');

  /// Writes one row, quoting fields as needed.
  void write_row(const std::vector<std::string>& fields);

  /// Convenience: formats doubles with `precision` digits.
  void write_row(const std::vector<double>& values, int precision = 6);

 private:
  std::ostream& out_;
  char sep_;
};

/// Serializes a whole table (header + rows).
[[nodiscard]] std::string to_csv(const CsvTable& table, char sep = ',');

/// Parses CSV text. The first row becomes the header.
/// Throws std::invalid_argument on unterminated quotes or ragged rows.
[[nodiscard]] CsvTable parse_csv(std::string_view text, char sep = ',');

}  // namespace tzgeo::util
