// Minimal JSON writing.
//
// The CLI offers machine-readable output (`--json`) so investigation
// results can feed scripts and dashboards; this is a small, dependency-free
// *writer* (the library never needs to parse JSON).  Values are built
// bottom-up; objects preserve insertion order.
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace tzgeo::util {

/// Escapes a string for embedding in a JSON document (adds the quotes).
[[nodiscard]] std::string json_quote(std::string_view text);

/// A JSON value under construction.
class JsonValue {
 public:
  /// Scalars.
  [[nodiscard]] static JsonValue number(double value);
  [[nodiscard]] static JsonValue integer(std::int64_t value);
  [[nodiscard]] static JsonValue boolean(bool value);
  [[nodiscard]] static JsonValue string(std::string_view value);
  [[nodiscard]] static JsonValue null();

  /// Containers.
  [[nodiscard]] static JsonValue array();
  [[nodiscard]] static JsonValue object();

  /// Appends to an array value (must be an array).
  JsonValue& push(JsonValue value);
  /// Sets a key on an object value (must be an object).
  JsonValue& set(std::string_view key, JsonValue value);

  /// Serializes; `indent` > 0 pretty-prints with that many spaces.
  [[nodiscard]] std::string dump(int indent = 0) const;

 private:
  enum class Kind { kNull, kBool, kNumber, kInteger, kString, kArray, kObject };

  void write(std::string& out, int indent, int depth) const;

  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::int64_t integer_ = 0;
  std::string string_;
  std::vector<JsonValue> items_;
  std::vector<std::pair<std::string, JsonValue>> fields_;
};

}  // namespace tzgeo::util
