// Minimal JSON writing and parsing.
//
// The CLI offers machine-readable output (`--json`) so investigation
// results can feed scripts and dashboards; this is a small,
// dependency-free writer plus a strict recursive-descent parser (added
// for the bench observatory, whose comparator reads the `--json` reports
// back).  Values are built bottom-up; objects preserve insertion order.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace tzgeo::util {

/// Escapes a string for embedding in a JSON document (adds the quotes).
[[nodiscard]] std::string json_quote(std::string_view text);

/// A JSON value — buildable bottom-up for writing, inspectable after
/// parsing.  Accessors are total: `as_*` return a zero value on kind
/// mismatch so callers can chain lookups and validate once at the end.
class JsonValue {
 public:
  /// Scalars.
  [[nodiscard]] static JsonValue number(double value);
  [[nodiscard]] static JsonValue integer(std::int64_t value);
  [[nodiscard]] static JsonValue boolean(bool value);
  [[nodiscard]] static JsonValue string(std::string_view value);
  [[nodiscard]] static JsonValue null();

  /// Containers.
  [[nodiscard]] static JsonValue array();
  [[nodiscard]] static JsonValue object();

  /// Parses a complete JSON document (trailing garbage rejected).
  /// Returns nullopt on malformed input or nesting deeper than 128.
  [[nodiscard]] static std::optional<JsonValue> parse(std::string_view text);

  /// Appends to an array value (must be an array).
  JsonValue& push(JsonValue value);
  /// Sets a key on an object value (must be an object).
  JsonValue& set(std::string_view key, JsonValue value);

  /// Kind queries.
  [[nodiscard]] bool is_null() const { return kind_ == Kind::kNull; }
  [[nodiscard]] bool is_bool() const { return kind_ == Kind::kBool; }
  [[nodiscard]] bool is_number() const {
    return kind_ == Kind::kNumber || kind_ == Kind::kInteger;
  }
  [[nodiscard]] bool is_string() const { return kind_ == Kind::kString; }
  [[nodiscard]] bool is_array() const { return kind_ == Kind::kArray; }
  [[nodiscard]] bool is_object() const { return kind_ == Kind::kObject; }

  /// Scalar reads; zero-valued on kind mismatch.
  [[nodiscard]] bool as_bool() const { return is_bool() && bool_; }
  [[nodiscard]] double as_number() const;
  [[nodiscard]] std::int64_t as_integer() const;
  [[nodiscard]] const std::string& as_string() const { return string_; }

  /// Container reads.  `size` is item count (array) or field count
  /// (object); zero for scalars.
  [[nodiscard]] std::size_t size() const;
  /// Array item / object field value by position; nullptr out of range.
  [[nodiscard]] const JsonValue* at(std::size_t index) const;
  /// Object field key by position; empty out of range or non-object.
  [[nodiscard]] std::string_view key_at(std::size_t index) const;
  /// First object field with this key; nullptr if absent or non-object.
  [[nodiscard]] const JsonValue* find(std::string_view key) const;

  /// Serializes; `indent` > 0 pretty-prints with that many spaces.
  [[nodiscard]] std::string dump(int indent = 0) const;

 private:
  enum class Kind { kNull, kBool, kNumber, kInteger, kString, kArray, kObject };

  void write(std::string& out, int indent, int depth) const;

  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::int64_t integer_ = 0;
  std::string string_;
  std::vector<JsonValue> items_;
  std::vector<std::pair<std::string, JsonValue>> fields_;
};

}  // namespace tzgeo::util
