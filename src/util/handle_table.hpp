// Append-only interning handle table: dense handles for 64-bit keys.
//
// The ingest path resolves an author on every row; a std::map pays one
// O(log n) pointer chase per event plus one node allocation per distinct
// user.  This table interns keys instead: an append-only arena of keys
// (handle -> key, never reordered, never freed) indexed by an
// open-addressing hash (key -> handle), so a lookup is O(1) with linear
// probing and the only steady-state allocation is the amortized growth of
// two flat vectors.  Handles are dense 0..size()-1 in first-insertion
// order, which makes them directly usable as indices into parallel
// per-user state arrays (ActivityTrace events, IncrementalGeolocator
// state).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace tzgeo::util {

class HandleTable {
 public:
  /// Sentinel returned by find() for absent keys.
  static constexpr std::uint32_t npos = 0xFFFFFFFFu;

  HandleTable() = default;

  /// Handle of `key`, interning it (next dense handle) when absent.  The
  /// found-it probe is inline (one lookup per ingested row); only the
  /// first sighting of a key takes the out-of-line insert path.
  std::uint32_t intern(std::uint64_t key) {
    if (!buckets_.empty()) {
      std::size_t slot = mix(key) & mask_;
      for (;;) {
        const std::uint32_t handle = buckets_[slot];
        if (handle == npos) break;
        if (keys_[handle] == key) return handle;
        slot = (slot + 1) & mask_;
      }
    }
    return insert(key);
  }

  /// Handle of `key`, or npos when absent.  Never allocates.
  [[nodiscard]] std::uint32_t find(std::uint64_t key) const noexcept {
    if (buckets_.empty()) return npos;
    std::size_t slot = mix(key) & mask_;
    for (;;) {
      const std::uint32_t handle = buckets_[slot];
      if (handle == npos) return npos;
      if (keys_[handle] == key) return handle;
      slot = (slot + 1) & mask_;
    }
  }

  /// Number of distinct interned keys.
  [[nodiscard]] std::size_t size() const noexcept { return keys_.size(); }
  [[nodiscard]] bool empty() const noexcept { return keys_.empty(); }

  /// The key arena: keys()[handle] is the interned key, in insertion order.
  [[nodiscard]] const std::vector<std::uint64_t>& keys() const noexcept { return keys_; }

  /// Open-addressing bucket count (power of two; 0 before first insert).
  [[nodiscard]] std::size_t bucket_count() const noexcept { return buckets_.size(); }

  /// Occupied fraction of the bucket array in [0, 1).  0 when empty.
  [[nodiscard]] double load_factor() const noexcept {
    return buckets_.empty()
               ? 0.0
               : static_cast<double>(keys_.size()) / static_cast<double>(buckets_.size());
  }

  /// Pre-sizes the arena and bucket array for `n` distinct keys.
  void reserve(std::size_t n);

 private:
  /// SplitMix64 finalizer: spreads low-entropy keys (small sequential ids
  /// in tests) across the bucket space; full-entropy hash64 ids pass
  /// through without clustering.
  [[nodiscard]] static constexpr std::uint64_t mix(std::uint64_t x) noexcept {
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
  }

  /// Appends `key` as a new handle, growing the bucket array as needed.
  std::uint32_t insert(std::uint64_t key);

  void grow(std::size_t min_buckets);

  std::vector<std::uint64_t> keys_;     ///< handle -> key (append-only arena)
  std::vector<std::uint32_t> buckets_;  ///< open addressing; npos marks empty
  std::uint64_t mask_ = 0;              ///< buckets_.size() - 1 (power of two)
};

}  // namespace tzgeo::util
