// Canonical numeric constants of the tzgeo domain.
//
// This header is the single home of the hour/zone magic numbers (24 bins,
// UTC-11..+12, hour 0..23).  `tzgeo-lint` enforces the rule mechanically:
// integer literals 23/24/25 (and their .0 float forms) may appear in src/
// only in this file — everywhere else the named constants below keep
// profile widths, zone counts, and cell encodings provably consistent.
//
// The constants live in util — the bottom of the layer DAG — and in the
// enclosing `tzgeo` namespace, so every module can both include and name
// them without a link edge or a qualifier.  (They started life in
// src/core/constants.hpp as a header-only textual include, which made
// stats/timezone/obs reach *up* the layer DAG for a header they could not
// link; tzgeo_analyze's layering pass now rejects exactly that pattern.)
#pragma once

#include <cstddef>
#include <cstdint>

namespace tzgeo {

/// Hours per day, in the signed type used by (day, hour) cell encodings.
inline constexpr std::int64_t kHoursPerDay = 24;

/// Hours per day as a double, for wrap-around and shift arithmetic.
inline constexpr double kHoursPerDayF = 24.0;

/// Half a day in hours: the maximum circular distance between two zones.
inline constexpr double kHalfDayHoursF = 12.0;

/// Largest valid hour-of-day (inclusive), for range checks on parsed input.
inline constexpr std::int32_t kMaxHourOfDay = 23;

/// Hours per profile; profiles are distributions over the hour of day.
inline constexpr std::size_t kProfileBins = 24;

/// World time zones span UTC-11 .. UTC+12 (24 zones).
inline constexpr std::int32_t kMinZone = -11;
inline constexpr std::int32_t kMaxZone = 12;
inline constexpr std::size_t kZoneCount = 24;

static_assert(kZoneCount == kProfileBins,
              "one zone per profile bin: placement maps hour profiles onto zone bins");
static_assert(static_cast<std::int64_t>(kProfileBins) == kHoursPerDay,
              "profiles bin the hours of one day");
static_assert(kMaxZone - kMinZone + 1 == static_cast<std::int32_t>(kZoneCount),
              "the zone range must cover exactly kZoneCount offsets");

/// Encodes an absolute (day, hour-of-day) pair into one activity cell.
[[nodiscard]] inline constexpr std::int64_t cell_of_day_hour(std::int64_t day,
                                                             std::int64_t hour) noexcept {
  return day * kHoursPerDay + hour;
}

/// Hour-of-day (0..23) of an encoded activity cell; correct for negative
/// cells (pre-epoch timestamps), where `%` alone would be off by a day.
[[nodiscard]] inline constexpr std::int64_t hour_of_cell(std::int64_t cell) noexcept {
  return ((cell % kHoursPerDay) + kHoursPerDay) % kHoursPerDay;
}

/// Absolute day of an encoded activity cell: the floor-division inverse of
/// cell_of_day_hour, correct for negative cells where `/` would round
/// toward zero.
[[nodiscard]] inline constexpr std::int64_t day_of_cell(std::int64_t cell) noexcept {
  return (cell - hour_of_cell(cell)) / kHoursPerDay;
}

}  // namespace tzgeo
