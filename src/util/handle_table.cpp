#include "util/handle_table.hpp"

namespace tzgeo::util {

namespace {

constexpr std::size_t kInitialBuckets = 16;

}  // namespace

std::uint32_t HandleTable::insert(std::uint64_t key) {
  if (buckets_.empty()) grow(kInitialBuckets);
  // Keep the load factor under ~0.75 so probe chains stay short.
  if ((keys_.size() + 1) * 4 > buckets_.size() * 3) grow(buckets_.size() * 2);
  std::size_t slot = mix(key) & mask_;
  while (buckets_[slot] != npos) slot = (slot + 1) & mask_;
  const auto handle = static_cast<std::uint32_t>(keys_.size());
  keys_.push_back(key);
  buckets_[slot] = handle;
  return handle;
}

void HandleTable::reserve(std::size_t n) {
  keys_.reserve(n);
  std::size_t buckets = kInitialBuckets;
  while (buckets * 3 < n * 4) buckets *= 2;
  if (buckets > buckets_.size()) grow(buckets);
}

void HandleTable::grow(std::size_t min_buckets) {
  std::size_t buckets = kInitialBuckets;
  while (buckets < min_buckets) buckets *= 2;
  buckets_.assign(buckets, npos);
  mask_ = buckets - 1;
  for (std::uint32_t handle = 0; handle < keys_.size(); ++handle) {
    std::size_t slot = mix(keys_[handle]) & mask_;
    while (buckets_[slot] != npos) slot = (slot + 1) & mask_;
    buckets_[slot] = handle;
  }
}

}  // namespace tzgeo::util
