#include "util/rng.hpp"

#include <cmath>
#include <numbers>

namespace tzgeo::util {

namespace {

[[nodiscard]] constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  for (auto& word : state_) {
    word = splitmix64(seed);
  }
}

Rng::result_type Rng::operator()() noexcept {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

Rng Rng::split(std::uint64_t key) noexcept {
  // Mix the key with fresh output so children of the same parent differ
  // and the parent stream advances (no child/parent overlap).
  std::uint64_t mix = (*this)() ^ (key * 0x9e3779b97f4a7c15ULL);
  return Rng{splitmix64(mix)};
}

Rng Rng::split(std::string_view key) noexcept { return split(hash64(key)); }

double Rng::uniform() noexcept {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept { return lo + (hi - lo) * uniform(); }

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
  // The 128-bit multiply for Lemire's unbiased bounded generation is a GCC/
  // Clang extension; scoped typedef keeps -Wpedantic quiet about it.
  __extension__ using Uint128 = unsigned __int128;
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) {  // full 64-bit range
    return static_cast<std::int64_t>((*this)());
  }
  // Lemire-style rejection to avoid modulo bias.
  std::uint64_t x = (*this)();
  auto m = static_cast<Uint128>(x) * span;
  auto low = static_cast<std::uint64_t>(m);
  if (low < span) {
    const std::uint64_t threshold = (0 - span) % span;
    while (low < threshold) {
      x = (*this)();
      m = static_cast<Uint128>(x) * span;
      low = static_cast<std::uint64_t>(m);
    }
  }
  return lo + static_cast<std::int64_t>(m >> 64);
}

bool Rng::bernoulli(double p) noexcept {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

double Rng::normal() noexcept {
  // Box-Muller; discard the second variate for simplicity and stream purity.
  double u1 = uniform();
  while (u1 <= 0.0) u1 = uniform();
  const double u2 = uniform();
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * std::numbers::pi * u2);
}

double Rng::normal(double mean, double stddev) noexcept { return mean + stddev * normal(); }

double Rng::lognormal(double mu, double sigma) noexcept { return std::exp(normal(mu, sigma)); }

double Rng::exponential(double lambda) noexcept {
  double u = uniform();
  while (u <= 0.0) u = uniform();
  return -std::log(u) / lambda;
}

std::uint32_t Rng::poisson(double lambda) noexcept {
  if (lambda <= 0.0) return 0;
  if (lambda < 30.0) {
    // Knuth multiplication method.
    const double limit = std::exp(-lambda);
    double product = uniform();
    std::uint32_t count = 0;
    while (product > limit) {
      product *= uniform();
      ++count;
    }
    return count;
  }
  // Normal approximation with continuity correction, rejecting negatives.
  for (;;) {
    const double draw = normal(lambda, std::sqrt(lambda));
    if (draw >= -0.5) return static_cast<std::uint32_t>(draw + 0.5);
  }
}

std::uint32_t Rng::zipf(std::uint32_t n, double s) noexcept {
  if (n <= 1) return 1;
  // Rejection sampling (Devroye): works for any s > 0, O(1) expected.
  const double b = std::pow(2.0, s - 1.0);
  for (;;) {
    const double u = uniform();
    const double v = uniform();
    const double x = std::floor(std::pow(u, -1.0 / (s - 1.0 == 0.0 ? 1e-9 : s - 1.0)));
    if (s == 1.0) {
      // Harmonic special case: inverse CDF on log-scale approximation.
      const double k = std::pow(static_cast<double>(n) + 1.0, u);
      const auto candidate = static_cast<std::uint32_t>(k);
      if (candidate >= 1 && candidate <= n) return candidate;
      continue;
    }
    if (x < 1.0 || x > static_cast<double>(n)) continue;
    const double t = std::pow(1.0 + 1.0 / x, s - 1.0);
    if (v * x * (t - 1.0) / (b - 1.0) <= t / b) {
      return static_cast<std::uint32_t>(x);
    }
  }
}

std::size_t Rng::categorical(const std::vector<double>& weights) noexcept {
  double total = 0.0;
  for (const double w : weights) total += (w > 0.0 ? w : 0.0);
  if (total <= 0.0 || weights.empty()) return 0;
  double target = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    const double w = weights[i] > 0.0 ? weights[i] : 0.0;
    if (target < w) return i;
    target -= w;
  }
  return weights.size() - 1;  // numerical tail
}

}  // namespace tzgeo::util
