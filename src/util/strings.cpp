#include "util/strings.hpp"

#include <charconv>
#include <cstdio>

namespace tzgeo::util {

std::vector<std::string_view> split(std::string_view text, char sep) {
  return split(text, std::string_view{&sep, 1});
}

std::vector<std::string_view> split(std::string_view text, std::string_view sep) {
  std::vector<std::string_view> fields;
  if (sep.empty()) {
    fields.push_back(text);
    return fields;
  }
  std::size_t pos = 0;
  for (;;) {
    const std::size_t next = text.find(sep, pos);
    if (next == std::string_view::npos) {
      fields.push_back(text.substr(pos));
      return fields;
    }
    fields.push_back(text.substr(pos, next - pos));
    pos = next + sep.size();
  }
}

bool starts_with(std::string_view text, std::string_view prefix) noexcept {
  return text.size() >= prefix.size() && text.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view text, std::string_view suffix) noexcept {
  return text.size() >= suffix.size() && text.substr(text.size() - suffix.size()) == suffix;
}

std::optional<std::int64_t> parse_int(std::string_view text) noexcept {
  text = trim(text);
  if (text.empty()) return std::nullopt;
  std::int64_t value = 0;
  const auto* first = text.data();
  const auto* last = text.data() + text.size();
  const auto [ptr, ec] = std::from_chars(first, last, value, 10);
  if (ec != std::errc{} || ptr != last) return std::nullopt;
  return value;
}

std::optional<double> parse_double(std::string_view text) noexcept {
  text = trim(text);
  if (text.empty()) return std::nullopt;
  double value = 0.0;
  const auto* first = text.data();
  const auto* last = text.data() + text.size();
  const auto [ptr, ec] = std::from_chars(first, last, value);
  if (ec != std::errc{} || ptr != last) return std::nullopt;
  return value;
}

std::string replace_all(std::string_view text, std::string_view from, std::string_view to) {
  if (from.empty()) return std::string{text};
  std::string out;
  out.reserve(text.size());
  std::size_t pos = 0;
  for (;;) {
    const std::size_t next = text.find(from, pos);
    if (next == std::string_view::npos) {
      out.append(text.substr(pos));
      return out;
    }
    out.append(text.substr(pos, next - pos));
    out.append(to);
    pos = next + from.size();
  }
}

std::optional<std::string_view> extract_between(std::string_view text, std::string_view open,
                                                std::string_view close,
                                                std::size_t& pos) noexcept {
  const std::size_t begin = text.find(open, pos);
  if (begin == std::string_view::npos) return std::nullopt;
  const std::size_t content = begin + open.size();
  const std::size_t end = text.find(close, content);
  if (end == std::string_view::npos) return std::nullopt;
  pos = end + close.size();
  return text.substr(content, end - content);
}

std::string pad_left(std::string_view text, std::size_t width, char fill) {
  if (text.size() >= width) return std::string{text};
  std::string out(width - text.size(), fill);
  out.append(text);
  return out;
}

std::string pad_right(std::string_view text, std::size_t width, char fill) {
  std::string out{text};
  if (out.size() < width) out.append(width - out.size(), fill);
  return out;
}

std::string format_fixed(double value, int precision) {
  char buffer[64];
  const int written = std::snprintf(buffer, sizeof buffer, "%.*f", precision, value);
  return std::string(buffer, written > 0 ? static_cast<std::size_t>(written) : 0);
}

}  // namespace tzgeo::util
