#include "timezone/zone_db.hpp"

#include <algorithm>
#include <map>
#include <stdexcept>
#include <string>

namespace tzgeo::tz {

namespace {

[[nodiscard]] std::map<std::string, TimeZone, std::less<>> build_db() {
  std::map<std::string, TimeZone, std::less<>> db;
  const auto add = [&db](TimeZone zone) {
    const std::string key = zone.name();
    db.emplace(key, std::move(zone));
  };

  const DstRule eu = rules::european_union();
  const DstRule us = rules::united_states();
  const DstRule br = rules::brazil();
  const DstRule au = rules::australia_southeast();
  const DstRule py = rules::paraguay();

  // --- Table I ground-truth regions -------------------------------------
  add(TimeZone{"America/Sao_Paulo", -3 * 60, br, Hemisphere::kSouthern});   // Brazil
  add(TimeZone{"America/Los_Angeles", -8 * 60, us, Hemisphere::kNorthern}); // California
  add(TimeZone{"Europe/Helsinki", 2 * 60, eu, Hemisphere::kNorthern});      // Finland
  add(TimeZone{"Europe/Paris", 1 * 60, eu, Hemisphere::kNorthern});         // France
  add(TimeZone{"Europe/Berlin", 1 * 60, eu, Hemisphere::kNorthern});        // Germany
  add(TimeZone{"America/Chicago", -6 * 60, us, Hemisphere::kNorthern});     // Illinois
  add(TimeZone{"Europe/Rome", 1 * 60, eu, Hemisphere::kNorthern});          // Italy
  add(TimeZone{"Asia/Tokyo", 9 * 60});                                      // Japan (no DST)
  add(TimeZone{"Asia/Kuala_Lumpur", 8 * 60});                               // Malaysia (no DST)
  add(TimeZone{"Australia/Sydney", 10 * 60, au, Hemisphere::kSouthern});    // New South Wales
  add(TimeZone{"America/New_York", -5 * 60, us, Hemisphere::kNorthern});    // New York
  add(TimeZone{"Europe/Warsaw", 1 * 60, eu, Hemisphere::kNorthern});        // Poland
  add(TimeZone{"Europe/Istanbul", 3 * 60});            // Turkey (DST abolished Sept 2016)
  add(TimeZone{"Europe/London", 0, eu, Hemisphere::kNorthern});             // United Kingdom

  // --- Zones named in Section V -----------------------------------------
  add(TimeZone{"UTC", 0});
  add(TimeZone{"Europe/Moscow", 3 * 60});                                   // no DST since 2014
  add(TimeZone{"Europe/Minsk", 3 * 60});
  add(TimeZone{"Europe/Bucharest", 2 * 60, eu, Hemisphere::kNorthern});
  add(TimeZone{"Asia/Yerevan", 4 * 60});
  add(TimeZone{"Asia/Tbilisi", 4 * 60});
  add(TimeZone{"Asia/Dubai", 4 * 60});                                      // Abu Dhabi
  add(TimeZone{"America/Mexico_City", -6 * 60, us, Hemisphere::kNorthern});
  add(TimeZone{"America/Halifax", -4 * 60, us, Hemisphere::kNorthern});
  add(TimeZone{"America/Asuncion", -4 * 60, py, Hemisphere::kSouthern});    // Paraguay
  add(TimeZone{"America/Denver", -7 * 60, us, Hemisphere::kNorthern});
  // Half-hour zone: the paper's whole-hour world-zone model splits such
  // crowds across the two neighbouring zones (exercised in tests).
  add(TimeZone{"Asia/Kolkata", 5 * 60 + 30});

  // Fixed whole-hour world time zones ("UTC-11" .. "UTC+12", no DST), used
  // by the Fig. 6 synthetic mixes and anywhere a bare offset is enough.
  for (std::int32_t h = -11; h <= 12; ++h) {
    if (h == 0) continue;  // "UTC" added above
    add(TimeZone{utc_label(h), h * 60});
  }
  return db;
}

[[nodiscard]] const std::map<std::string, TimeZone, std::less<>>& db() {
  static const auto instance = build_db();
  return instance;
}

}  // namespace

const TimeZone& zone(std::string_view name) {
  const auto& zones = db();
  const auto it = zones.find(name);
  if (it == zones.end()) {
    throw std::out_of_range("zone_db: unknown zone '" + std::string{name} + "'");
  }
  return it->second;
}

bool has_zone(std::string_view name) noexcept { return db().contains(name); }

std::vector<std::string_view> zone_names() {
  std::vector<std::string_view> names;
  names.reserve(db().size());
  for (const auto& [name, unused] : db()) names.push_back(name);
  return names;
}

TimeZone fixed_zone(std::int32_t hours) {
  if (hours < -11 || hours > 12) {
    throw std::invalid_argument("fixed_zone: hours in [-11, 12]");
  }
  return TimeZone{utc_label(hours), hours * 60};
}

std::string utc_label(std::int32_t hours) {
  if (hours == 0) return "UTC";
  return hours > 0 ? "UTC+" + std::to_string(hours) : "UTC-" + std::to_string(-hours);
}

}  // namespace tzgeo::tz
