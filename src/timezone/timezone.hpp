// A time zone: a standard UTC offset plus an optional DST rule.
#pragma once

#include <optional>
#include <string>

#include "timezone/civil.hpp"
#include "timezone/dst_rule.hpp"

namespace tzgeo::tz {

/// A named region time zone.
///
/// The paper reasons in whole-hour "world time zones" (UTC-11 .. UTC+12);
/// TimeZone carries the exact standard offset (minutes, to support zones
/// like UTC+5:30 in principle) plus the DST rule of the region.
class TimeZone {
 public:
  /// A fixed-offset zone without DST.
  TimeZone(std::string name, std::int32_t standard_offset_minutes);

  /// A zone with a DST rule.
  TimeZone(std::string name, std::int32_t standard_offset_minutes, DstRule rule,
           Hemisphere hemisphere);

  [[nodiscard]] const std::string& name() const noexcept { return name_; }

  /// Standard (winter) offset from UTC, seconds.
  [[nodiscard]] std::int64_t standard_offset_seconds() const noexcept {
    return static_cast<std::int64_t>(standard_offset_minutes_) * kSecondsPerMinute;
  }

  /// Standard offset rounded to whole hours — the paper's time-zone index.
  [[nodiscard]] std::int32_t standard_offset_hours() const noexcept {
    return standard_offset_minutes_ / 60;
  }

  [[nodiscard]] bool has_dst() const noexcept { return rule_.has_value(); }
  [[nodiscard]] const std::optional<DstRule>& dst_rule() const noexcept { return rule_; }
  [[nodiscard]] Hemisphere hemisphere() const noexcept { return hemisphere_; }

  /// Effective offset from UTC at `instant` (includes DST when in force).
  [[nodiscard]] std::int64_t offset_at(UtcSeconds instant) const;

  /// True when DST is in force at `instant`.
  [[nodiscard]] bool dst_in_effect(UtcSeconds instant) const;

  /// Civil local time of an instant.
  [[nodiscard]] CivilDateTime to_local(UtcSeconds instant) const;

  /// Instant of a civil local time.  During the spring-forward gap the
  /// non-existent time is interpreted at the pre-transition offset; during
  /// the fall-back overlap the earlier (DST) instant is returned.
  [[nodiscard]] UtcSeconds to_utc(const CivilDateTime& local) const;

  /// Local hour of day (0..23) at `instant`.
  [[nodiscard]] std::int32_t local_hour(UtcSeconds instant) const;

 private:
  std::string name_;
  std::int32_t standard_offset_minutes_ = 0;
  std::optional<DstRule> rule_;
  Hemisphere hemisphere_ = Hemisphere::kNone;
};

}  // namespace tzgeo::tz
