#include "timezone/dst_rule.hpp"

namespace tzgeo::tz {

UtcSeconds DstTransition::instant(std::int32_t year, std::int64_t standard_offset_seconds) const {
  CivilDate date;
  if (week == WeekOfMonth::kLast) {
    date = last_weekday_of_month(year, month, weekday);
  } else {
    date = nth_weekday_of_month(year, month, weekday, static_cast<std::int32_t>(week));
  }
  const UtcSeconds naive = to_utc_seconds(CivilDateTime{date, hour, 0, 0});
  switch (basis) {
    case TransitionBasis::kUtc:
      return naive;
    case TransitionBasis::kLocalStandard:
      return naive - standard_offset_seconds;
  }
  return naive;  // unreachable; keeps GCC happy
}

bool DstRule::in_effect(UtcSeconds instant, std::int64_t standard_offset_seconds) const {
  // Evaluate against the transition pair of the civil year the instant
  // falls in (standard local time decides the year for wrapped rules).
  const CivilDateTime local = from_utc_seconds(instant + standard_offset_seconds);
  const std::int32_t year = local.date.year;

  if (!southern()) {
    const UtcSeconds on = begin.instant(year, standard_offset_seconds);
    const UtcSeconds off = end.instant(year, standard_offset_seconds);
    return instant >= on && instant < off;
  }
  // Southern: DST spans [begin(year), end(year + 1)).  An instant is in DST
  // either after this year's begin, or before this year's end (which belongs
  // to the previous year's span).
  const UtcSeconds on_this_year = begin.instant(year, standard_offset_seconds);
  const UtcSeconds off_this_year = end.instant(year, standard_offset_seconds);
  return instant >= on_this_year || instant < off_this_year;
}

namespace rules {

DstRule european_union() {
  DstRule rule;
  rule.begin = DstTransition{3, WeekOfMonth::kLast, 0, 1, TransitionBasis::kUtc};
  rule.end = DstTransition{10, WeekOfMonth::kLast, 0, 1, TransitionBasis::kUtc};
  return rule;
}

DstRule united_states() {
  DstRule rule;
  rule.begin = DstTransition{3, WeekOfMonth::kSecond, 0, 2, TransitionBasis::kLocalStandard};
  rule.end = DstTransition{11, WeekOfMonth::kFirst, 0, 2, TransitionBasis::kLocalStandard};
  return rule;
}

DstRule brazil() {
  DstRule rule;
  rule.begin = DstTransition{10, WeekOfMonth::kThird, 0, 0, TransitionBasis::kLocalStandard};
  rule.end = DstTransition{2, WeekOfMonth::kThird, 0, 0, TransitionBasis::kLocalStandard};
  return rule;
}

DstRule australia_southeast() {
  DstRule rule;
  rule.begin = DstTransition{10, WeekOfMonth::kFirst, 0, 2, TransitionBasis::kLocalStandard};
  rule.end = DstTransition{4, WeekOfMonth::kFirst, 0, 3, TransitionBasis::kLocalStandard};
  return rule;
}

DstRule paraguay() {
  DstRule rule;
  rule.begin = DstTransition{10, WeekOfMonth::kFirst, 0, 0, TransitionBasis::kLocalStandard};
  rule.end = DstTransition{3, WeekOfMonth::kFourth, 0, 0, TransitionBasis::kLocalStandard};
  return rule;
}

}  // namespace rules

}  // namespace tzgeo::tz
