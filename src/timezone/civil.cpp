#include "timezone/civil.hpp"

#include <cstdio>
#include <stdexcept>

namespace tzgeo::tz {

std::int64_t days_from_civil(const CivilDate& date) noexcept {
  // Hinnant's days_from_civil, shifted so that 1970-01-01 -> 0.
  std::int64_t y = date.year;
  const std::int64_t m = date.month;
  const std::int64_t d = date.day;
  y -= m <= 2;
  const std::int64_t era = (y >= 0 ? y : y - 399) / 400;
  const std::int64_t yoe = y - era * 400;                                          // [0, 399]
  const std::int64_t doy = (153 * (m + (m > 2 ? -3 : 9)) + 2) / 5 + d - 1;         // [0, 365]
  const std::int64_t doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;                  // [0, 146096]
  return era * 146097 + doe - 719468;
}

CivilDate civil_from_days(std::int64_t days) noexcept {
  std::int64_t z = days + 719468;
  const std::int64_t era = (z >= 0 ? z : z - 146096) / 146097;
  const std::int64_t doe = z - era * 146097;                                        // [0, 146096]
  const std::int64_t yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;   // [0, 399]
  const std::int64_t y = yoe + era * 400;
  const std::int64_t doy = doe - (365 * yoe + yoe / 4 - yoe / 100);                 // [0, 365]
  const std::int64_t mp = (5 * doy + 2) / 153;                                      // [0, 11]
  const std::int64_t d = doy - (153 * mp + 2) / 5 + 1;                              // [1, 31]
  const std::int64_t m = mp + (mp < 10 ? 3 : -9);                                   // [1, 12]
  return CivilDate{static_cast<std::int32_t>(y + (m <= 2)), static_cast<std::int32_t>(m),
                   static_cast<std::int32_t>(d)};
}

std::int32_t weekday_of(const CivilDate& date) noexcept {
  const std::int64_t days = days_from_civil(date);
  // 1970-01-01 was a Thursday (weekday 4).
  return static_cast<std::int32_t>(((days % 7) + 7 + 4) % 7);
}

std::int32_t day_of_year(const CivilDate& date) noexcept {
  return static_cast<std::int32_t>(days_from_civil(date) -
                                   days_from_civil(CivilDate{date.year, 1, 1})) +
         1;
}

CivilDate nth_weekday_of_month(std::int32_t year, std::int32_t month, std::int32_t weekday,
                               std::int32_t n) {
  if (weekday < 0 || weekday > 6 || n < 1 || n > 5) {
    throw std::invalid_argument("nth_weekday_of_month: weekday in 0..6, n in 1..5");
  }
  const std::int32_t first_wd = weekday_of(CivilDate{year, month, 1});
  const std::int32_t offset = (weekday - first_wd + 7) % 7;
  const std::int32_t day = 1 + offset + (n - 1) * 7;
  if (day > days_in_month(year, month)) {
    throw std::invalid_argument("nth_weekday_of_month: occurrence does not exist");
  }
  return CivilDate{year, month, day};
}

CivilDate last_weekday_of_month(std::int32_t year, std::int32_t month,
                                std::int32_t weekday) noexcept {
  const std::int32_t last_day = days_in_month(year, month);
  const std::int32_t last_wd = weekday_of(CivilDate{year, month, last_day});
  const std::int32_t offset = (last_wd - weekday + 7) % 7;
  return CivilDate{year, month, last_day - offset};
}

UtcSeconds to_utc_seconds(const CivilDateTime& dt) noexcept {
  return days_from_civil(dt.date) * kSecondsPerDay + dt.hour * kSecondsPerHour +
         dt.minute * kSecondsPerMinute + dt.second;
}

CivilDateTime from_utc_seconds(UtcSeconds instant) noexcept {
  std::int64_t days = instant / kSecondsPerDay;
  std::int64_t rem = instant % kSecondsPerDay;
  if (rem < 0) {
    rem += kSecondsPerDay;
    --days;
  }
  CivilDateTime dt;
  dt.date = civil_from_days(days);
  dt.hour = static_cast<std::int32_t>(rem / kSecondsPerHour);
  dt.minute = static_cast<std::int32_t>((rem / kSecondsPerMinute) % 60);
  dt.second = static_cast<std::int32_t>(rem % 60);
  return dt;
}

std::int32_t hour_of_day(UtcSeconds instant, std::int64_t offset_seconds) noexcept {
  std::int64_t local = instant + offset_seconds;
  std::int64_t rem = local % kSecondsPerDay;
  if (rem < 0) rem += kSecondsPerDay;
  return static_cast<std::int32_t>(rem / kSecondsPerHour);
}

std::string to_string(const CivilDate& date) {
  char buffer[16];
  std::snprintf(buffer, sizeof buffer, "%04d-%02d-%02d", date.year, date.month, date.day);
  return buffer;
}

std::string to_string(const CivilDateTime& dt) {
  char buffer[32];
  std::snprintf(buffer, sizeof buffer, "%04d-%02d-%02d %02d:%02d:%02d", dt.date.year,
                dt.date.month, dt.date.day, dt.hour, dt.minute, dt.second);
  return buffer;
}

}  // namespace tzgeo::tz
