#include "timezone/civil.hpp"

#include <cstdio>
#include <limits>
#include <stdexcept>

#include "util/constants.hpp"

namespace tzgeo::tz {

namespace {

/// Replicates sscanf's "%d" conversion: optional leading whitespace, an
/// optional single sign, then at least one decimal digit (greedy).  Unlike
/// sscanf, overflow fails cleanly instead of being undefined.
[[nodiscard]] constexpr bool is_space(char c) noexcept {
  return c == ' ' || (c >= '\t' && c <= '\r');  // the "C"-locale isspace set
}

[[nodiscard]] bool scan_int(std::string_view text, std::size_t& pos, std::int32_t& out) noexcept {
  std::size_t i = pos;
  while (i < text.size() && is_space(text[i])) ++i;
  bool negative = false;
  if (i < text.size() && (text[i] == '+' || text[i] == '-')) {
    negative = text[i] == '-';
    ++i;
  }
  if (i >= text.size() || text[i] < '0' || text[i] > '9') return false;
  std::int64_t value = 0;
  while (i < text.size() && text[i] >= '0' && text[i] <= '9') {
    value = value * 10 + (text[i] - '0');
    if (value > std::numeric_limits<std::int32_t>::max()) return false;
    ++i;
  }
  out = static_cast<std::int32_t>(negative ? -value : value);
  pos = i;
  return true;
}

}  // namespace

CivilDate civil_from_days(std::int64_t days) noexcept {
  std::int64_t z = days + 719468;
  const std::int64_t era = (z >= 0 ? z : z - 146096) / 146097;
  const std::int64_t doe = z - era * 146097;                                        // [0, 146096]
  const std::int64_t yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;   // [0, 399]
  const std::int64_t y = yoe + era * 400;
  const std::int64_t doy = doe - (365 * yoe + yoe / 4 - yoe / 100);                 // [0, 365]
  const std::int64_t mp = (5 * doy + 2) / 153;                                      // [0, 11]
  const std::int64_t d = doy - (153 * mp + 2) / 5 + 1;                              // [1, 31]
  const std::int64_t m = mp + (mp < 10 ? 3 : -9);                                   // [1, 12]
  return CivilDate{static_cast<std::int32_t>(y + (m <= 2)), static_cast<std::int32_t>(m),
                   static_cast<std::int32_t>(d)};
}

std::int32_t weekday_of(const CivilDate& date) noexcept {
  const std::int64_t days = days_from_civil(date);
  // 1970-01-01 was a Thursday (weekday 4).
  return static_cast<std::int32_t>(((days % 7) + 7 + 4) % 7);
}

std::int32_t day_of_year(const CivilDate& date) noexcept {
  return static_cast<std::int32_t>(days_from_civil(date) -
                                   days_from_civil(CivilDate{date.year, 1, 1})) +
         1;
}

CivilDate nth_weekday_of_month(std::int32_t year, std::int32_t month, std::int32_t weekday,
                               std::int32_t n) {
  if (weekday < 0 || weekday > 6 || n < 1 || n > 5) {
    throw std::invalid_argument("nth_weekday_of_month: weekday in 0..6, n in 1..5");
  }
  const std::int32_t first_wd = weekday_of(CivilDate{year, month, 1});
  const std::int32_t offset = (weekday - first_wd + 7) % 7;
  const std::int32_t day = 1 + offset + (n - 1) * 7;
  if (day > days_in_month(year, month)) {
    throw std::invalid_argument("nth_weekday_of_month: occurrence does not exist");
  }
  return CivilDate{year, month, day};
}

CivilDate last_weekday_of_month(std::int32_t year, std::int32_t month,
                                std::int32_t weekday) noexcept {
  const std::int32_t last_day = days_in_month(year, month);
  const std::int32_t last_wd = weekday_of(CivilDate{year, month, last_day});
  const std::int32_t offset = (last_wd - weekday + 7) % 7;
  return CivilDate{year, month, last_day - offset};
}

CivilDateTime from_utc_seconds(UtcSeconds instant) noexcept {
  std::int64_t days = instant / kSecondsPerDay;
  std::int64_t rem = instant % kSecondsPerDay;
  if (rem < 0) {
    rem += kSecondsPerDay;
    --days;
  }
  CivilDateTime dt;
  dt.date = civil_from_days(days);
  dt.hour = static_cast<std::int32_t>(rem / kSecondsPerHour);
  dt.minute = static_cast<std::int32_t>((rem / kSecondsPerMinute) % 60);
  dt.second = static_cast<std::int32_t>(rem % 60);
  return dt;
}

std::int32_t hour_of_day(UtcSeconds instant, std::int64_t offset_seconds) noexcept {
  std::int64_t local = instant + offset_seconds;
  std::int64_t rem = local % kSecondsPerDay;
  if (rem < 0) rem += kSecondsPerDay;
  return static_cast<std::int32_t>(rem / kSecondsPerHour);
}

std::string to_string(const CivilDate& date) {
  char buffer[16];
  std::snprintf(buffer, sizeof buffer, "%04d-%02d-%02d", date.year, date.month, date.day);
  return buffer;
}

std::string to_string(const CivilDateTime& dt) {
  char buffer[32];
  std::snprintf(buffer, sizeof buffer, "%04d-%02d-%02d %02d:%02d:%02d", dt.date.year,
                dt.date.month, dt.date.day, dt.hour, dt.minute, dt.second);
  return buffer;
}

std::optional<CivilDateTime> parse_civil_datetime(std::string_view text,
                                                  std::size_t* consumed) noexcept {
  std::size_t pos = 0;
  const auto literal = [&text, &pos](char expected) noexcept {
    if (pos >= text.size() || text[pos] != expected) return false;
    ++pos;
    return true;
  };
  std::int32_t year = 0, month = 0, day = 0, hour = 0, minute = 0, second = 0;
  // "%d-%d-%d %d:%d:%d": the format-string space between day and hour
  // matched zero-or-more whitespace, which scan_int's own skip subsumes.
  if (!scan_int(text, pos, year) || !literal('-') || !scan_int(text, pos, month) ||
      !literal('-') || !scan_int(text, pos, day) || !scan_int(text, pos, hour) ||
      !literal(':') || !scan_int(text, pos, minute) || !literal(':') ||
      !scan_int(text, pos, second)) {
    return std::nullopt;
  }
  if (month < 1 || month > 12 || day < 1 || day > days_in_month(year, month)) {
    return std::nullopt;
  }
  if (hour < 0 || hour > kMaxHourOfDay || minute < 0 || minute > 59 || second < 0 ||
      second > 59) {
    return std::nullopt;
  }
  if (consumed != nullptr) *consumed = pos;
  return CivilDateTime{CivilDate{year, month, day}, hour, minute, second};
}

}  // namespace tzgeo::tz
