// Daylight-saving-time rule engine.
//
// The paper's hemisphere trick (Section V-F) rests on the asymmetry between
// Northern rules (clocks advance roughly March..October) and Southern rules
// (roughly October..February).  We model a DST rule as a pair of yearly
// transitions, each anchored to the nth/last weekday of a month at a given
// hour, evaluated either in UTC (EU style) or in local standard time
// (US/Brazil style).
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "timezone/civil.hpp"

namespace tzgeo::tz {

/// Which occurrence of the weekday within the month anchors a transition.
enum class WeekOfMonth : std::uint8_t { kFirst = 1, kSecond, kThird, kFourth, kLast };

/// Clock basis in which the transition hour is expressed.
enum class TransitionBasis : std::uint8_t { kUtc, kLocalStandard };

/// One yearly transition (e.g. "last Sunday of March, 01:00 UTC").
struct DstTransition {
  std::int32_t month = 1;          ///< 1..12
  WeekOfMonth week = WeekOfMonth::kFirst;
  std::int32_t weekday = 0;        ///< 0 = Sunday .. 6 = Saturday
  std::int32_t hour = 2;           ///< 0..23, in `basis`
  TransitionBasis basis = TransitionBasis::kLocalStandard;

  /// Resolves the transition instant for a given year, given the zone's
  /// standard (non-DST) offset from UTC in seconds.
  [[nodiscard]] UtcSeconds instant(std::int32_t year, std::int64_t standard_offset_seconds) const;
};

/// A complete DST rule: begin/end transitions plus the saving amount.
///
/// Northern-hemisphere rules have begin.month < end.month (DST spans the
/// middle of the civil year); Southern rules have begin.month > end.month
/// (DST wraps around New Year).  A disengaged rule means "no DST".
struct DstRule {
  DstTransition begin;   ///< clocks go forward
  DstTransition end;     ///< clocks go back
  std::int64_t saving_seconds = kSecondsPerHour;

  /// True when DST is in force at `instant` for a zone whose standard
  /// offset is `standard_offset_seconds`.
  [[nodiscard]] bool in_effect(UtcSeconds instant, std::int64_t standard_offset_seconds) const;

  /// True when the rule wraps around New Year (Southern hemisphere).
  [[nodiscard]] bool southern() const noexcept { return begin.month > end.month; }
};

/// Hemisphere of a region, derived from (or orthogonal to) its DST rule.
enum class Hemisphere : std::uint8_t { kNorthern, kSouthern, kNone };

/// Preset rules used by the zone database.
namespace rules {

/// EU: last Sunday of March 01:00 UTC -> last Sunday of October 01:00 UTC.
[[nodiscard]] DstRule european_union();

/// USA/Canada: 2nd Sunday of March 02:00 local -> 1st Sunday of November
/// 02:00 local.
[[nodiscard]] DstRule united_states();

/// Brazil (pre-2019): 3rd Sunday of October 00:00 local -> 3rd Sunday of
/// February 00:00 local.  Southern rule.
[[nodiscard]] DstRule brazil();

/// Australia (NSW/Vic/SA): 1st Sunday of October 02:00 local -> 1st Sunday
/// of April 03:00 local.  Southern rule.
[[nodiscard]] DstRule australia_southeast();

/// Paraguay: 1st Sunday of October 00:00 local -> 4th Sunday of March
/// 00:00 local.  Southern rule.
[[nodiscard]] DstRule paraguay();

}  // namespace rules

}  // namespace tzgeo::tz
