#include "timezone/timezone.hpp"

#include <stdexcept>
#include <utility>

namespace tzgeo::tz {

TimeZone::TimeZone(std::string name, std::int32_t standard_offset_minutes)
    : name_(std::move(name)), standard_offset_minutes_(standard_offset_minutes) {
  if (standard_offset_minutes_ < -12 * 60 || standard_offset_minutes_ > 14 * 60) {
    throw std::invalid_argument("TimeZone: offset out of range [-12h, +14h]");
  }
}

TimeZone::TimeZone(std::string name, std::int32_t standard_offset_minutes, DstRule rule,
                   Hemisphere hemisphere)
    : TimeZone(std::move(name), standard_offset_minutes) {
  rule_ = rule;
  hemisphere_ = hemisphere;
}

std::int64_t TimeZone::offset_at(UtcSeconds instant) const {
  std::int64_t offset = standard_offset_seconds();
  if (rule_ && rule_->in_effect(instant, offset)) {
    offset += rule_->saving_seconds;
  }
  return offset;
}

bool TimeZone::dst_in_effect(UtcSeconds instant) const {
  return rule_ && rule_->in_effect(instant, standard_offset_seconds());
}

CivilDateTime TimeZone::to_local(UtcSeconds instant) const {
  return from_utc_seconds(instant + offset_at(instant));
}

UtcSeconds TimeZone::to_utc(const CivilDateTime& local) const {
  // First guess: interpret the civil time at the standard offset, then
  // re-evaluate the offset at that instant and correct once.  This resolves
  // to the DST offset inside the DST window (returning the earlier instant
  // in the fall-back overlap) and to the standard offset outside it.
  const UtcSeconds naive = to_utc_seconds(local);
  const UtcSeconds guess = naive - standard_offset_seconds();
  const std::int64_t offset = offset_at(guess);
  const UtcSeconds corrected = naive - offset;
  // If applying the corrected offset changes the DST verdict (edge of a
  // transition), prefer the corrected instant's own offset.
  const std::int64_t offset2 = offset_at(corrected);
  return offset2 == offset ? corrected : naive - offset2;
}

std::int32_t TimeZone::local_hour(UtcSeconds instant) const {
  return hour_of_day(instant, offset_at(instant));
}

}  // namespace tzgeo::tz
