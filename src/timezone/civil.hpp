// Proleptic-Gregorian civil calendar arithmetic.
//
// tzgeo carries its own civil-time substrate instead of relying on the
// platform's tz database: the paper's methodology depends on precise,
// reproducible DST handling for arbitrary regions, and the build must be
// hermetic.  The day<->triple algorithms follow Howard Hinnant's
// "chrono-compatible low-level date algorithms".
//
// Conventions:
//   * Instants are UtcSeconds: seconds since 1970-01-01T00:00:00Z.
//   * Civil dates are proleptic Gregorian; months/days are 1-based.
//   * Weekday: 0 = Sunday .. 6 = Saturday.
#pragma once

#include <compare>
#include <cstdint>
#include <string>

namespace tzgeo::tz {

/// Seconds since the Unix epoch (UTC).
using UtcSeconds = std::int64_t;

inline constexpr std::int64_t kSecondsPerMinute = 60;
inline constexpr std::int64_t kSecondsPerHour = 3600;
inline constexpr std::int64_t kSecondsPerDay = 86400;

/// A calendar date (no time-of-day, no zone).
struct CivilDate {
  std::int32_t year = 1970;
  std::int32_t month = 1;  ///< 1..12
  std::int32_t day = 1;    ///< 1..31

  friend auto operator<=>(const CivilDate&, const CivilDate&) = default;
};

/// A calendar date plus time-of-day (no zone).
struct CivilDateTime {
  CivilDate date;
  std::int32_t hour = 0;    ///< 0..23
  std::int32_t minute = 0;  ///< 0..59
  std::int32_t second = 0;  ///< 0..59

  friend auto operator<=>(const CivilDateTime&, const CivilDateTime&) = default;
};

/// True for Gregorian leap years.
[[nodiscard]] constexpr bool is_leap_year(std::int32_t year) noexcept {
  return year % 4 == 0 && (year % 100 != 0 || year % 400 == 0);
}

/// Days in the given month (1..12) of the given year.
[[nodiscard]] constexpr std::int32_t days_in_month(std::int32_t year, std::int32_t month) noexcept {
  constexpr std::int32_t lengths[12] = {31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31};
  if (month == 2 && is_leap_year(year)) return 29;
  return lengths[month - 1];
}

/// Serial day number of a civil date (days since 1970-01-01; Hinnant).
[[nodiscard]] std::int64_t days_from_civil(const CivilDate& date) noexcept;

/// Inverse of days_from_civil.
[[nodiscard]] CivilDate civil_from_days(std::int64_t days) noexcept;

/// Weekday of a civil date: 0 = Sunday .. 6 = Saturday.
[[nodiscard]] std::int32_t weekday_of(const CivilDate& date) noexcept;

/// Day of year (1..366).
[[nodiscard]] std::int32_t day_of_year(const CivilDate& date) noexcept;

/// The date of the nth (1-based) occurrence of `weekday` in (year, month).
/// Requires the occurrence to exist (n in 1..4 always exists; n == 5 may not).
[[nodiscard]] CivilDate nth_weekday_of_month(std::int32_t year, std::int32_t month,
                                             std::int32_t weekday, std::int32_t n);

/// The date of the last occurrence of `weekday` in (year, month).
[[nodiscard]] CivilDate last_weekday_of_month(std::int32_t year, std::int32_t month,
                                              std::int32_t weekday) noexcept;

/// Converts a civil datetime (interpreted as UTC) to an instant.
[[nodiscard]] UtcSeconds to_utc_seconds(const CivilDateTime& dt) noexcept;

/// Converts an instant to the civil datetime in UTC.
[[nodiscard]] CivilDateTime from_utc_seconds(UtcSeconds instant) noexcept;

/// Hour-of-day (0..23) of an instant offset by `offset_seconds` from UTC.
[[nodiscard]] std::int32_t hour_of_day(UtcSeconds instant, std::int64_t offset_seconds) noexcept;

/// "YYYY-MM-DD" / "YYYY-MM-DD HH:MM:SS" rendering (always zero-padded).
[[nodiscard]] std::string to_string(const CivilDate& date);
[[nodiscard]] std::string to_string(const CivilDateTime& dt);

}  // namespace tzgeo::tz
