// Proleptic-Gregorian civil calendar arithmetic.
//
// tzgeo carries its own civil-time substrate instead of relying on the
// platform's tz database: the paper's methodology depends on precise,
// reproducible DST handling for arbitrary regions, and the build must be
// hermetic.  The day<->triple algorithms follow Howard Hinnant's
// "chrono-compatible low-level date algorithms".
//
// Conventions:
//   * Instants are UtcSeconds: seconds since 1970-01-01T00:00:00Z.
//   * Civil dates are proleptic Gregorian; months/days are 1-based.
//   * Weekday: 0 = Sunday .. 6 = Saturday.
#pragma once

#include <compare>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace tzgeo::tz {

/// Seconds since the Unix epoch (UTC).
using UtcSeconds = std::int64_t;

inline constexpr std::int64_t kSecondsPerMinute = 60;
inline constexpr std::int64_t kSecondsPerHour = 3600;
inline constexpr std::int64_t kSecondsPerDay = 86400;

/// A calendar date (no time-of-day, no zone).
struct CivilDate {
  std::int32_t year = 1970;
  std::int32_t month = 1;  ///< 1..12
  std::int32_t day = 1;    ///< 1..31

  friend auto operator<=>(const CivilDate&, const CivilDate&) = default;
};

/// A calendar date plus time-of-day (no zone).
struct CivilDateTime {
  CivilDate date;
  std::int32_t hour = 0;    ///< 0..23
  std::int32_t minute = 0;  ///< 0..59
  std::int32_t second = 0;  ///< 0..59

  friend auto operator<=>(const CivilDateTime&, const CivilDateTime&) = default;
};

/// True for Gregorian leap years.
[[nodiscard]] constexpr bool is_leap_year(std::int32_t year) noexcept {
  return year % 4 == 0 && (year % 100 != 0 || year % 400 == 0);
}

/// Days in the given month (1..12) of the given year.
[[nodiscard]] constexpr std::int32_t days_in_month(std::int32_t year, std::int32_t month) noexcept {
  constexpr std::int32_t lengths[12] = {31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31};
  if (month == 2 && is_leap_year(year)) return 29;
  return lengths[month - 1];
}

/// Serial day number of a civil date (days since 1970-01-01; Hinnant).
/// Inline: the ingest hot path converts one parsed civil datetime per CSV
/// row, and this is pure integer arithmetic.
[[nodiscard]] inline constexpr std::int64_t days_from_civil(const CivilDate& date) noexcept {
  // Hinnant's days_from_civil, shifted so that 1970-01-01 -> 0.
  std::int64_t y = date.year;
  const std::int64_t m = date.month;
  const std::int64_t d = date.day;
  y -= m <= 2;
  const std::int64_t era = (y >= 0 ? y : y - 399) / 400;
  const std::int64_t yoe = y - era * 400;                                   // [0, 399]
  const std::int64_t doy = (153 * (m + (m > 2 ? -3 : 9)) + 2) / 5 + d - 1;  // [0, 365]
  const std::int64_t doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;           // [0, 146096]
  return era * 146097 + doe - 719468;
}

/// Inverse of days_from_civil.
[[nodiscard]] CivilDate civil_from_days(std::int64_t days) noexcept;

/// Weekday of a civil date: 0 = Sunday .. 6 = Saturday.
[[nodiscard]] std::int32_t weekday_of(const CivilDate& date) noexcept;

/// Day of year (1..366).
[[nodiscard]] std::int32_t day_of_year(const CivilDate& date) noexcept;

/// The date of the nth (1-based) occurrence of `weekday` in (year, month).
/// Requires the occurrence to exist (n in 1..4 always exists; n == 5 may not).
[[nodiscard]] CivilDate nth_weekday_of_month(std::int32_t year, std::int32_t month,
                                             std::int32_t weekday, std::int32_t n);

/// The date of the last occurrence of `weekday` in (year, month).
[[nodiscard]] CivilDate last_weekday_of_month(std::int32_t year, std::int32_t month,
                                              std::int32_t weekday) noexcept;

/// Converts a civil datetime (interpreted as UTC) to an instant.
[[nodiscard]] inline constexpr UtcSeconds to_utc_seconds(const CivilDateTime& dt) noexcept {
  return days_from_civil(dt.date) * kSecondsPerDay + dt.hour * kSecondsPerHour +
         dt.minute * kSecondsPerMinute + dt.second;
}

/// Converts an instant to the civil datetime in UTC.
[[nodiscard]] CivilDateTime from_utc_seconds(UtcSeconds instant) noexcept;

/// Hour-of-day (0..23) of an instant offset by `offset_seconds` from UTC.
[[nodiscard]] std::int32_t hour_of_day(UtcSeconds instant, std::int64_t offset_seconds) noexcept;

/// "YYYY-MM-DD" / "YYYY-MM-DD HH:MM:SS" rendering (always zero-padded).
[[nodiscard]] std::string to_string(const CivilDate& date);
[[nodiscard]] std::string to_string(const CivilDateTime& dt);

/// Parses a "YYYY-MM-DD HH:MM:SS" prefix of `text` into a validated civil
/// datetime — the branch-light replacement for the sscanf-based parsers
/// that used to sit in ingest and the forum scraper.  Number scanning
/// mirrors sscanf's "%d": optional leading whitespace, optional sign,
/// then decimal digits (so "2016-5-2 3:4:5" and "2016-05-12\t18:03:44"
/// parse, while "2016-13-01 ..." fails validation).  On success,
/// `*consumed` (when non-null) is set to the offset just past the seconds
/// field; callers decide what trailing bytes are acceptable.  Returns
/// std::nullopt on malformed or out-of-range input.
[[nodiscard]] std::optional<CivilDateTime> parse_civil_datetime(
    std::string_view text, std::size_t* consumed = nullptr) noexcept;

}  // namespace tzgeo::tz
