// Named zone database.
//
// Covers the 14 ground-truth regions of Table I plus every zone named in
// Section V of the paper (forum analyses and the hemisphere study).  This is
// intentionally a small curated table, not a full IANA mirror: tzgeo only
// needs the zones the experiments touch, with 2016-era rules (the Twitter
// dataset year), and must not depend on the host system's tzdata.
#pragma once

#include <string_view>
#include <vector>

#include "timezone/timezone.hpp"

namespace tzgeo::tz {

/// Looks up a zone by name (e.g. "Europe/Berlin", "America/Chicago").
/// Throws std::out_of_range for unknown names.
[[nodiscard]] const TimeZone& zone(std::string_view name);

/// True when `name` is present in the database.
[[nodiscard]] bool has_zone(std::string_view name) noexcept;

/// All zone names, sorted.
[[nodiscard]] std::vector<std::string_view> zone_names();

/// A fixed whole-hour offset zone ("UTC+3"), no DST.  hours in [-11, 12].
[[nodiscard]] TimeZone fixed_zone(std::int32_t hours);

/// Canonical label for a whole-hour world time zone: "UTC-6", "UTC", "UTC+1".
[[nodiscard]] std::string utc_label(std::int32_t hours);

}  // namespace tzgeo::tz
