#include "synth/region_presets.hpp"

#include <stdexcept>

namespace tzgeo::synth {

const std::vector<RegionSpec>& table1_regions() {
  static const std::vector<RegionSpec> regions = {
      {"Brazil", "America/Sao_Paulo", 3763},
      {"California", "America/Los_Angeles", 2868},
      {"Finland", "Europe/Helsinki", 73},
      {"France", "Europe/Paris", 2222},
      {"Germany", "Europe/Berlin", 470},
      {"Illinois", "America/Chicago", 794},
      {"Italy", "Europe/Rome", 734},
      {"Japan", "Asia/Tokyo", 3745},
      {"Malaysia", "Asia/Kuala_Lumpur", 1714},
      {"New South Wales", "Australia/Sydney", 151},
      {"New York", "America/New_York", 1417},
      {"Poland", "Europe/Warsaw", 375},
      {"Turkey", "Europe/Istanbul", 1019},
      {"United Kingdom", "Europe/London", 3231},
  };
  return regions;
}

const RegionSpec& table1_region(const std::string& name) {
  for (const auto& region : table1_regions()) {
    if (region.name == name) return region;
  }
  throw std::out_of_range("table1_region: unknown region '" + name + "'");
}

const std::vector<ForumCrowdSpec>& paper_forums() {
  // Compositions follow the components the paper's GMM uncovered
  // (Figures 9-13); fractions reflect the relative component sizes the
  // text describes ("the largest one", "a smaller component", ...).
  static const std::vector<ForumCrowdSpec> forums = {
      {"CRD Club",
       "crdclub4wraumez4",
       209,
       14809,
       {{"Russia (Moscow)", "Europe/Moscow", 0.85},
        {"Caucasus (Yerevan)", "Asia/Yerevan", 0.15}},
       3 * 60},  // server shows Moscow time
      {"Italian DarkNet Community",
       "idcrldul6umarqwi",
       52,
       1711,
       {{"Italy", "Europe/Rome", 1.0}},
       0},  // server shows UTC
      // The UTC+1 crowds mix EU-DST users with non-DST Africans (the paper:
      // "the UTC+1 time zone, aside from Europe, covers also part of
      // Africa"); the UTC-6 crowds mix the US Central and Mountain belts
      // (the paper calls the component "the American Mountain Time Zone").
      {"Dream Market",
       "tmskhzavkycdupbr",
       189,
       14499,
       {{"Europe (UTC+1)", "Europe/Berlin", 0.50},
        {"Africa (UTC+1, no DST)", "UTC+1", 0.18},
        {"US Central (UTC-6)", "America/Chicago", 0.20},
        {"US Mountain (UTC-7)", "America/Denver", 0.12}},
       -5 * 60},  // deliberately shifted server clock
      {"The Majestic Garden",
       "bm26rwk32m7u7rec",
       638,
       75875,
       {{"US Central (UTC-6)", "America/Chicago", 0.38},
        {"US Mountain (UTC-7)", "America/Denver", 0.24},
        {"Europe (UTC+1)", "Europe/Paris", 0.28},
        {"Africa (UTC+1, no DST)", "UTC+1", 0.10}},
       0},
      {"Pedo Support Community",
       "support26v5pvkg6",
       290,
       44876,
       {{"US Pacific (UTC-8)", "America/Los_Angeles", 0.50},
        {"Southern Brazil (UTC-3)", "America/Sao_Paulo", 0.30},
        {"Caucasus/Gulf (UTC+4)", "Asia/Yerevan", 0.20}},
       2 * 60},
  };
  return forums;
}

const ForumCrowdSpec& paper_forum(const std::string& name) {
  for (const auto& forum : paper_forums()) {
    if (forum.forum_name == name) return forum;
  }
  throw std::out_of_range("paper_forum: unknown forum '" + name + "'");
}

}  // namespace tzgeo::synth
