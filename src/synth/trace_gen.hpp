// Trace generation: personas -> (user, UTC timestamp) post events.
//
// Events are drawn in the persona's local time (day, then hour from the
// persona's hourly distribution) and converted to UTC through the region's
// TimeZone, so DST transitions shift the UTC profile exactly as they do for
// real users — the signal the hemisphere analysis (Section V-F) relies on.
#pragma once

#include <cstdint>
#include <vector>

#include "synth/persona.hpp"
#include "timezone/civil.hpp"
#include "timezone/timezone.hpp"
#include "util/rng.hpp"

namespace tzgeo::synth {

/// One post: who and when (UTC).
struct PostEvent {
  std::uint64_t user = 0;
  tz::UtcSeconds time = 0;

  friend bool operator==(const PostEvent&, const PostEvent&) = default;
};

/// Calendar periods of suppressed activity ("particularly low activity,
/// like holidays" — Section IV).  Periods are month/day ranges that repeat
/// every year; a range may wrap around New Year.
class HolidayCalendar {
 public:
  struct Period {
    std::int32_t start_month = 1, start_day = 1;  ///< inclusive
    std::int32_t end_month = 1, end_day = 1;      ///< inclusive
  };

  HolidayCalendar() = default;
  HolidayCalendar(std::vector<Period> periods, double activity_factor);

  /// Christmas/New Year break plus a mid-August lull, activity x0.25.
  [[nodiscard]] static HolidayCalendar typical();
  /// No holidays.
  [[nodiscard]] static HolidayCalendar none();

  [[nodiscard]] bool is_holiday(const tz::CivilDate& date) const noexcept;
  /// Multiplier applied to activity on holiday dates (1.0 elsewhere).
  [[nodiscard]] double factor_on(const tz::CivilDate& date) const noexcept;

 private:
  std::vector<Period> periods_;
  double activity_factor_ = 1.0;
};

/// Options for trace generation.
struct TraceOptions {
  tz::CivilDate start{2016, 1, 1};
  tz::CivilDate end{2017, 1, 1};  ///< exclusive
  HolidayCalendar holidays = HolidayCalendar::typical();
  bool holidays_affect_bots = false;  ///< bots keep posting through holidays
  /// Posting comes in sessions: a user who posts once often posts again
  /// within minutes (reply chains).  Each generated post spawns follow-ups
  /// with this probability (geometric burst length), a few minutes apart.
  /// Equation 1's boolean (day, hour) cells exist precisely so such bursts
  /// do not over-weight an hour; set to 0 for un-bursty traces.
  double burst_probability = 0.35;
  std::int64_t burst_gap_max_seconds = 600;
};

/// Generates all posts of one persona over the option window, sorted by time.
[[nodiscard]] std::vector<PostEvent> generate_trace(const Persona& persona,
                                                    const tz::TimeZone& zone,
                                                    const TraceOptions& options, util::Rng& rng);

/// Generates and concatenates the traces of a population (sorted by time).
/// Each persona's zone is resolved through the zone database by name.
[[nodiscard]] std::vector<PostEvent> generate_population_trace(
    const std::vector<Persona>& personas, const TraceOptions& options, util::Rng& rng);

}  // namespace tzgeo::synth
