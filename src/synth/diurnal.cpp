#include "synth/diurnal.hpp"

#include <algorithm>
#include <cmath>

namespace tzgeo::synth {

namespace {

/// Wrapped squared-exponential bump on the 24-hour circle.
[[nodiscard]] double wrapped_bump(double hour, double center, double sigma) noexcept {
  double best = 1e9;
  for (int k = -1; k <= 1; ++k) {
    const double d = hour - center + kHoursPerDayF * static_cast<double>(k);
    best = std::min(best, std::abs(d));
  }
  return std::exp(-0.5 * (best / sigma) * (best / sigma));
}

}  // namespace

HourlyRates evaluate_shape(const DiurnalShape& shape) {
  HourlyRates rates{};
  double total = 0.0;
  for (std::size_t h = 0; h < kHoursPerDay; ++h) {
    const auto hour = static_cast<double>(h) + 0.5;  // bin center
    double value = shape.baseline;
    value += shape.morning_weight *
             wrapped_bump(hour, shape.morning_peak_hour, shape.morning_sigma);
    value += shape.evening_weight *
             wrapped_bump(hour, shape.evening_peak_hour, shape.evening_sigma);
    rates[h] = value;
    total += value;
  }
  for (double& r : rates) r /= total;
  return rates;
}

DiurnalShape personal_shape(const DiurnalShape& base, const ChronotypeJitter& jitter,
                            util::Rng& rng) {
  DiurnalShape shape = base;
  double phase = rng.normal(0.0, jitter.phase_sigma_hours);
  phase = std::clamp(phase, -jitter.max_abs_phase_hours, jitter.max_abs_phase_hours);
  const auto wrap24 = [](double h) {
    while (h < 0.0) h += kHoursPerDayF;
    while (h >= kHoursPerDayF) h -= kHoursPerDayF;
    return h;
  };
  shape.morning_peak_hour = wrap24(base.morning_peak_hour + phase);
  shape.evening_peak_hour = wrap24(base.evening_peak_hour + phase);

  const auto jittered = [&rng](double value, double rel) {
    return value * std::max(0.1, 1.0 + rng.normal(0.0, rel));
  };
  shape.morning_weight = jittered(base.morning_weight, jitter.weight_jitter);
  shape.evening_weight = jittered(base.evening_weight, jitter.weight_jitter);
  shape.morning_sigma = jittered(base.morning_sigma, jitter.width_jitter);
  shape.evening_sigma = jittered(base.evening_sigma, jitter.width_jitter);
  return shape;
}

HourlyRates flat_rates(double wobble, util::Rng& rng) {
  HourlyRates rates{};
  double total = 0.0;
  for (double& r : rates) {
    r = std::max(1e-6, 1.0 + (wobble > 0.0 ? rng.normal(0.0, wobble) : 0.0));
    total += r;
  }
  for (double& r : rates) r /= total;
  return rates;
}

HourlyRates shift_rates(const HourlyRates& rates, std::int32_t hours) {
  HourlyRates out{};
  const auto n = static_cast<std::int32_t>(kHoursPerDay);
  const std::int32_t s = ((hours % n) + n) % n;
  for (std::int32_t h = 0; h < n; ++h) {
    out[static_cast<std::size_t>((h + s) % n)] = rates[static_cast<std::size_t>(h)];
  }
  return out;
}

}  // namespace tzgeo::synth
