// Synthetic user personas.
//
// A persona is a user with a region, a behaviour kind, an individual hourly
// rhythm (local time), and an activity volume.  The Twitter-equivalent
// dataset and the forum engine both draw their populations from here.
#pragma once

#include <cstdint>
#include <string>

#include "synth/diurnal.hpp"
#include "timezone/timezone.hpp"
#include "util/rng.hpp"

namespace tzgeo::synth {

/// Behaviour classes found in the polished datasets (Section IV-C):
/// regular humans dominate; bots have flat profiles; shift workers are the
/// rare humans whose flat-ish or inverted profile survives polishing.
enum class PersonaKind : std::uint8_t {
  kRegular,
  kBot,
  kShiftWorker,
};

[[nodiscard]] const char* to_string(PersonaKind kind) noexcept;

/// Weekly rest-day pattern (weekday indices, 0 = Sunday .. 6 = Saturday).
/// Most of the world rests Saturday/Sunday; much of the Middle East and
/// North Africa rests Friday/Saturday — a cultural fingerprint orthogonal
/// to the time zone.
struct RestDays {
  std::array<bool, 7> days{};

  [[nodiscard]] static RestDays saturday_sunday() {
    RestDays r;
    r.days[6] = r.days[0] = true;
    return r;
  }
  [[nodiscard]] static RestDays friday_saturday() {
    RestDays r;
    r.days[5] = r.days[6] = true;
    return r;
  }
  [[nodiscard]] bool is_rest(std::int32_t weekday) const {
    return days.at(static_cast<std::size_t>(weekday));
  }
};

/// A fully materialized synthetic user.
struct Persona {
  std::uint64_t id = 0;
  std::string region;          ///< region label ("Germany", "Malaysia", ...)
  std::string zone_name;       ///< zone_db name ("Europe/Berlin", ...)
  PersonaKind kind = PersonaKind::kRegular;
  HourlyRates local_rates{};   ///< normalized hour-of-day distribution (local)
  double posts_per_year = 0.0; ///< expected activity volume
  RestDays rest_days = RestDays::saturday_sunday();
  /// Activity multiplier on rest days (more leisure time to post).
  double rest_day_boost = 1.3;
  /// Rest-day rhythm shift in hours (sleeping in pushes the day later).
  std::int32_t rest_day_shift = 1;
  /// Membership window: members join and leave; posts fall only inside
  /// [active_from, active_until).  Zeros mean "the whole trace window".
  tz::UtcSeconds active_from = 0;
  tz::UtcSeconds active_until = 0;
};

/// Knobs for drawing a population.
struct PersonaMix {
  double bot_fraction = 0.03;
  double shift_worker_fraction = 0.01;
  ChronotypeJitter jitter{};
  DiurnalShape base_shape = DiurnalShape::typical();
  /// Post volume: lognormal(mu, sigma); paper keeps users with >= 30 posts.
  /// The median (~220 posts/year) reflects *active* social-media users —
  /// low-volume users exist too but are filtered by the 30-post threshold.
  double volume_log_mu = 5.4;     ///< median ~ 220 posts/year
  double volume_log_sigma = 1.0;
  double bot_volume_multiplier = 6.0;  ///< bots post a lot, uniformly
};

/// Draws one persona for (region, zone) with the given mix.
[[nodiscard]] Persona draw_persona(std::uint64_t id, std::string region, std::string zone_name,
                                   const PersonaMix& mix, util::Rng& rng);

}  // namespace tzgeo::synth
