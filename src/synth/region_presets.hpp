// Region and forum presets mirroring the paper's datasets.
//
// Table I lists the 14 ground-truth Twitter regions with their active-user
// counts; Section V gives the five Dark Web forums with user/post counts and
// the crowd compositions the paper uncovered.  These presets parameterize
// the synthetic substitutes (see DESIGN.md, substitution table).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "synth/persona.hpp"

namespace tzgeo::synth {

/// One ground-truth region (Table I row).
struct RegionSpec {
  std::string name;          ///< paper label ("Brazil", "California", ...)
  std::string zone;          ///< zone_db name
  std::size_t active_users;  ///< Table I count
};

/// The 14 Table I regions with the paper's active-user counts.
[[nodiscard]] const std::vector<RegionSpec>& table1_regions();

/// Looks up a Table I region by paper label; throws std::out_of_range.
[[nodiscard]] const RegionSpec& table1_region(const std::string& name);

/// One component of a forum crowd (a region and its share of the users).
struct CrowdComponent {
  std::string region;  ///< descriptive label
  std::string zone;    ///< zone_db name
  double fraction;     ///< share of the forum's active users, sums to 1
  RestDays rest_days = RestDays::saturday_sunday();
};

/// A Dark Web forum from Section V: size, composition, server quirks.
struct ForumCrowdSpec {
  std::string forum_name;
  std::string onion_address;          ///< 16-char .onion host from the paper
  std::size_t active_users;
  std::size_t approx_posts;           ///< paper's post count after cleaning
  std::vector<CrowdComponent> components;
  std::int32_t server_offset_minutes; ///< server clock offset from UTC
};

/// The five forums of Section V with the compositions the paper reports.
[[nodiscard]] const std::vector<ForumCrowdSpec>& paper_forums();

/// Looks up a forum preset by name; throws std::out_of_range.
[[nodiscard]] const ForumCrowdSpec& paper_forum(const std::string& name);

}  // namespace tzgeo::synth
