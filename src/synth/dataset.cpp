#include "synth/dataset.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "timezone/zone_db.hpp"

namespace tzgeo::synth {

namespace {

/// Scaled user count, at least 1 when the preset count is positive.
[[nodiscard]] std::size_t scaled(std::size_t count, double scale) {
  if (count == 0) return 0;
  const double value = static_cast<double>(count) * scale;
  return std::max<std::size_t>(1, static_cast<std::size_t>(std::llround(value)));
}

/// Redraws the persona volume conditioned to be >= floor (an "active"
/// user in the paper's sense).
double conditioned_volume(util::Rng& rng, const PersonaMix& mix, double floor) {
  for (int attempt = 0; attempt < 256; ++attempt) {
    const double volume = rng.lognormal(mix.volume_log_mu, mix.volume_log_sigma);
    if (volume >= floor) return volume;
  }
  return floor + rng.exponential(1.0 / floor);  // heavy-tailed fallback
}

/// Appends `count` active personas (volume >= floor) for one region.
void append_active_personas(std::vector<Persona>& out, const std::string& region,
                            const std::string& zone_name, std::size_t count,
                            const PersonaMix& mix, double volume_floor, util::Rng& rng,
                            std::uint64_t& next_id,
                            const RestDays& rest_days = RestDays::saturday_sunday()) {
  for (std::size_t i = 0; i < count; ++i) {
    Persona persona = draw_persona(next_id++, region, zone_name, mix, rng);
    if (persona.posts_per_year < volume_floor) {
      persona.posts_per_year = conditioned_volume(rng, mix, volume_floor);
    }
    persona.rest_days = rest_days;
    out.push_back(std::move(persona));
  }
}

/// Appends sub-threshold ("non active") personas with a handful of posts.
void append_inactive_personas(std::vector<Persona>& out, const std::string& region,
                              const std::string& zone_name, std::size_t count,
                              const PersonaMix& mix, util::Rng& rng, std::uint64_t& next_id) {
  for (std::size_t i = 0; i < count; ++i) {
    Persona persona = draw_persona(next_id++, region, zone_name, mix, rng);
    persona.posts_per_year = static_cast<double>(rng.uniform_int(2, 20));
    out.push_back(std::move(persona));
  }
}

[[nodiscard]] Dataset finalize(std::string name, std::vector<Persona> users,
                               const DatasetOptions& options, util::Rng& rng) {
  Dataset dataset;
  dataset.name = std::move(name);
  dataset.users = std::move(users);

  // Churn: a share of members joins mid-window or leaves early.
  if (options.churn_fraction > 0.0) {
    const tz::UtcSeconds window_start =
        tz::to_utc_seconds({options.trace.start, 0, 0, 0});
    const tz::UtcSeconds window_end = tz::to_utc_seconds({options.trace.end, 0, 0, 0});
    for (auto& persona : dataset.users) {
      if (!rng.bernoulli(options.churn_fraction)) continue;
      const double cut = rng.uniform(0.05, 0.75);
      const auto boundary = static_cast<tz::UtcSeconds>(
          window_start + cut * static_cast<double>(window_end - window_start));
      if (rng.bernoulli(0.5)) {
        persona.active_from = boundary;  // late joiner
      } else {
        persona.active_until = boundary;  // early leaver
      }
    }
  }

  dataset.events = generate_population_trace(dataset.users, options.trace, rng);
  return dataset;
}

}  // namespace

std::size_t Dataset::posts_of(std::uint64_t user_id) const noexcept {
  std::size_t count = 0;
  for (const auto& event : events) count += (event.user == user_id) ? 1 : 0;
  return count;
}

Dataset make_region_dataset(const RegionSpec& region, std::size_t users,
                            const DatasetOptions& options) {
  util::Rng rng{options.seed ^ util::hash64(region.name)};
  std::vector<Persona> personas;
  std::uint64_t next_id = 1;
  append_active_personas(personas, region.name, region.zone, users, options.mix,
                         options.active_volume_floor, rng, next_id);
  const auto inactive = static_cast<std::size_t>(
      std::llround(static_cast<double>(users) * options.inactive_fraction));
  append_inactive_personas(personas, region.name, region.zone, inactive, options.mix, rng,
                           next_id);
  return finalize(region.name, std::move(personas), options, rng);
}

Dataset make_twitter_dataset(const DatasetOptions& options) {
  util::Rng rng{options.seed};
  std::vector<Persona> personas;
  std::uint64_t next_id = 1;
  for (const auto& region : table1_regions()) {
    const std::size_t users = scaled(region.active_users, options.scale);
    append_active_personas(personas, region.name, region.zone, users, options.mix,
                           options.active_volume_floor, rng, next_id);
    const auto inactive = static_cast<std::size_t>(
        std::llround(static_cast<double>(users) * options.inactive_fraction));
    append_inactive_personas(personas, region.name, region.zone, inactive, options.mix, rng,
                             next_id);
  }
  return finalize("Twitter", std::move(personas), options, rng);
}

Dataset make_synthetic_mix_a(const DatasetOptions& options, std::size_t users_per_zone) {
  // "A three-way repetition of the Malaysian user activity according to
  // three different timezones: UTC, Californian (UTC-7), and the Australian
  // region of New South Wales (UTC+9)."
  util::Rng rng{options.seed ^ util::hash64("mix_a")};
  std::vector<Persona> personas;
  std::uint64_t next_id = 1;
  const std::size_t users = scaled(users_per_zone, options.scale);
  for (const char* zone_name : {"UTC", "UTC-7", "UTC+9"}) {
    append_active_personas(personas, std::string{"Malaysian@"} + zone_name, zone_name, users,
                           options.mix, options.active_volume_floor, rng, next_id);
  }
  return finalize("SyntheticMixA", std::move(personas), options, rng);
}

Dataset make_synthetic_mix_b(const DatasetOptions& options) {
  // "We simply merge together users from different regions: Illinois
  // (UTC-6), Germany (UTC+1), and Malaysia (UTC+8)."
  util::Rng rng{options.seed ^ util::hash64("mix_b")};
  std::vector<Persona> personas;
  std::uint64_t next_id = 1;
  for (const char* name : {"Illinois", "Germany", "Malaysia"}) {
    const RegionSpec& region = table1_region(name);
    append_active_personas(personas, region.name, region.zone,
                           scaled(region.active_users, options.scale), options.mix,
                           options.active_volume_floor, rng, next_id);
  }
  return finalize("SyntheticMixB", std::move(personas), options, rng);
}

Dataset make_forum_crowd(const ForumCrowdSpec& spec, const DatasetOptions& options) {
  double fraction_total = 0.0;
  for (const auto& component : spec.components) fraction_total += component.fraction;
  if (std::abs(fraction_total - 1.0) > 1e-6) {
    throw std::invalid_argument("make_forum_crowd: component fractions must sum to 1");
  }

  util::Rng rng{options.seed ^ util::hash64(spec.forum_name)};
  const std::size_t total_users = scaled(spec.active_users, options.scale);

  // Match the forum's posts-per-user density: lognormal centered on the
  // paper's approx_posts / active_users, conditioned above the threshold.
  PersonaMix mix = options.mix;
  const double mean_posts = static_cast<double>(spec.approx_posts) /
                            static_cast<double>(spec.active_users);
  mix.volume_log_sigma = 0.6;
  mix.volume_log_mu = std::log(std::max(mean_posts, 31.0)) -
                      0.5 * mix.volume_log_sigma * mix.volume_log_sigma;

  std::vector<Persona> personas;
  std::uint64_t next_id = 1;
  std::size_t assigned = 0;
  for (std::size_t c = 0; c < spec.components.size(); ++c) {
    const auto& component = spec.components[c];
    std::size_t users = (c + 1 == spec.components.size())
                            ? total_users - assigned
                            : static_cast<std::size_t>(
                                  std::llround(component.fraction * static_cast<double>(total_users)));
    users = std::min(users, total_users - assigned);
    assigned += users;
    append_active_personas(personas, component.region, component.zone, users, mix,
                           /*volume_floor=*/32.0, rng, next_id, component.rest_days);
  }
  // A few sub-threshold lurkers who posted once or twice.
  const auto inactive = static_cast<std::size_t>(
      std::llround(static_cast<double>(total_users) * options.inactive_fraction));
  if (!spec.components.empty()) {
    append_inactive_personas(personas, spec.components.front().region,
                             spec.components.front().zone, inactive, mix, rng, next_id);
  }
  return finalize(spec.forum_name, std::move(personas), options, rng);
}

}  // namespace tzgeo::synth
