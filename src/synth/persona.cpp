#include "synth/persona.hpp"

#include <utility>

namespace tzgeo::synth {

const char* to_string(PersonaKind kind) noexcept {
  switch (kind) {
    case PersonaKind::kRegular: return "regular";
    case PersonaKind::kBot: return "bot";
    case PersonaKind::kShiftWorker: return "shift_worker";
  }
  return "unknown";
}

Persona draw_persona(std::uint64_t id, std::string region, std::string zone_name,
                     const PersonaMix& mix, util::Rng& rng) {
  Persona persona;
  persona.id = id;
  persona.region = std::move(region);
  persona.zone_name = std::move(zone_name);

  const double roll = rng.uniform();
  if (roll < mix.bot_fraction) {
    persona.kind = PersonaKind::kBot;
  } else if (roll < mix.bot_fraction + mix.shift_worker_fraction) {
    persona.kind = PersonaKind::kShiftWorker;
  } else {
    persona.kind = PersonaKind::kRegular;
  }

  switch (persona.kind) {
    case PersonaKind::kBot:
      // Bots run on timers: near-uniform around the clock (Fig. 7).
      persona.local_rates = flat_rates(0.08, rng);
      persona.posts_per_year =
          mix.bot_volume_multiplier * rng.lognormal(mix.volume_log_mu, mix.volume_log_sigma);
      break;
    case PersonaKind::kShiftWorker: {
      // A human rhythm displaced deep into the night.
      const DiurnalShape shape = personal_shape(mix.base_shape, mix.jitter, rng);
      const auto displacement = static_cast<std::int32_t>(rng.uniform_int(10, 14));
      persona.local_rates = shift_rates(evaluate_shape(shape), displacement);
      persona.posts_per_year = rng.lognormal(mix.volume_log_mu, mix.volume_log_sigma);
      break;
    }
    case PersonaKind::kRegular: {
      const DiurnalShape shape = personal_shape(mix.base_shape, mix.jitter, rng);
      persona.local_rates = evaluate_shape(shape);
      persona.posts_per_year = rng.lognormal(mix.volume_log_mu, mix.volume_log_sigma);
      break;
    }
  }
  return persona;
}

}  // namespace tzgeo::synth
