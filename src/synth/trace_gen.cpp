#include "synth/trace_gen.hpp"

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "timezone/zone_db.hpp"

namespace tzgeo::synth {

namespace {

/// (month, day) packed for ordering within a year.
[[nodiscard]] constexpr std::int32_t month_day_key(std::int32_t month, std::int32_t day) noexcept {
  return month * 100 + day;
}

}  // namespace

HolidayCalendar::HolidayCalendar(std::vector<Period> periods, double activity_factor)
    : periods_(std::move(periods)), activity_factor_(activity_factor) {
  if (activity_factor_ < 0.0 || activity_factor_ > 1.0) {
    throw std::invalid_argument("HolidayCalendar: factor must be in [0, 1]");
  }
}

HolidayCalendar HolidayCalendar::typical() {
  // Calendar dates (Dec 23 – Jan 2, Aug 10 – Aug 20), not hour counts.
  return HolidayCalendar{{Period{12, 23, 1, 2}, Period{8, 10, 8, 20}}, 0.25};  // tzgeo-lint: allow(magic-hours)
}

HolidayCalendar HolidayCalendar::none() { return HolidayCalendar{{}, 1.0}; }

bool HolidayCalendar::is_holiday(const tz::CivilDate& date) const noexcept {
  const std::int32_t key = month_day_key(date.month, date.day);
  for (const auto& p : periods_) {
    const std::int32_t from = month_day_key(p.start_month, p.start_day);
    const std::int32_t to = month_day_key(p.end_month, p.end_day);
    if (from <= to) {
      if (key >= from && key <= to) return true;
    } else {  // wraps New Year
      if (key >= from || key <= to) return true;
    }
  }
  return false;
}

double HolidayCalendar::factor_on(const tz::CivilDate& date) const noexcept {
  return is_holiday(date) ? activity_factor_ : 1.0;
}

std::vector<PostEvent> generate_trace(const Persona& persona, const tz::TimeZone& zone,
                                      const TraceOptions& options, util::Rng& rng) {
  std::int64_t first_day = tz::days_from_civil(options.start);
  std::int64_t end_day = tz::days_from_civil(options.end);
  if (end_day <= first_day) {
    throw std::invalid_argument("generate_trace: empty date window");
  }
  // Clamp to the persona's membership window (members join and leave).
  if (persona.active_from > 0) {
    first_day = std::max(first_day, persona.active_from / tz::kSecondsPerDay);
  }
  if (persona.active_until > 0) {
    end_day = std::min(end_day, (persona.active_until + tz::kSecondsPerDay - 1) /
                                    tz::kSecondsPerDay);
  }
  if (end_day <= first_day) return {};  // joined after / left before the window
  const auto num_days = static_cast<double>(end_day - first_day);

  // Each seed post spawns a geometric burst of mean 1/(1-p) posts; scale
  // the seed count down so posts_per_year stays the *total* volume.
  const double burst_factor =
      options.burst_probability > 0.0 && options.burst_probability < 1.0
          ? 1.0 - options.burst_probability
          : 1.0;
  const double expected = persona.posts_per_year * num_days / 365.0 * burst_factor;
  const std::uint32_t count = rng.poisson(expected);

  const bool holidays_apply =
      persona.kind != PersonaKind::kBot || options.holidays_affect_bots;
  const bool weekends_apply = persona.kind != PersonaKind::kBot;
  const std::vector<double> hour_weights(persona.local_rates.begin(),
                                         persona.local_rates.end());
  // Rest-day rhythm: same shape, shifted later (sleeping in).
  const HourlyRates rest_rates = shift_rates(persona.local_rates, persona.rest_day_shift);
  const std::vector<double> rest_hour_weights(rest_rates.begin(), rest_rates.end());
  const double max_day_factor =
      weekends_apply ? std::max(1.0, persona.rest_day_boost) : 1.0;

  std::vector<PostEvent> events;
  events.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    // Rejection-sample a day: holiday dates carry reduced mass, rest days
    // carry persona.rest_day_boost times the weekday mass.
    tz::CivilDate date;
    bool rest_day = false;
    for (int attempt = 0; attempt < 64; ++attempt) {
      const std::int64_t day = first_day + rng.uniform_int(0, end_day - first_day - 1);
      date = tz::civil_from_days(day);
      rest_day = weekends_apply && persona.rest_days.is_rest(tz::weekday_of(date));
      double factor = holidays_apply ? options.holidays.factor_on(date) : 1.0;
      if (rest_day) factor *= persona.rest_day_boost;
      if (rng.bernoulli(factor / max_day_factor)) break;
      if (attempt == 63) break;  // pathological window: accept the last draw
    }

    const auto hour = static_cast<std::int32_t>(
        rng.categorical(rest_day ? rest_hour_weights : hour_weights));
    const auto minute = static_cast<std::int32_t>(rng.uniform_int(0, 59));
    const auto second = static_cast<std::int32_t>(rng.uniform_int(0, 59));
    const tz::CivilDateTime local{date, hour, minute, second};
    tz::UtcSeconds when = zone.to_utc(local);
    events.push_back(PostEvent{persona.id, when});

    // Reply-chain burst: follow-up posts a few minutes apart.  Bursts are
    // *extra* posts on top of the Poisson volume, so `i` keeps counting
    // seeds; the geometric tail keeps the expected overhead bounded.
    while (options.burst_probability > 0.0 && rng.bernoulli(options.burst_probability)) {
      when += rng.uniform_int(30, std::max<std::int64_t>(options.burst_gap_max_seconds, 31));
      events.push_back(PostEvent{persona.id, when});
    }
  }
  std::sort(events.begin(), events.end(),
            [](const PostEvent& a, const PostEvent& b) { return a.time < b.time; });
  return events;
}

std::vector<PostEvent> generate_population_trace(const std::vector<Persona>& personas,
                                                 const TraceOptions& options, util::Rng& rng) {
  std::vector<PostEvent> all;
  for (const auto& persona : personas) {
    const tz::TimeZone& zone = tz::zone(persona.zone_name);
    util::Rng user_rng = rng.split(persona.id ^ util::hash64(persona.zone_name));
    auto events = generate_trace(persona, zone, options, user_rng);
    all.insert(all.end(), events.begin(), events.end());
  }
  std::sort(all.begin(), all.end(),
            [](const PostEvent& a, const PostEvent& b) { return a.time < b.time; });
  return all;
}

}  // namespace tzgeo::synth
