// Materialized synthetic datasets.
//
// A Dataset bundles a population of personas with their full post trace;
// it stands in for the paper's Twitter stream grab and for the Fig. 6
// synthetic multi-region crowds.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "synth/persona.hpp"
#include "synth/region_presets.hpp"
#include "synth/trace_gen.hpp"

namespace tzgeo::synth {

/// A population plus its post events (events sorted by time).
struct Dataset {
  std::string name;
  std::vector<Persona> users;
  std::vector<PostEvent> events;

  /// Number of posts belonging to `user_id`.
  [[nodiscard]] std::size_t posts_of(std::uint64_t user_id) const noexcept;
};

/// Generation knobs common to all datasets.
struct DatasetOptions {
  double scale = 1.0;          ///< multiplies user counts (tests use << 1)
  std::uint64_t seed = 42;
  TraceOptions trace{};        ///< calendar window and holidays
  PersonaMix mix{};            ///< behaviour mix
  /// Extra sub-threshold users added per active user, to exercise the
  /// >= 30-posts filter (the paper's "non active users").
  double inactive_fraction = 0.25;
  /// Personas are resampled until their expected yearly volume reaches
  /// this floor, so the generated "active" population stays above the
  /// paper's 30-post threshold with high probability.
  double active_volume_floor = 60.0;
  /// Share of members with a partial membership window (joined after the
  /// trace starts or left before it ends) — boards churn; late joiners
  /// with few posts exercise the activity threshold realistically.
  double churn_fraction = 0.0;
};

/// One region's crowd (used for Figures 3-5 and as a building block).
[[nodiscard]] Dataset make_region_dataset(const RegionSpec& region, std::size_t users,
                                          const DatasetOptions& options);

/// The full 14-region Twitter-equivalent dataset (Table I counts x scale).
[[nodiscard]] Dataset make_twitter_dataset(const DatasetOptions& options);

/// Fig. 6(a): Malaysian-shaped behaviour replicated in three time zones
/// (UTC, UTC-7, UTC+9).  `users_per_zone` defaults to the Malaysian count.
[[nodiscard]] Dataset make_synthetic_mix_a(const DatasetOptions& options,
                                           std::size_t users_per_zone = 1714);

/// Fig. 6(b): merge of Illinois (UTC-6), Germany (UTC+1), Malaysia (UTC+8)
/// at their Table I sizes.
[[nodiscard]] Dataset make_synthetic_mix_b(const DatasetOptions& options);

/// A forum crowd with the composition of a Section V forum preset.
[[nodiscard]] Dataset make_forum_crowd(const ForumCrowdSpec& spec,
                                       const DatasetOptions& options);

}  // namespace tzgeo::synth
