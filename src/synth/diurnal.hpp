// Parametric diurnal activity model.
//
// Section III of the paper grounds the methodology in the observation that
// Internet activity follows the everyday-life rhythm: requests grow from the
// early morning to the afternoon, peak between 17:00 and 22:00, and drop
// rapidly during the night (citing the Facebook/YouTube demand studies).
// The model here generates that shape: a morning bump, a lunch dip implied
// by the gap between the bumps, a dominant evening peak, and a deep night
// trough between roughly 01:00 and 07:00 local time.
//
// All rates are expressed in *local* time; the trace generator converts to
// UTC through the region's TimeZone (including DST), which is exactly the
// mechanism the geolocation method exploits.
#pragma once

#include <array>
#include <cstdint>

#include "util/constants.hpp"
#include "util/rng.hpp"

namespace tzgeo::synth {

/// Number of hourly bins in a daily profile.
inline constexpr std::size_t kHoursPerDay = kProfileBins;

/// Shape parameters of the diurnal rhythm (hours in local time).
struct DiurnalShape {
  double morning_peak_hour = 9.0;
  double morning_sigma = 2.0;
  double morning_weight = 0.45;
  double evening_peak_hour = 20.5;
  double evening_sigma = 2.6;
  double evening_weight = 1.0;
  double baseline = 0.015;  ///< floor activity present at any hour

  /// The canonical population-average shape.
  [[nodiscard]] static DiurnalShape typical() { return DiurnalShape{}; }
};

/// A normalized 24-bin distribution over local hour-of-day.
using HourlyRates = std::array<double, kHoursPerDay>;

/// Evaluates the shape into a normalized hourly distribution.
[[nodiscard]] HourlyRates evaluate_shape(const DiurnalShape& shape);

/// Per-user individual variation applied to a base shape.  The defaults
/// are calibrated so that a single-region crowd places with a Gaussian
/// spread of sigma ~= 2.5 zones, the paper's empirical value (Section
/// IV-A: youngsters sleep later, parents wake earlier, and so on).
struct ChronotypeJitter {
  double phase_sigma_hours = 2.1;    ///< chronotype shift (early birds / night owls)
  double weight_jitter = 0.3;        ///< relative jitter of peak weights
  double width_jitter = 0.2;         ///< relative jitter of peak widths
  double max_abs_phase_hours = 6.0;  ///< truncation for the phase shift
};

/// Draws an individual's shape from the population shape.
[[nodiscard]] DiurnalShape personal_shape(const DiurnalShape& base, const ChronotypeJitter& jitter,
                                          util::Rng& rng);

/// A flat (bot-like) hourly distribution with small multiplicative noise;
/// `wobble` = 0 gives exactly uniform.
[[nodiscard]] HourlyRates flat_rates(double wobble, util::Rng& rng);

/// Phase-shifts a distribution by whole hours (e.g. +12 for a night-shift
/// worker whose rhythm is inverted).
[[nodiscard]] HourlyRates shift_rates(const HourlyRates& rates, std::int32_t hours);

}  // namespace tzgeo::synth
