#include "tor/circuit.hpp"

#include <algorithm>

namespace tzgeo::tor {

double Circuit::path_latency_ms(const Consensus& consensus) const {
  double total = 0.0;
  for (const std::uint64_t id : hops) total += consensus.relay(id).base_latency_ms;
  return total;
}

CircuitBuilder::CircuitBuilder(const Consensus& consensus) : consensus_(consensus) {}

std::uint64_t CircuitBuilder::sample_guard(util::Rng& rng) const {
  return consensus_
      .pick(rng, [](const RelayDescriptor& r) { return r.flags.guard && r.flags.stable; })
      .id;
}

Circuit CircuitBuilder::build(util::Rng& rng, bool need_exit,
                              std::uint64_t pinned_guard) const {
  Circuit circuit;
  const auto used = [&circuit](std::uint64_t id) {
    return std::find(circuit.hops.begin(), circuit.hops.end(), id) != circuit.hops.end();
  };

  const std::uint64_t guard_id =
      pinned_guard != 0 ? consensus_.relay(pinned_guard).id : sample_guard(rng);
  circuit.hops.push_back(guard_id);

  const RelayDescriptor& middle =
      consensus_.pick(rng, [&](const RelayDescriptor& r) { return !used(r.id); });
  circuit.hops.push_back(middle.id);

  const RelayDescriptor& last = consensus_.pick(rng, [&](const RelayDescriptor& r) {
    if (used(r.id)) return false;
    return need_exit ? r.flags.exit : true;
  });
  circuit.hops.push_back(last.id);

  // Circuit setup: one round-trip per hop during telescoping key exchange.
  double accumulated = 0.0;
  for (const std::uint64_t id : circuit.hops) {
    accumulated += consensus_.relay(id).base_latency_ms;
    circuit.setup_latency_ms += 2.0 * accumulated;
  }
  return circuit;
}

}  // namespace tzgeo::tor
