#include "tor/hidden_service.hpp"

#include <algorithm>

#include "util/rng.hpp"

namespace tzgeo::tor {

std::string onion_address(std::uint64_t service_key) {
  // v2 onion addresses are 16 base32 characters (80 bits of key hash).
  // We derive 80 bits from two splitmix64 steps over the key.
  static constexpr char kBase32[] = "abcdefghijklmnopqrstuvwxyz234567";
  std::uint64_t state = service_key;
  const std::uint64_t lo = util::splitmix64(state);
  const std::uint64_t hi = util::splitmix64(state);
  std::string address;
  address.reserve(16);
  for (int i = 0; i < 16; ++i) {
    const std::uint64_t word = (i < 12) ? lo : hi;
    const int shift = (i % 12) * 5 % 60;
    address.push_back(kBase32[(word >> shift) & 0x1f]);
  }
  return address;
}

HiddenServiceDirectory::HiddenServiceDirectory(const Consensus& consensus)
    : consensus_(consensus) {}

void HiddenServiceDirectory::publish(const HiddenServiceDescriptor& descriptor) {
  // Overwrite a previous descriptor for the same service, if any.
  const auto it = std::find_if(
      published_.begin(), published_.end(),
      [&](const HiddenServiceDescriptor& d) { return d.onion == descriptor.onion; });
  if (it != published_.end()) {
    *it = descriptor;
  } else {
    published_.push_back(descriptor);
  }
  // The responsible HSDirs are derived from the service key; we record the
  // assignment to model directory placement (observable in tests).
  (void)consensus_.responsible_hsdirs(descriptor.service_key, 3);
}

std::optional<HiddenServiceDescriptor> HiddenServiceDirectory::fetch(
    const std::string& onion) const {
  const auto it =
      std::find_if(published_.begin(), published_.end(),
                   [&](const HiddenServiceDescriptor& d) { return d.onion == onion; });
  if (it == published_.end()) return std::nullopt;
  return *it;
}

double RendezvousConnection::round_trip_ms(const Consensus& consensus) const {
  // Request: client -> rendezvous -> service; response: the reverse.
  return 2.0 * (client_circuit.path_latency_ms(consensus) +
                service_circuit.path_latency_ms(consensus));
}

RendezvousProtocol::RendezvousProtocol(const Consensus& consensus,
                                       HiddenServiceDirectory& directory)
    : consensus_(consensus), directory_(directory) {}

HiddenServiceDescriptor RendezvousProtocol::host_service(std::uint64_t service_key,
                                                         std::size_t intro_points,
                                                         util::Rng& rng) {
  HiddenServiceDescriptor descriptor;
  descriptor.service_key = service_key;
  descriptor.onion = onion_address(service_key);
  for (std::size_t i = 0; i < intro_points; ++i) {
    const RelayDescriptor& relay =
        consensus_.pick(rng, [](const RelayDescriptor& r) { return r.flags.stable; });
    if (std::find(descriptor.introduction_points.begin(), descriptor.introduction_points.end(),
                  relay.id) == descriptor.introduction_points.end()) {
      descriptor.introduction_points.push_back(relay.id);
    }
  }
  directory_.publish(descriptor);
  return descriptor;
}

std::optional<RendezvousConnection> RendezvousProtocol::connect(const std::string& onion,
                                                                util::Rng& rng,
                                                                std::uint64_t pinned_guard) {
  const auto descriptor = directory_.fetch(onion);
  if (!descriptor || descriptor->introduction_points.empty()) return std::nullopt;

  RendezvousConnection connection;
  connection.onion = onion;

  const CircuitBuilder builder{consensus_};
  // 1. Client builds a circuit (through its session guard) to the
  //    rendezvous point it selected.
  connection.client_circuit = builder.build(rng, /*need_exit=*/false, pinned_guard);
  connection.rendezvous_relay = connection.client_circuit.hops.back();
  // 2. Client tells an introduction point about the rendezvous; the
  //    introduction point forwards it to the service (one circuit each way,
  //    modelled as latency only).
  const std::uint64_t intro_id = descriptor->introduction_points[static_cast<std::size_t>(
      rng.uniform_int(0, static_cast<std::int64_t>(descriptor->introduction_points.size()) - 1))];
  const double intro_latency = 2.0 * consensus_.relay(intro_id).base_latency_ms;
  // 3. Service builds its circuit to the rendezvous point.
  connection.service_circuit = builder.build(rng);
  connection.service_circuit.hops.back() = connection.rendezvous_relay;

  connection.setup_latency_ms = connection.client_circuit.setup_latency_ms + intro_latency +
                                connection.service_circuit.setup_latency_ms +
                                connection.round_trip_ms(consensus_) / 2.0;
  return connection;
}

}  // namespace tzgeo::tor
