// Three-hop Tor circuits.
#pragma once

#include <cstdint>
#include <vector>

#include "tor/relay.hpp"
#include "util/rng.hpp"

namespace tzgeo::tor {

/// A built circuit: entry (guard), middle, exit — in order.
struct Circuit {
  std::vector<std::uint64_t> hops;  ///< relay ids, guard first
  double setup_latency_ms = 0.0;    ///< time spent negotiating the circuit

  /// One-way forwarding latency through all hops.
  [[nodiscard]] double path_latency_ms(const Consensus& consensus) const;
};

/// Builds circuits following the standard constraints: the guard carries
/// the Guard flag, hops are distinct, and the exit carries the Exit flag
/// when `need_exit` is set (circuits to hidden services never exit).
///
/// Tor clients pin a long-lived *entry guard* rather than sampling a new
/// one per circuit (defeats the "eventually pick a malicious guard"
/// attack the paper's related work describes); pass `pinned_guard` to
/// model a client session.
class CircuitBuilder {
 public:
  explicit CircuitBuilder(const Consensus& consensus);

  [[nodiscard]] Circuit build(util::Rng& rng, bool need_exit = false,
                              std::uint64_t pinned_guard = 0) const;

  /// Samples a guard the way a fresh client would (bandwidth-weighted
  /// among Guard+Stable relays) — the id to pin for a session.
  [[nodiscard]] std::uint64_t sample_guard(util::Rng& rng) const;

 private:
  const Consensus& consensus_;
};

}  // namespace tzgeo::tor
