#include "tor/transport.hpp"

#include <utility>

#include "obs/pipeline_metrics.hpp"

namespace tzgeo::tor {

namespace {

/// The censored client's private view: public relays plus its bridges.
[[nodiscard]] Consensus augment_with_bridges(const Consensus& consensus,
                                             const BridgeSet& bridges) {
  std::vector<RelayDescriptor> relays = consensus.relays();
  for (const auto& bridge : bridges.bridges()) relays.push_back(bridge);
  return Consensus{std::move(relays)};
}

}  // namespace

OnionTransport::OnionTransport(const Consensus& consensus, util::SimClock& clock,
                               std::uint64_t seed, TransportOptions options)
    : consensus_(consensus),
      directory_(consensus),
      protocol_(consensus, directory_),
      clock_(clock),
      rng_(seed),
      options_(options) {
  // A client session pins one entry guard for its lifetime.
  guard_id_ = CircuitBuilder{consensus_}.sample_guard(rng_);
}

OnionTransport::OnionTransport(const Consensus& consensus, const BridgeSet& bridges,
                               util::SimClock& clock, std::uint64_t seed,
                               TransportOptions options)
    : client_view_(augment_with_bridges(consensus, bridges)),
      consensus_(*client_view_),
      directory_(consensus_),
      protocol_(consensus_, directory_),
      clock_(clock),
      rng_(seed),
      options_(options) {
  // A censored client enters through one of its configured bridges.
  guard_id_ = bridges.pick(rng_).id;
}

std::string OnionTransport::host(std::uint64_t service_key, ServiceHandler handler) {
  const HiddenServiceDescriptor descriptor = protocol_.host_service(service_key, 3, rng_);
  handlers_[descriptor.onion] = std::move(handler);
  return descriptor.onion;
}

const RendezvousConnection& OnionTransport::connection_for(const std::string& onion) {
  // Scheduled rotation: retire the circuit after its request budget.
  const auto existing = connections_.find(onion);
  if (existing != connections_.end()) {
    if (options_.requests_per_circuit == 0 ||
        requests_on_circuit_[onion] < options_.requests_per_circuit) {
      return existing->second;
    }
    connections_.erase(existing);
    ++stats_.circuit_rotations;
  }

  auto connection = protocol_.connect(onion, rng_, guard_id_);
  if (!connection) {
    throw TransportError("onion address not found: " + onion);
  }
  ++stats_.circuits_built;
  {
    const obs::PipelineMetrics& metrics = obs::PipelineMetrics::get();
    obs::MetricsRegistry& registry = obs::MetricsRegistry::global();
    registry.add(metrics.tor_circuits_built);
    registry.observe(metrics.tor_circuit_build_ms,
                     static_cast<std::uint64_t>(connection->setup_latency_ms));
  }
  requests_on_circuit_[onion] = 0;
  clock_.advance_millis(static_cast<std::int64_t>(connection->setup_latency_ms));
  stats_.total_latency_ms += connection->setup_latency_ms;
  return connections_.emplace(onion, std::move(*connection)).first->second;
}

Response OnionTransport::fetch(const std::string& onion, const Request& request) {
  const auto handler_it = handlers_.find(onion);
  if (handler_it == handlers_.end()) {
    throw TransportError("onion address not found: " + onion);
  }

  const obs::PipelineMetrics& metrics = obs::PipelineMetrics::get();
  obs::MetricsRegistry& registry = obs::MetricsRegistry::global();

  int rate_limit_retries = 0;
  for (int attempt = 0; attempt <= options_.max_retries; ++attempt) {
    if (attempt > 0) registry.add(metrics.tor_retries);
    const RendezvousConnection& connection = connection_for(onion);
    const double latency = connection.round_trip_ms(consensus_) +
                           rng_.exponential(1.0 / std::max(options_.jitter_ms, 1e-9));
    clock_.advance_millis(static_cast<std::int64_t>(latency));
    stats_.total_latency_ms += latency;
    ++stats_.requests;
    registry.add(metrics.tor_requests);
    ++requests_on_circuit_[onion];

    if (rng_.bernoulli(options_.failure_probability)) {
      // Circuit dropped mid-request: tear down and retry on a fresh one.
      ++stats_.failures;
      registry.add(metrics.tor_request_failures);
      connections_.erase(onion);
      continue;
    }
    const Response response = handler_it->second(request, clock_.now_seconds());
    if (response.status == 429 && options_.rate_limit_backoff_seconds > 0 &&
        rate_limit_retries < options_.max_rate_limit_retries) {
      // Throttled: be polite, wait out the window, and do not burn a
      // circuit-failure retry on it.
      ++rate_limit_retries;
      ++stats_.rate_limit_waits;
      registry.add(metrics.tor_rate_limit_waits);
      clock_.advance_seconds(options_.rate_limit_backoff_seconds);
      --attempt;
      continue;
    }
    return response;
  }
  throw TransportError("request to " + onion + request.path + " failed after retries");
}

}  // namespace tzgeo::tor
