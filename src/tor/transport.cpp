#include "tor/transport.hpp"

#include <algorithm>
#include <utility>

#include "fault/injector.hpp"
#include "obs/health.hpp"
#include "obs/log.hpp"
#include "obs/pipeline_metrics.hpp"

namespace tzgeo::tor {

namespace {

/// Transport liveness: one fetch (including retries and simulated
/// backoff) should never sit silent for a minute of host time.
obs::Health::ComponentId transport_health() {
  static const obs::Health::ComponentId id =
      obs::Health::global().component("tor.transport", 60'000'000'000ull);
  return id;
}

obs::Log::SiteId retries_exhausted_site() {
  static const obs::Log::SiteId id = obs::Log::global().site(
      "tor.transport.retries_exhausted", obs::LogLevel::kError);
  return id;
}

/// The censored client's private view: public relays plus its bridges.
[[nodiscard]] Consensus augment_with_bridges(const Consensus& consensus,
                                             const BridgeSet& bridges) {
  std::vector<RelayDescriptor> relays = consensus.relays();
  for (const auto& bridge : bridges.bridges()) relays.push_back(bridge);
  return Consensus{std::move(relays)};
}

}  // namespace

OnionTransport::OnionTransport(const Consensus& consensus, util::SimClock& clock,
                               std::uint64_t seed, TransportOptions options)
    : consensus_(consensus),
      directory_(consensus),
      protocol_(consensus, directory_),
      clock_(clock),
      rng_(seed),
      seed_(seed),
      options_(options) {
  // A client session pins one entry guard for its lifetime.
  guard_id_ = CircuitBuilder{consensus_}.sample_guard(rng_);
}

OnionTransport::OnionTransport(const Consensus& consensus, const BridgeSet& bridges,
                               util::SimClock& clock, std::uint64_t seed,
                               TransportOptions options)
    : client_view_(augment_with_bridges(consensus, bridges)),
      consensus_(*client_view_),
      directory_(consensus_),
      protocol_(consensus_, directory_),
      clock_(clock),
      rng_(seed),
      seed_(seed),
      options_(options) {
  // A censored client enters through one of its configured bridges.
  guard_id_ = bridges.pick(rng_).id;
}

void OnionTransport::begin_epoch(std::uint64_t epoch) {
  // The epoch stream must be a pure function of (seed, epoch): split()
  // advances its parent, so always derive from a fresh parent instead of
  // the request rng (whose state depends on traffic history).
  util::Rng parent{seed_};
  rng_ = parent.split(epoch);
  connections_.clear();
  requests_on_circuit_.clear();
  epoch_requests_ = 0;
  if (options_.fault_injector != nullptr) options_.fault_injector->begin_epoch(epoch);
}

std::string OnionTransport::host(std::uint64_t service_key, ServiceHandler handler) {
  const HiddenServiceDescriptor descriptor = protocol_.host_service(service_key, 3, rng_);
  handlers_[descriptor.onion] = std::move(handler);
  return descriptor.onion;
}

const RendezvousConnection& OnionTransport::connection_for(const std::string& onion) {
  // Scheduled rotation: retire the circuit after its request budget.
  const auto existing = connections_.find(onion);
  if (existing != connections_.end()) {
    if (options_.requests_per_circuit == 0 ||
        requests_on_circuit_[onion] < options_.requests_per_circuit) {
      return existing->second;
    }
    connections_.erase(existing);
    ++stats_.circuit_rotations;
  }

  auto connection = protocol_.connect(onion, rng_, guard_id_);
  if (!connection) {
    throw TransportError("onion address not found: " + onion);
  }
  ++stats_.circuits_built;
  {
    const obs::PipelineMetrics& metrics = obs::PipelineMetrics::get();
    obs::MetricsRegistry& registry = obs::MetricsRegistry::global();
    registry.add(metrics.tor_circuits_built);
    registry.observe(metrics.tor_circuit_build_ms,
                     static_cast<std::uint64_t>(connection->setup_latency_ms));
  }
  requests_on_circuit_[onion] = 0;
  clock_.advance_millis(static_cast<std::int64_t>(connection->setup_latency_ms));
  stats_.total_latency_ms += connection->setup_latency_ms;
  return connections_.emplace(onion, std::move(*connection)).first->second;
}

Response OnionTransport::fetch(const std::string& onion, const Request& request) {
  const auto handler_it = handlers_.find(onion);
  if (handler_it == handlers_.end()) {
    throw TransportError("onion address not found: " + onion);
  }
  // Shared-budget enforcement (the fleet hands each forum a fair share of
  // the round's request budget): counted per fetch, not per retry, so the
  // allowance is a pure function of crawl behavior, never of luck.
  if (epoch_allowance_ > 0 && epoch_requests_ >= epoch_allowance_) {
    throw TransportError("epoch request allowance exhausted (" +
                         std::to_string(epoch_allowance_) + " fetches this epoch)");
  }
  ++epoch_requests_;

  const obs::PipelineMetrics& metrics = obs::PipelineMetrics::get();
  obs::MetricsRegistry& registry = obs::MetricsRegistry::global();
  const obs::Health::WorkScope fetch_work(obs::Health::global(), transport_health());

  int rate_limit_retries = 0;
  std::int64_t last_wait_seconds = 0;  // decorrelated-jitter backoff state
  for (int attempt = 0; attempt <= options_.max_retries; ++attempt) {
    if (attempt > 0) registry.add(metrics.tor_retries);
    fault::FaultInjector::PreRequest injected;
    if (options_.fault_injector != nullptr) {
      injected = options_.fault_injector->before_request(clock_.now_seconds());
    }
    const RendezvousConnection& connection = connection_for(onion);
    const double latency = connection.round_trip_ms(consensus_) +
                           rng_.exponential(1.0 / std::max(options_.jitter_ms, 1e-9)) +
                           injected.extra_latency_ms;
    clock_.advance_millis(static_cast<std::int64_t>(latency));
    stats_.total_latency_ms += latency;
    ++stats_.requests;
    registry.add(metrics.tor_requests);
    ++requests_on_circuit_[onion];

    if (injected.drop_connection || rng_.bernoulli(options_.failure_probability)) {
      // Circuit dropped mid-request: tear down and retry on a fresh one.
      ++stats_.failures;
      registry.add(metrics.tor_request_failures);
      connections_.erase(onion);
      continue;
    }
    Response response;
    if (injected.force_rate_limit) {
      // Storm window: the throttle fires upstream of the service, so the
      // handler never sees the request.
      response.status = 429;
    } else {
      response = handler_it->second(request, clock_.now_seconds());
      if (options_.fault_injector != nullptr) {
        options_.fault_injector->mutate_body(clock_.now_seconds(), response.body);
      }
    }
    if (response.status == 429 && options_.rate_limit_backoff_seconds > 0 &&
        rate_limit_retries < options_.max_rate_limit_retries) {
      // Throttled: be polite, wait out the window, and do not burn a
      // circuit-failure retry on it.
      ++rate_limit_retries;
      ++stats_.rate_limit_waits;
      registry.add(metrics.tor_rate_limit_waits);
      last_wait_seconds =
          next_backoff_seconds(rng_, options_.rate_limit_backoff_seconds,
                               options_.rate_limit_backoff_cap_seconds, last_wait_seconds);
      clock_.advance_seconds(last_wait_seconds);
      --attempt;
      continue;
    }
    obs::Health::global().beat(transport_health());
    return response;
  }
  obs::Log::global().write(retries_exhausted_site(), "request failed after retries",
                           {obs::field("onion", onion), obs::field("path", request.path),
                            obs::field("attempts", options_.max_retries + 1)});
  throw TransportError("request to " + onion + request.path + " failed after retries");
}

std::int64_t next_backoff_seconds(util::Rng& rng, std::int64_t base, std::int64_t cap,
                                  std::int64_t previous) noexcept {
  if (base <= 0) return 0;
  if (cap < base) cap = base;
  // Decorrelated jitter: uniform in [base, 3 * previous], seeded with
  // previous = base on the first wait.  Desynchronizes retrying clients
  // while still growing the expected wait geometrically.
  const std::int64_t prev = std::clamp(previous, base, cap);
  const std::int64_t hi = prev > cap / 3 ? cap : prev * 3;
  return rng.uniform_int(base, std::max(base, hi));
}

}  // namespace tzgeo::tor
