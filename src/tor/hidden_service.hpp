// Hidden services: onion addressing, descriptor publication, rendezvous.
//
// Models the setup and connection protocol of Background Section II-B:
// the service picks introduction points and publishes a descriptor to the
// responsible HSDirs; a client fetches the descriptor, picks a rendezvous
// point, and both sides build circuits that meet there.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "tor/circuit.hpp"
#include "tor/relay.hpp"
#include "util/rng.hpp"

namespace tzgeo::tor {

/// Derives the 16-character base32 .onion host name from a service key
/// (the v2 scheme: the address is a hash of the service's public key).
[[nodiscard]] std::string onion_address(std::uint64_t service_key);

/// A published hidden-service descriptor.
struct HiddenServiceDescriptor {
  std::string onion;
  std::uint64_t service_key = 0;
  std::vector<std::uint64_t> introduction_points;  ///< relay ids
};

/// The HSDir side of the directory system: publish + fetch.
class HiddenServiceDirectory {
 public:
  explicit HiddenServiceDirectory(const Consensus& consensus);

  /// Stores the descriptor on the responsible HSDirs.
  void publish(const HiddenServiceDescriptor& descriptor);

  /// Fetches a descriptor by onion address.
  [[nodiscard]] std::optional<HiddenServiceDescriptor> fetch(const std::string& onion) const;

 private:
  const Consensus& consensus_;
  std::vector<HiddenServiceDescriptor> published_;
};

/// An established client<->service connection through a rendezvous point.
struct RendezvousConnection {
  std::string onion;
  Circuit client_circuit;    ///< client -> rendezvous
  Circuit service_circuit;   ///< service -> rendezvous
  std::uint64_t rendezvous_relay = 0;
  double setup_latency_ms = 0.0;  ///< full handshake cost

  /// Round-trip latency for one request/response over the joined circuits.
  [[nodiscard]] double round_trip_ms(const Consensus& consensus) const;
};

/// Runs the connection protocol of Section II-B.
class RendezvousProtocol {
 public:
  RendezvousProtocol(const Consensus& consensus, HiddenServiceDirectory& directory);

  /// Performs the service-side setup: picks `intro_points` introduction
  /// points and publishes the descriptor.  Returns the descriptor.
  HiddenServiceDescriptor host_service(std::uint64_t service_key, std::size_t intro_points,
                                       util::Rng& rng);

  /// Client connect: descriptor fetch, rendezvous selection, introduction,
  /// and circuit join.  Returns std::nullopt for unknown addresses.
  /// `pinned_guard` (0 = sample fresh) fixes the client circuit's entry
  /// guard, as a real Tor client session does.
  [[nodiscard]] std::optional<RendezvousConnection> connect(const std::string& onion,
                                                            util::Rng& rng,
                                                            std::uint64_t pinned_guard = 0);

 private:
  const Consensus& consensus_;
  HiddenServiceDirectory& directory_;
};

}  // namespace tzgeo::tor
