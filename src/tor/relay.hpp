// Tor network model: relays and the consensus directory.
//
// Background Section II of the paper describes the Tor architecture the
// crawling pipeline runs on: circuits of guard/middle/exit relays, hidden
// service directories, introduction and rendezvous points.  This module
// models that network at the level the measurement pipeline observes it —
// relay selection and per-hop latency — not at the cryptographic level.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/rng.hpp"

namespace tzgeo::tor {

/// Relay capability flags (subset relevant to circuit construction).
struct RelayFlags {
  bool guard = false;
  bool exit = false;
  bool hsdir = false;  ///< hidden service directory
  bool stable = true;
};

/// One relay in the consensus.
struct RelayDescriptor {
  std::uint64_t id = 0;          ///< fingerprint surrogate
  std::string nickname;
  std::uint32_t bandwidth_kbps = 0;
  double base_latency_ms = 0.0;  ///< one-way forwarding latency
  RelayFlags flags;
};

/// A set of unlisted bridge relays (Background II-A: "Some Tor relays —
/// 'bridges' — are not listed in the main Tor directory, to make it more
/// difficult for ISPs or other entities to identify or block access to
/// Tor").  A censored client uses a bridge as its entry instead of a
/// consensus guard.
class BridgeSet {
 public:
  explicit BridgeSet(std::vector<RelayDescriptor> bridges);

  /// Synthetic bridges (never overlapping consensus ids).
  [[nodiscard]] static BridgeSet synthetic(std::size_t size, util::Rng& rng);

  [[nodiscard]] const std::vector<RelayDescriptor>& bridges() const noexcept {
    return bridges_;
  }
  [[nodiscard]] const RelayDescriptor& bridge(std::uint64_t id) const;
  [[nodiscard]] bool contains(std::uint64_t id) const noexcept;

  /// Bandwidth-weighted pick (a client typically configures 1-2 bridges).
  [[nodiscard]] const RelayDescriptor& pick(util::Rng& rng) const;

 private:
  std::vector<RelayDescriptor> bridges_;
};

/// The network consensus: all known relays with selection helpers.
class Consensus {
 public:
  explicit Consensus(std::vector<RelayDescriptor> relays);

  /// Builds a synthetic consensus with realistic proportions: ~7000 relays,
  /// of which roughly a third are guards, ~1000 exits, ~3000 HSDirs
  /// (the paper quotes ~7000 relays in 2018).  `size` scales everything.
  [[nodiscard]] static Consensus synthetic(std::size_t size, util::Rng& rng);

  [[nodiscard]] const std::vector<RelayDescriptor>& relays() const noexcept { return relays_; }
  [[nodiscard]] const RelayDescriptor& relay(std::uint64_t id) const;
  [[nodiscard]] std::size_t size() const noexcept { return relays_.size(); }

  /// Bandwidth-weighted random pick among relays satisfying `predicate`.
  /// Throws std::runtime_error when no relay qualifies.
  template <typename Predicate>
  [[nodiscard]] const RelayDescriptor& pick(util::Rng& rng, Predicate&& predicate) const {
    std::vector<double> weights(relays_.size(), 0.0);
    bool any = false;
    for (std::size_t i = 0; i < relays_.size(); ++i) {
      if (predicate(relays_[i])) {
        weights[i] = static_cast<double>(relays_[i].bandwidth_kbps);
        any = true;
      }
    }
    if (!any) throw_no_candidate();
    return relays_[rng.categorical(weights)];
  }

  /// The `count` HSDirs whose ids are closest (in circular id space) to
  /// `key` — the "responsible" hidden service directories.
  [[nodiscard]] std::vector<std::uint64_t> responsible_hsdirs(std::uint64_t key,
                                                              std::size_t count) const;

 private:
  [[noreturn]] static void throw_no_candidate();

  std::vector<RelayDescriptor> relays_;
};

}  // namespace tzgeo::tor
