#include "tor/relay.hpp"

#include <algorithm>
#include <stdexcept>

namespace tzgeo::tor {

BridgeSet::BridgeSet(std::vector<RelayDescriptor> bridges) : bridges_(std::move(bridges)) {
  if (bridges_.empty()) throw std::invalid_argument("BridgeSet: no bridges");
}

BridgeSet BridgeSet::synthetic(std::size_t size, util::Rng& rng) {
  if (size == 0) throw std::invalid_argument("BridgeSet::synthetic: need >= 1 bridge");
  std::vector<RelayDescriptor> bridges;
  bridges.reserve(size);
  for (std::size_t i = 0; i < size; ++i) {
    RelayDescriptor bridge;
    bridge.id = rng.split(0xb41d6e + i)() | 1u;  // odd ids, disjoint in practice
    bridge.nickname = "bridge" + std::to_string(i);
    bridge.bandwidth_kbps =
        static_cast<std::uint32_t>(std::min(1e6, 128.0 + rng.lognormal(7.5, 1.0)));
    bridge.base_latency_ms = 25.0 + rng.exponential(1.0 / 40.0);  // tzgeo-lint: allow(magic-hours): milliseconds
    // Bridges are entries by construction; they carry no consensus flags.
    bridge.flags.guard = true;
    bridge.flags.stable = true;
    bridges.push_back(std::move(bridge));
  }
  return BridgeSet{std::move(bridges)};
}

const RelayDescriptor& BridgeSet::bridge(std::uint64_t id) const {
  for (const auto& b : bridges_) {
    if (b.id == id) return b;
  }
  throw std::out_of_range("BridgeSet: unknown bridge id");
}

bool BridgeSet::contains(std::uint64_t id) const noexcept {
  for (const auto& b : bridges_) {
    if (b.id == id) return true;
  }
  return false;
}

const RelayDescriptor& BridgeSet::pick(util::Rng& rng) const {
  std::vector<double> weights;
  weights.reserve(bridges_.size());
  for (const auto& b : bridges_) weights.push_back(static_cast<double>(b.bandwidth_kbps));
  return bridges_[rng.categorical(weights)];
}

Consensus::Consensus(std::vector<RelayDescriptor> relays) : relays_(std::move(relays)) {
  if (relays_.empty()) throw std::invalid_argument("Consensus: no relays");
  std::sort(relays_.begin(), relays_.end(),
            [](const RelayDescriptor& a, const RelayDescriptor& b) { return a.id < b.id; });
  for (std::size_t i = 1; i < relays_.size(); ++i) {
    if (relays_[i].id == relays_[i - 1].id) {
      throw std::invalid_argument("Consensus: duplicate relay id");
    }
  }
}

Consensus Consensus::synthetic(std::size_t size, util::Rng& rng) {
  if (size < 8) throw std::invalid_argument("Consensus::synthetic: need >= 8 relays");
  std::vector<RelayDescriptor> relays;
  relays.reserve(size);
  for (std::size_t i = 0; i < size; ++i) {
    RelayDescriptor relay;
    relay.id = rng.split(i)();  // unique with overwhelming probability
    relay.nickname = "relay" + std::to_string(i);
    // Heavy-tailed bandwidth, as in the live network.
    relay.bandwidth_kbps =
        static_cast<std::uint32_t>(std::min(1e7, 256.0 + rng.lognormal(8.5, 1.2)));
    relay.base_latency_ms = 15.0 + rng.exponential(1.0 / 35.0);
    relay.flags.guard = rng.bernoulli(0.33);
    relay.flags.exit = rng.bernoulli(0.15);
    relay.flags.hsdir = rng.bernoulli(0.45);
    relay.flags.stable = rng.bernoulli(0.9);
    relays.push_back(std::move(relay));
  }
  // Deduplicate ids defensively (collisions are ~impossible but cheap to fix).
  std::sort(relays.begin(), relays.end(),
            [](const RelayDescriptor& a, const RelayDescriptor& b) { return a.id < b.id; });
  for (std::size_t i = 1; i < relays.size(); ++i) {
    if (relays[i].id == relays[i - 1].id) ++relays[i].id;
  }
  return Consensus{std::move(relays)};
}

const RelayDescriptor& Consensus::relay(std::uint64_t id) const {
  const auto it = std::lower_bound(
      relays_.begin(), relays_.end(), id,
      [](const RelayDescriptor& r, std::uint64_t key) { return r.id < key; });
  if (it == relays_.end() || it->id != id) {
    throw std::out_of_range("Consensus: unknown relay id");
  }
  return *it;
}

std::vector<std::uint64_t> Consensus::responsible_hsdirs(std::uint64_t key,
                                                         std::size_t count) const {
  // Relays are sorted by id; walk the ring clockwise from `key`.
  std::vector<std::uint64_t> result;
  const auto start = std::lower_bound(
      relays_.begin(), relays_.end(), key,
      [](const RelayDescriptor& r, std::uint64_t k) { return r.id < k; });
  std::size_t index = static_cast<std::size_t>(start - relays_.begin()) % relays_.size();
  for (std::size_t seen = 0; seen < relays_.size() && result.size() < count; ++seen) {
    const auto& candidate = relays_[(index + seen) % relays_.size()];
    if (candidate.flags.hsdir) result.push_back(candidate.id);
  }
  return result;
}

void Consensus::throw_no_candidate() {
  throw std::runtime_error("Consensus: no relay satisfies the predicate");
}

}  // namespace tzgeo::tor
