// Request/response transport over simulated rendezvous circuits.
//
// The crawler speaks a minimal HTTP-like protocol to hidden services.  A
// transport owns the rendezvous connections, advances the simulated clock
// by the modelled latency of every round trip, and injects circuit
// failures so the retry path of the pipeline is exercised.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <stdexcept>
#include <string>

#include "tor/hidden_service.hpp"
#include "util/rng.hpp"
#include "util/sim_clock.hpp"

namespace tzgeo::fault {
class FaultInjector;
}  // namespace tzgeo::fault

namespace tzgeo::tor {

/// A request to a hidden service.
struct Request {
  std::string method = "GET";
  std::string path = "/";
  std::string body;
};

/// A hidden service's reply.
struct Response {
  int status = 200;
  std::string body;
};

/// Server-side page handler: receives the request and the true UTC time of
/// arrival (seconds); the service applies its own clock offset internally.
using ServiceHandler = std::function<Response(const Request&, std::int64_t utc_seconds)>;

/// Thrown when a request keeps failing after all retries.
class TransportError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Transport tuning and fault injection.
struct TransportOptions {
  double failure_probability = 0.0;  ///< chance a round trip fails (circuit drop)
  int max_retries = 3;               ///< rebuild attempts per request
  double jitter_ms = 25.0;  ///< extra exponential latency jitter per trip  // tzgeo-lint: allow(magic-hours): milliseconds
  /// Rotate the rendezvous circuit after this many requests (Tor rotates
  /// circuits periodically; the entry guard stays pinned across rotations).
  std::size_t requests_per_circuit = 100;
  /// Politeness: when the service answers 429 (rate limited), back off and
  /// retry, up to max_rate_limit_retries times (0 disables and the 429 is
  /// returned to the caller).  Waits grow exponentially with decorrelated
  /// jitter (see next_backoff_seconds) from this base, capped per wait at
  /// rate_limit_backoff_cap_seconds — a fixed interval synchronizes every
  /// client onto the same retry schedule and never clears a real storm.
  std::int64_t rate_limit_backoff_seconds = 20;
  std::int64_t rate_limit_backoff_cap_seconds = 15 * 60;
  int max_rate_limit_retries = 200;
  /// Optional chaos hook, consulted once per round trip (outages, 429
  /// storms, drop bursts, body corruption, latency spikes).  Not owned;
  /// must outlive the transport.  nullptr = no injection.
  fault::FaultInjector* fault_injector = nullptr;
};

/// Traffic counters, exposed for tests and the pipeline report.
struct TransportStats {
  std::size_t requests = 0;
  std::size_t failures = 0;
  std::size_t circuits_built = 0;
  std::size_t circuit_rotations = 0;   ///< scheduled (non-failure) rebuilds
  std::size_t rate_limit_waits = 0;    ///< 429 backoffs taken
  double total_latency_ms = 0.0;
};

/// Client/service bridge over the simulated Tor network.
class OnionTransport {
 public:
  OnionTransport(const Consensus& consensus, util::SimClock& clock, std::uint64_t seed,
                 TransportOptions options = {});

  /// Censored-client mode (Background II-A): the client knows a set of
  /// unlisted bridges and pins one of them as its entry instead of a
  /// consensus guard.  The transport keeps a client-local view of the
  /// network that includes its bridges (they stay absent from the public
  /// consensus object passed in).
  OnionTransport(const Consensus& consensus, const BridgeSet& bridges, util::SimClock& clock,
                 std::uint64_t seed, TransportOptions options = {});

  /// Hosts a service: runs the setup protocol of Section II-B and maps the
  /// resulting onion address to `handler`.  Returns the onion address.
  std::string host(std::uint64_t service_key, ServiceHandler handler);

  /// Round trip to a hidden service.  Advances the simulated clock by the
  /// modelled latency; throws TransportError on unknown address or when
  /// all retries fail.
  Response fetch(const std::string& onion, const Request& request);

  /// Starts a deterministic replay epoch: reseeds the per-request RNG as a
  /// pure function of (construction seed, epoch), retires every rendezvous
  /// connection (fresh circuits, entry guard stays pinned), and forwards
  /// the boundary to the fault injector.  The monitor opens one epoch per
  /// poll sweep, which is what makes a sweep — and therefore a
  /// crash/resume — bit-identical to an uninterrupted run: the sweep
  /// depends only on (seed, epoch, service state), not on how many
  /// requests earlier sweeps made.
  void begin_epoch(std::uint64_t epoch);

  /// Caps fetches within the current and every following epoch (0 =
  /// unlimited).  Exceeding the allowance throws TransportError; counted
  /// per fetch() call (retries ride the same unit), and begin_epoch
  /// resets the spent count.  The fleet scheduler uses this to divide a
  /// fleet-wide request budget fairly across forums each round.
  void set_epoch_request_allowance(std::size_t allowance) noexcept {
    epoch_allowance_ = allowance;
  }
  /// Fetches spent in the current epoch.
  [[nodiscard]] std::size_t epoch_requests() const noexcept { return epoch_requests_; }

  [[nodiscard]] const TransportStats& stats() const noexcept { return stats_; }
  [[nodiscard]] const Consensus& consensus() const noexcept { return consensus_; }
  [[nodiscard]] util::SimClock& clock() noexcept { return clock_; }
  /// This client session's pinned entry guard.
  [[nodiscard]] std::uint64_t guard_id() const noexcept { return guard_id_; }

 private:
  /// Establishes (or re-establishes) the rendezvous connection to `onion`.
  const RendezvousConnection& connection_for(const std::string& onion);

  /// In bridge mode, the client-local network view (consensus + bridges).
  std::optional<Consensus> client_view_;
  const Consensus& consensus_;
  HiddenServiceDirectory directory_;
  RendezvousProtocol protocol_;
  util::SimClock& clock_;
  util::Rng rng_;
  std::uint64_t seed_;  ///< construction seed, re-mixed by begin_epoch()
  TransportOptions options_;
  TransportStats stats_;
  std::size_t epoch_allowance_ = 0;  ///< 0 = unlimited
  std::size_t epoch_requests_ = 0;
  std::uint64_t guard_id_ = 0;
  std::map<std::string, ServiceHandler> handlers_;
  std::map<std::string, RendezvousConnection> connections_;
  std::map<std::string, std::size_t> requests_on_circuit_;
};

/// Next 429 wait: exponential backoff with decorrelated jitter (the
/// "decorrelated" scheme from the AWS architecture blog) — uniform in
/// [base, 3 x previous], capped at `cap`.  `previous` is 0 before the
/// first wait of a request.  Deterministic given the rng state; exposed
/// for unit tests.
[[nodiscard]] std::int64_t next_backoff_seconds(util::Rng& rng, std::int64_t base,
                                                std::int64_t cap,
                                                std::int64_t previous) noexcept;

}  // namespace tzgeo::tor
