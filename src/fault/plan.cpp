#include "fault/plan.hpp"

#include <algorithm>

#include "util/rng.hpp"

namespace tzgeo::fault {

namespace {

[[nodiscard]] FaultWindow make_window(FaultKind kind, std::int64_t start, std::int64_t end,
                                      double intensity, double magnitude = 0.0) {
  FaultWindow window;
  window.kind = kind;
  window.start_seconds = start;
  window.end_seconds = end;
  window.intensity = std::clamp(intensity, 0.0, 1.0);
  window.magnitude = magnitude;
  return window;
}

}  // namespace

const char* to_string(FaultKind kind) noexcept {
  switch (kind) {
    case FaultKind::kOutage: return "outage";
    case FaultKind::kRateLimitStorm: return "rate-limit-storm";
    case FaultKind::kCircuitDropBurst: return "circuit-drop-burst";
    case FaultKind::kBodyTruncation: return "body-truncation";
    case FaultKind::kBodyGarble: return "body-garble";
    case FaultKind::kTimestampCorruption: return "timestamp-corruption";
    case FaultKind::kLatencySpike: return "latency-spike";
  }
  return "unknown";
}

FaultPlan& FaultPlan::outage(std::int64_t start, std::int64_t end) {
  windows.push_back(make_window(FaultKind::kOutage, start, end, 1.0));
  return *this;
}

FaultPlan& FaultPlan::rate_limit_storm(std::int64_t start, std::int64_t end, double intensity) {
  windows.push_back(make_window(FaultKind::kRateLimitStorm, start, end, intensity));
  return *this;
}

FaultPlan& FaultPlan::circuit_drops(std::int64_t start, std::int64_t end, double intensity) {
  windows.push_back(make_window(FaultKind::kCircuitDropBurst, start, end, intensity));
  return *this;
}

FaultPlan& FaultPlan::truncated_bodies(std::int64_t start, std::int64_t end, double intensity) {
  windows.push_back(make_window(FaultKind::kBodyTruncation, start, end, intensity));
  return *this;
}

FaultPlan& FaultPlan::garbled_bodies(std::int64_t start, std::int64_t end, double intensity) {
  windows.push_back(make_window(FaultKind::kBodyGarble, start, end, intensity));
  return *this;
}

FaultPlan& FaultPlan::corrupted_timestamps(std::int64_t start, std::int64_t end,
                                           double intensity) {
  windows.push_back(make_window(FaultKind::kTimestampCorruption, start, end, intensity));
  return *this;
}

FaultPlan& FaultPlan::latency_spikes(std::int64_t start, std::int64_t end, double extra_ms,
                                     double intensity) {
  windows.push_back(make_window(FaultKind::kLatencySpike, start, end, intensity, extra_ms));
  return *this;
}

FaultPlan FaultPlan::random(std::uint64_t seed, std::int64_t start_seconds,
                            std::int64_t end_seconds, const ChaosProfile& profile) {
  FaultPlan plan;
  plan.seed = seed;
  if (end_seconds <= start_seconds || profile.windows == 0) return plan;

  // Draw from a dedicated child stream so the schedule is a pure function
  // of the seed, independent of how the injector later consumes its own.
  util::Rng parent{seed};
  util::Rng rng = parent.split("fault-plan");
  const std::int64_t span = end_seconds - start_seconds;
  const std::int64_t min_len = std::max<std::int64_t>(1, profile.min_window_seconds);
  const std::int64_t max_len =
      std::max(min_len, std::min(profile.max_window_seconds, span));
  for (std::size_t i = 0; i < profile.windows; ++i) {
    const auto kind = static_cast<FaultKind>(
        rng.uniform_int(0, static_cast<std::int64_t>(kFaultKindCount) - 1));
    const std::int64_t length = rng.uniform_int(min_len, max_len);
    const std::int64_t latest_start = std::max<std::int64_t>(0, span - length);
    const std::int64_t start = start_seconds + rng.uniform_int(0, latest_start);
    const double intensity = rng.uniform(profile.min_intensity, profile.max_intensity);
    const double magnitude = kind == FaultKind::kLatencySpike
                                 ? rng.uniform(0.0, profile.max_latency_spike_ms)
                                 : 0.0;
    plan.windows.push_back(
        make_window(kind, start, std::min(start + length, end_seconds), intensity, magnitude));
  }
  return plan;
}

std::string FaultPlan::describe() const {
  std::string out = "FaultPlan seed=" + std::to_string(seed) + "\n";
  for (const FaultWindow& window : windows) {
    out += "  " + std::string{to_string(window.kind)} + " [" +
           std::to_string(window.start_seconds) + ", " + std::to_string(window.end_seconds) +
           ") intensity=" + std::to_string(window.intensity) +
           " magnitude=" + std::to_string(window.magnitude) + "\n";
  }
  return out;
}

}  // namespace tzgeo::fault
