#include "fault/injector.hpp"

#include <algorithm>
#include <utility>

#include "obs/metrics.hpp"
#include "obs/pipeline_metrics.hpp"

namespace tzgeo::fault {

namespace {

/// Scrambles every digit between `time="` attribute quotes; the defensive
/// page parser then rejects the post (or resolves a wrong instant), which
/// is exactly what a hostile or broken forum can do to the methodology.
void corrupt_time_attributes(std::string& body, util::Rng& rng) {
  constexpr std::string_view kNeedle = "time=\"";
  std::size_t pos = 0;
  while ((pos = body.find(kNeedle, pos)) != std::string::npos) {
    std::size_t cursor = pos + kNeedle.size();
    while (cursor < body.size() && body[cursor] != '"') {
      if (body[cursor] >= '0' && body[cursor] <= '9') {
        body[cursor] = static_cast<char>('0' + rng.uniform_int(0, 9));
      }
      ++cursor;
    }
    pos = cursor;
  }
}

}  // namespace

FaultInjector::FaultInjector(FaultPlan plan) : plan_(std::move(plan)), rng_(plan_.seed) {}

void FaultInjector::begin_epoch(std::uint64_t epoch) {
  // Pure function of (plan seed, epoch): a resumed run that replays the
  // same epoch rejoins the same decision stream mid-campaign.
  util::Rng parent{plan_.seed};
  rng_ = parent.split(epoch);
}

const FaultWindow* FaultInjector::active(FaultKind kind,
                                         std::int64_t now_seconds) const noexcept {
  for (const FaultWindow& window : plan_.windows) {
    if (window.kind == kind && window.contains(now_seconds)) return &window;
  }
  return nullptr;
}

bool FaultInjector::fires(const FaultWindow& window) {
  if (!rng_.bernoulli(window.intensity)) return false;
  ++stats_.injected[static_cast<std::size_t>(window.kind)];
  obs::MetricsRegistry::global().add(obs::PipelineMetrics::get().fault_injections);
  return true;
}

FaultInjector::PreRequest FaultInjector::before_request(std::int64_t now_seconds) {
  PreRequest verdict;
  if (const FaultWindow* window = active(FaultKind::kOutage, now_seconds)) {
    if (fires(*window)) verdict.drop_connection = true;
  }
  if (!verdict.drop_connection) {
    if (const FaultWindow* window = active(FaultKind::kCircuitDropBurst, now_seconds)) {
      if (fires(*window)) verdict.drop_connection = true;
    }
  }
  if (!verdict.drop_connection) {
    if (const FaultWindow* window = active(FaultKind::kRateLimitStorm, now_seconds)) {
      if (fires(*window)) verdict.force_rate_limit = true;
    }
  }
  if (const FaultWindow* window = active(FaultKind::kLatencySpike, now_seconds)) {
    if (fires(*window)) verdict.extra_latency_ms = std::max(0.0, window->magnitude);
  }
  return verdict;
}

void FaultInjector::mutate_body(std::int64_t now_seconds, std::string& body) {
  if (body.empty()) return;
  if (const FaultWindow* window = active(FaultKind::kBodyTruncation, now_seconds)) {
    if (fires(*window)) {
      // Cut somewhere in the first three quarters so the page structure
      // (not just a trailing post) is usually destroyed.
      const auto cut = static_cast<std::size_t>(
          rng_.uniform_int(0, static_cast<std::int64_t>(body.size() * 3 / 4)));
      body.resize(cut);
    }
  }
  if (body.empty()) return;
  if (const FaultWindow* window = active(FaultKind::kBodyGarble, now_seconds)) {
    if (fires(*window)) {
      const std::size_t flips = std::max<std::size_t>(1, body.size() / 64);
      for (std::size_t i = 0; i < flips; ++i) {
        const auto at = static_cast<std::size_t>(
            rng_.uniform_int(0, static_cast<std::int64_t>(body.size()) - 1));
        body[at] = static_cast<char>(rng_.uniform_int(0, 255));
      }
    }
  }
  if (const FaultWindow* window = active(FaultKind::kTimestampCorruption, now_seconds)) {
    if (fires(*window)) corrupt_time_attributes(body, rng_);
  }
}

}  // namespace tzgeo::fault
