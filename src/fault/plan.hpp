// Deterministic fault schedules for chaos testing.
//
// Real dark-web measurement campaigns are dominated by failures the
// methodology must survive: onion services go dark for days, rate-limit
// storms throttle every request, circuits drop in bursts, pages arrive
// truncated or garbled, and displayed timestamps get corrupted.  A
// FaultPlan scripts those failures onto the simulated timeline as timed
// windows, either hand-written (scripted chaos) or generated from a seed
// (randomized chaos) — and because every stochastic decision downstream
// flows through a seeded util::Rng, any schedule replays bit-identically.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace tzgeo::fault {

/// What kind of failure a window injects.
enum class FaultKind : std::uint8_t {
  kOutage,               ///< every round trip to the service fails
  kRateLimitStorm,       ///< responses replaced by 429s
  kCircuitDropBurst,     ///< elevated mid-request circuit drops
  kBodyTruncation,       ///< response bodies cut short
  kBodyGarble,           ///< random bytes flipped in response bodies
  kTimestampCorruption,  ///< displayed time attributes scrambled
  kLatencySpike,         ///< slow responses (extra round-trip latency)
};

inline constexpr std::size_t kFaultKindCount = 7;

[[nodiscard]] const char* to_string(FaultKind kind) noexcept;

/// One timed fault window on the simulated clock: active on [start, end).
struct FaultWindow {
  FaultKind kind = FaultKind::kOutage;
  std::int64_t start_seconds = 0;
  std::int64_t end_seconds = 0;
  /// Per-request trigger probability in [0, 1] for the stochastic kinds
  /// (drops, truncation, garbling, timestamp corruption, latency spikes);
  /// outages and storms usually run at 1.0.
  double intensity = 1.0;
  /// Kind-specific magnitude: extra latency in milliseconds for
  /// kLatencySpike; unused by the other kinds.
  double magnitude = 0.0;

  [[nodiscard]] bool contains(std::int64_t now_seconds) const noexcept {
    return now_seconds >= start_seconds && now_seconds < end_seconds;
  }
};

/// Tuning for FaultPlan::random().
struct ChaosProfile {
  std::size_t windows = 6;                      ///< windows to generate
  std::int64_t min_window_seconds = 1800;       ///< shortest window
  std::int64_t max_window_seconds = 6 * 3600;   ///< longest window
  double min_intensity = 0.25;                  ///< stochastic kinds draw in
  double max_intensity = 1.0;                   ///< [min, max]
  double max_latency_spike_ms = 4000.0;         ///< kLatencySpike magnitude cap
};

/// A complete fault schedule: a seed (driving every downstream random
/// decision) plus the timed windows.
struct FaultPlan {
  std::uint64_t seed = 0;
  std::vector<FaultWindow> windows;

  // Fluent scripted construction.
  FaultPlan& outage(std::int64_t start, std::int64_t end);
  FaultPlan& rate_limit_storm(std::int64_t start, std::int64_t end, double intensity = 1.0);
  FaultPlan& circuit_drops(std::int64_t start, std::int64_t end, double intensity = 0.5);
  FaultPlan& truncated_bodies(std::int64_t start, std::int64_t end, double intensity = 1.0);
  FaultPlan& garbled_bodies(std::int64_t start, std::int64_t end, double intensity = 1.0);
  FaultPlan& corrupted_timestamps(std::int64_t start, std::int64_t end, double intensity = 1.0);
  FaultPlan& latency_spikes(std::int64_t start, std::int64_t end, double extra_ms,
                            double intensity = 1.0);

  /// Generates a randomized schedule of `profile.windows` windows with
  /// kinds, placements, lengths, and intensities all drawn from `seed`.
  /// The same (seed, span, profile) triple always yields the same plan.
  [[nodiscard]] static FaultPlan random(std::uint64_t seed, std::int64_t start_seconds,
                                        std::int64_t end_seconds,
                                        const ChaosProfile& profile = {});

  /// One line per window, for logs and failure messages.
  [[nodiscard]] std::string describe() const;
};

}  // namespace tzgeo::fault
