// Seed-driven fault injector, consulted by tor::OnionTransport.
//
// The transport asks `before_request()` once per round trip (may fail the
// trip, force a 429, or add latency) and `mutate_body()` once per
// successful response (may truncate, garble, or corrupt timestamps).
// Every stochastic decision draws from a util::Rng reseeded per epoch by
// `begin_epoch()` — the monitor starts one epoch per poll sweep — so a
// chaos run replays bit-identically from (plan seed, epoch sequence), and
// a crash/resume rejoins the exact same fault trajectory.
#pragma once

#include <cstdint>
#include <string>

#include "fault/plan.hpp"
#include "util/rng.hpp"

namespace tzgeo::fault {

/// Injection counters by kind, exposed for tests and reports.
struct FaultStats {
  std::uint64_t injected[kFaultKindCount] = {};

  [[nodiscard]] std::uint64_t of(FaultKind kind) const noexcept {
    return injected[static_cast<std::size_t>(kind)];
  }
  [[nodiscard]] std::uint64_t total() const noexcept {
    std::uint64_t sum = 0;
    for (const std::uint64_t count : injected) sum += count;
    return sum;
  }
};

class FaultInjector {
 public:
  explicit FaultInjector(FaultPlan plan);

  /// Reseeds the decision stream as a pure function of (plan seed, epoch).
  /// The transport forwards its own epoch boundaries here.
  void begin_epoch(std::uint64_t epoch);

  /// Verdict for one round trip, decided before the request is delivered.
  struct PreRequest {
    bool drop_connection = false;   ///< fail the trip (outage / drop burst)
    bool force_rate_limit = false;  ///< deliver a 429 instead of the response
    double extra_latency_ms = 0.0;  ///< latency spike to add to the trip
  };

  [[nodiscard]] PreRequest before_request(std::int64_t now_seconds);

  /// Applies body-level faults (truncation, garbling, timestamp
  /// corruption) to a response body in place.
  void mutate_body(std::int64_t now_seconds, std::string& body);

  [[nodiscard]] const FaultStats& stats() const noexcept { return stats_; }
  [[nodiscard]] const FaultPlan& plan() const noexcept { return plan_; }

 private:
  /// Active window of `kind` at `now`, or nullptr.  First match wins, so
  /// scripted plans can rely on window order.
  [[nodiscard]] const FaultWindow* active(FaultKind kind,
                                          std::int64_t now_seconds) const noexcept;

  /// True when `window`'s intensity fires for this event; counts it.
  [[nodiscard]] bool fires(const FaultWindow& window);

  FaultPlan plan_;
  util::Rng rng_;
  FaultStats stats_;
};

}  // namespace tzgeo::fault
