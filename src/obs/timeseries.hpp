// Time-series recorder: periodic MetricsRegistry snapshots with
// windowed derivation.
//
// Point-in-time counters mislead on bursty, non-stationary workloads —
// the regime dark-web forums actually exhibit — so dashboards need
// *series*: deltas, rates, and rolling-window latency quantiles.  The
// recorder keeps a fixed-capacity ring of flat value snapshots:
//
//   sample() —  one row per call: every registered metric's current
//               value (counters/gauges one slot, histograms
//               kHistogramBuckets + sum + count slots) copied into a
//               pre-sized flat vector.  Steady state allocates nothing;
//               the layout is rebuilt only when the registry has grown
//               since the previous sample.
//   windows —  delta / rate-per-second over the trailing window for
//               counters, and bucket-wise histogram differences for
//               rolling-window quantiles (approx_quantile over the
//               diff), so "p99 over the last minute" is exact at
//               bucket resolution rather than lifetime-cumulative.
//   export  —  JSON series and Prometheus text exposition with
//               timestamp suffixes (monotonic milliseconds from
//               obs::Stopwatch — the process time base, suitable for
//               offline diffing, not wall-clock scrape federation).
//
// Like the rest of the obs layer this compiles out under
// TZGEO_OBS_DISABLED: sample() is a no-op and every query returns
// empty/zero.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/stopwatch.hpp"
#include "util/json.hpp"

namespace tzgeo::obs {

class TimeSeriesRecorder {
 public:
  static constexpr std::size_t kDefaultCapacity = 240;

  /// `registry == nullptr` records MetricsRegistry::global().
  explicit TimeSeriesRecorder(std::size_t capacity = kDefaultCapacity,
                              const MetricsRegistry* registry = nullptr);

  /// Takes one snapshot row.  Steady-state allocation-free; rebuilds
  /// the layout (allocates) only when the registry grew.
  void sample(std::uint64_t t_ns = Stopwatch::now_ns());

  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  /// Rows currently retained (<= capacity).
  [[nodiscard]] std::size_t samples() const;
  /// Rows ever taken; taken() - samples() rows have been overwritten.
  [[nodiscard]] std::uint64_t taken() const;

  // --- windowed derivation ------------------------------------------------
  // All lookups are by metric name; a name that is unknown, of the
  // wrong kind, or not yet sampled yields zero/empty.  `window_ns == 0`
  // means "everything retained".

  /// Newest value minus the value at the window start (counters/gauges).
  [[nodiscard]] std::int64_t delta(std::string_view name, std::uint64_t window_ns = 0) const;

  /// delta / elapsed-seconds over the same window; 0 when < 2 samples.
  [[nodiscard]] double rate_per_second(std::string_view name,
                                       std::uint64_t window_ns = 0) const;

  /// Bucket-wise histogram difference over the window: observations
  /// that happened *inside* it.
  [[nodiscard]] HistogramSnapshot window_histogram(std::string_view name,
                                                   std::uint64_t window_ns = 0) const;

  /// approx_quantile over window_histogram — the rolling-window p50/p99.
  [[nodiscard]] std::uint64_t window_quantile(std::string_view name, double q,
                                              std::uint64_t window_ns = 0) const;

  /// One point per retained sample (raw values, oldest first) — chart feed.
  struct Point {
    std::uint64_t t_ns = 0;
    std::uint64_t value = 0;
  };
  [[nodiscard]] std::vector<Point> series(std::string_view name) const;

  /// Pairwise rates between consecutive samples (size = samples() - 1).
  [[nodiscard]] std::vector<double> rate_series(std::string_view name) const;

  // --- export -------------------------------------------------------------

  /// {"samples": N, "series": [{"name","kind","points":[[t_ms,v],...]}]}.
  /// Histograms export their _count series plus newest sum/buckets.
  [[nodiscard]] util::JsonValue to_json() const;

  /// Prometheus text exposition with an explicit timestamp (monotonic
  /// milliseconds) per sample line; counters/gauges get one line per
  /// retained sample, histograms their _sum/_count series plus the
  /// newest full bucket set.
  [[nodiscard]] std::string prometheus() const;

  /// Drops retained rows (layout survives).
  void clear();

 private:
  struct Column {
    MetricId id = kInvalidMetric;
    MetricKind kind = MetricKind::kCounter;
    std::size_t offset = 0;  ///< index into a row's flat value vector
    std::size_t width = 0;   ///< 1, or kHistogramBuckets + 2 (.., sum, count)
    std::string name;
  };

  struct Row {
    std::uint64_t t_ns = 0;
    std::vector<std::uint64_t> values;
  };

  void rebuild_layout_locked();
  [[nodiscard]] const Column* column_locked(std::string_view name) const;
  /// Oldest retained row index (into time order) covering the window
  /// that ends at the newest row; SIZE_MAX when < 1 row retained.
  [[nodiscard]] std::size_t window_start_locked(std::uint64_t window_ns) const;
  /// First row index >= start whose flat vector covers [0, end_offset)
  /// — rows taken before a metric was registered are too short to serve
  /// as its baseline.  Returns retained_ when no row qualifies.
  [[nodiscard]] std::size_t covered_start_locked(std::size_t start,
                                                 std::size_t end_offset) const;
  [[nodiscard]] const Row& row_locked(std::size_t time_index) const;

  std::size_t capacity_;
  const MetricsRegistry* registry_;

  mutable std::mutex mutex_;
  std::vector<Column> layout_;
  std::size_t layout_metrics_ = 0;  ///< registry size the layout was built at
  std::size_t row_width_ = 0;
  std::vector<Row> ring_;
  std::size_t next_ = 0;
  std::size_t retained_ = 0;
  std::uint64_t taken_ = 0;
};

}  // namespace tzgeo::obs
