// Health registry: heartbeats, stall detection, and a machine-readable
// healthz verdict.
//
// Counters say how much work happened; they cannot say that work
// *stopped*.  Long-running components (the forum monitor, the thread
// pool, the tor transport) register once and then beat — one relaxed
// store of Stopwatch::now_ns() — every time they make progress.  A
// report() call compares last-beat ages against each component's stall
// threshold:
//
//   starting — registered, active, never beaten (startup grace)
//   idle     — no work in flight; age is irrelevant
//   ok       — work in flight, beaten recently
//   stalled  — work in flight, last beat older than the threshold
//   failed   — the component marked itself failed (sticky until cleared)
//
// The active-work gate matters: a monitor between campaigns is idle,
// not stalled, no matter how old its last beat is.  Wrap begin_work /
// end_work around in-flight sections (WorkScope is the RAII form) and
// beat inside loops.
//
// The JSON report is the future `GET /healthz` body for tzgeo::serve
// (ROADMAP item 1): {"status": "...", "components": [...]}.
// Compiles out under TZGEO_OBS_DISABLED like the rest of the obs layer.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/stopwatch.hpp"
#include "util/json.hpp"

namespace tzgeo::obs {

enum class HealthState : std::uint8_t { kStarting, kIdle, kOk, kStalled, kFailed };

[[nodiscard]] const char* health_state_name(HealthState state) noexcept;

class Health {
 public:
  using ComponentId = std::uint32_t;
  static constexpr ComponentId kInvalidComponent = 0xFFFFFFFFu;
  static constexpr std::size_t kMaxComponents = 64;
  static constexpr std::size_t kNameCapacity = 48;
  static constexpr std::size_t kReasonCapacity = 96;
  /// Default stall threshold: 30 s of in-flight silence.
  static constexpr std::uint64_t kDefaultStallNs = 30'000'000'000ull;

  Health() = default;
  Health(const Health&) = delete;
  Health& operator=(const Health&) = delete;

  /// Registers (or finds, by exact name) a component.  Slow path; call
  /// once and keep the id.  Returns kInvalidComponent past capacity.
  ComponentId component(std::string_view name,
                        std::uint64_t stall_after_ns = kDefaultStallNs);

  // --- hot path -----------------------------------------------------------

  /// Progress heartbeat: two relaxed stores.  Tests pass an explicit
  /// timestamp; production call sites use the default.
  void beat(ComponentId id) noexcept {  // tzgeo: hot
    beat_at(id, Stopwatch::now_ns());
  }
  void beat_at(ComponentId id, std::uint64_t t_ns) noexcept {  // tzgeo: hot
    if constexpr (kDisabled) {
      (void)id;
      (void)t_ns;
    } else {
      if (id >= count_.load(std::memory_order_acquire)) return;
      Component& c = components_[id];
      c.last_beat_ns.store(t_ns, std::memory_order_relaxed);
      c.beats.fetch_add(1, std::memory_order_relaxed);
    }
  }

  /// Marks work in flight; stall detection only applies while the
  /// active count is positive.  Also refreshes the beat so the stall
  /// clock starts at the work boundary, not at the previous campaign.
  void begin_work(ComponentId id) noexcept;
  void end_work(ComponentId id) noexcept;

  /// RAII work section; survives exceptions in the monitored code.
  class WorkScope {
   public:
    WorkScope(Health& health, ComponentId id) noexcept : health_(health), id_(id) {
      health_.begin_work(id_);
    }
    ~WorkScope() { health_.end_work(id_); }
    WorkScope(const WorkScope&) = delete;
    WorkScope& operator=(const WorkScope&) = delete;

   private:
    Health& health_;
    ComponentId id_;
  };

  // --- failure latching ---------------------------------------------------

  /// Latches the component failed with a short reason; sticky until
  /// clear_failed.  Slow path (takes the registration mutex).
  void mark_failed(ComponentId id, std::string_view reason);
  void clear_failed(ComponentId id);

  // --- reads --------------------------------------------------------------

  struct ComponentReport {
    std::string name;
    HealthState state = HealthState::kStarting;
    std::uint64_t beats = 0;
    std::uint64_t last_beat_age_ns = 0;  ///< 0 when never beaten
    std::uint64_t stall_after_ns = 0;
    std::uint32_t active = 0;
    std::string reason;  ///< non-empty only when failed
  };

  struct Report {
    HealthState overall = HealthState::kOk;  ///< worst component verdict
    std::vector<ComponentReport> components;
  };

  [[nodiscard]] Report report(std::uint64_t now_ns = Stopwatch::now_ns()) const;

  /// True iff no component is stalled or failed.
  [[nodiscard]] bool healthy(std::uint64_t now_ns = Stopwatch::now_ns()) const;

  /// {"status": "ok"|"stalled"|"failed", "components": [...]} — the
  /// healthz body.
  [[nodiscard]] util::JsonValue to_json(std::uint64_t now_ns = Stopwatch::now_ns()) const;

  [[nodiscard]] std::size_t size() const noexcept {
    return count_.load(std::memory_order_acquire);
  }

  /// Forgets all components.  For tests.
  void reset();

  /// The process-wide health registry.
  static Health& global();

 private:
  struct Component {
    char name[kNameCapacity] = {};
    std::uint8_t name_len = 0;
    std::uint64_t stall_after_ns = kDefaultStallNs;
    std::atomic<std::uint64_t> last_beat_ns{0};
    std::atomic<std::uint64_t> beats{0};
    std::atomic<std::uint32_t> active{0};
    std::atomic<bool> failed{false};
    char reason[kReasonCapacity] = {};  ///< guarded by mutex_
    std::uint8_t reason_len = 0;        ///< guarded by mutex_
  };

  [[nodiscard]] static HealthState judge(const Component& c, std::uint64_t now_ns,
                                         std::uint64_t last_beat,
                                         std::uint64_t beats,
                                         std::uint32_t active) noexcept;

  mutable std::mutex mutex_;  ///< guards registration + failure reasons
  std::atomic<std::size_t> count_{0};
  std::array<Component, kMaxComponents> components_;
};

}  // namespace tzgeo::obs
