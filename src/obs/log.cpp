#include "obs/log.hpp"

#include <cstdio>
#include <cstring>

#include "obs/pipeline_metrics.hpp"
#include "obs/stopwatch.hpp"
#include "obs/trace.hpp"

namespace tzgeo::obs {

namespace {

/// Bounded, non-allocating text writer for the hot path.  Overflow is
/// sticky: once full, further puts are dropped and `overflow` reports it.
struct BufWriter {
  char* buf;
  std::size_t cap;
  std::size_t len = 0;
  bool overflow = false;

  void put(char c) noexcept {
    if (len + 1 > cap) {
      overflow = true;
      return;
    }
    buf[len++] = c;
  }

  void put(std::string_view text) noexcept {
    if (len + text.size() > cap) {
      overflow = true;
      text = text.substr(0, cap - len);
    }
    std::memcpy(buf + len, text.data(), text.size());
    len += text.size();
  }

  /// JSON string-escapes `text` (no surrounding quotes).  Truncates at
  /// an escape boundary so the output is always a valid string body.
  void put_escaped(std::string_view text) noexcept {
    for (const char c : text) {
      char scratch[8];
      std::string_view piece;
      switch (c) {
        case '"': piece = "\\\""; break;
        case '\\': piece = "\\\\"; break;
        case '\n': piece = "\\n"; break;
        case '\r': piece = "\\r"; break;
        case '\t': piece = "\\t"; break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            std::snprintf(scratch, sizeof scratch, "\\u%04x", c);
            piece = std::string_view{scratch, 6};
          } else {
            piece = std::string_view{&c, 1};
          }
      }
      if (len + piece.size() > cap) {
        overflow = true;
        return;
      }
      std::memcpy(buf + len, piece.data(), piece.size());
      len += piece.size();
    }
  }

  void put_u64(std::uint64_t value) noexcept {
    char scratch[32];
    const int n = std::snprintf(scratch, sizeof scratch, "%llu",
                                static_cast<unsigned long long>(value));
    put(std::string_view{scratch, static_cast<std::size_t>(n)});
  }

  void put_i64(std::int64_t value) noexcept {
    char scratch[32];
    const int n = std::snprintf(scratch, sizeof scratch, "%lld",
                                static_cast<long long>(value));
    put(std::string_view{scratch, static_cast<std::size_t>(n)});
  }

  void put_f64(double value) noexcept {
    char scratch[40];
    const int n = std::snprintf(scratch, sizeof scratch, "%.10g", value);
    put(std::string_view{scratch, static_cast<std::size_t>(n)});
  }
};

/// Formats one field as `"key":value`.  Returns false (writer rolled
/// back by the caller via the saved length) when it does not fit whole.
void put_field(BufWriter& w, const LogField& f) noexcept {
  w.put('"');
  w.put_escaped(f.key);
  w.put("\":");
  switch (f.kind) {
    case LogField::Kind::kInt: w.put_i64(f.i); break;
    case LogField::Kind::kUint: w.put_u64(f.u); break;
    case LogField::Kind::kDouble: w.put_f64(f.d); break;
    case LogField::Kind::kBool: w.put(f.b ? "true" : "false"); break;
    case LogField::Kind::kString:
      w.put('"');
      w.put_escaped(f.s);
      w.put('"');
      break;
  }
}

}  // namespace

const char* log_level_name(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::kDebug: return "debug";
    case LogLevel::kInfo: return "info";
    case LogLevel::kWarn: return "warn";
    case LogLevel::kError: return "error";
  }
  return "unknown";  // unreachable
}

Log::Log(std::size_t capacity) : capacity_(capacity == 0 ? 1 : capacity) {
  if constexpr (kDisabled) {
    capacity_ = 0;
    return;
  }
  ring_.resize(capacity_);  // one up-front allocation; hot path copies into slots
}

Log::~Log() { close_sink(); }

Log::SiteId Log::site(std::string_view name, LogLevel level,
                      std::uint32_t max_per_second) {
  if constexpr (kDisabled) return kInvalidSite;
  const std::lock_guard<std::mutex> lock(site_mutex_);
  const std::size_t count = site_count_.load(std::memory_order_relaxed);
  for (std::size_t i = 0; i < count; ++i) {
    const Site& s = sites_[i];
    if (std::string_view{s.name, s.name_len} == name) return static_cast<SiteId>(i);
  }
  if (count >= kMaxSites) return kInvalidSite;
  Site& s = sites_[count];
  const std::size_t n = std::min(name.size(), kSiteNameCapacity - 1);
  std::memcpy(s.name, name.data(), n);
  s.name[n] = '\0';
  s.name_len = static_cast<std::uint8_t>(n);
  s.level = level;
  s.max_per_second = max_per_second;
  s.window.store(0, std::memory_order_relaxed);
  site_count_.store(count + 1, std::memory_order_release);
  return static_cast<SiteId>(count);
}

bool Log::enabled(SiteId id) const noexcept {
  if constexpr (kDisabled) return false;
  if (id >= site_count_.load(std::memory_order_acquire)) return false;
  if (!runtime_enabled_.load(std::memory_order_relaxed)) return false;
  return static_cast<std::uint8_t>(sites_[id].level) >=
         min_level_.load(std::memory_order_relaxed);
}

bool Log::rate_limit_allows(Site& site, std::uint64_t t_ns) noexcept {
  if (site.max_per_second == 0) return true;
  const auto sec = static_cast<std::uint32_t>(t_ns / 1'000'000'000ull);
  std::uint64_t current = site.window.load(std::memory_order_relaxed);
  while (true) {
    const auto window_sec = static_cast<std::uint32_t>(current >> 32);
    const auto count = static_cast<std::uint32_t>(current & 0xFFFFFFFFu);
    std::uint64_t next;
    if (window_sec != sec) {
      next = (static_cast<std::uint64_t>(sec) << 32) | 1u;
    } else if (count >= site.max_per_second) {
      return false;
    } else {
      next = (static_cast<std::uint64_t>(sec) << 32) | (count + 1u);
    }
    if (site.window.compare_exchange_weak(current, next, std::memory_order_relaxed)) {
      return true;
    }
  }
}

void Log::count_suppressed() noexcept {
  if (this == &Log::global()) {
    MetricsRegistry::global().add(PipelineMetrics::get().log_records_suppressed);
  }
}

void Log::write(SiteId id, std::string_view message,
                std::initializer_list<LogField> fields) noexcept {
  if constexpr (kDisabled) {
    (void)id;
    (void)message;
    (void)fields;
  } else {
    write_at(Stopwatch::now_ns(), id, message, fields);
  }
}

void Log::write_at(std::uint64_t t_ns, SiteId id, std::string_view message,
                   std::initializer_list<LogField> fields) noexcept {  // tzgeo: hot
  if constexpr (kDisabled) {
    (void)t_ns;
    (void)id;
    (void)message;
    (void)fields;
  } else {
    if (id >= site_count_.load(std::memory_order_acquire)) return;
    if (!enabled(id)) {
      suppressed_level_.fetch_add(1, std::memory_order_relaxed);
      count_suppressed();
      return;
    }
    Site& site = sites_[id];
    if (!rate_limit_allows(site, t_ns)) {
      suppressed_rate_.fetch_add(1, std::memory_order_relaxed);
      count_suppressed();
      return;
    }

    // Format fields into stack scratch before taking the ring lock.  A
    // field that does not fit whole is rolled back and the record is
    // marked truncated — the buffer always holds valid object-body JSON.
    char scratch[kFieldsCapacity];
    BufWriter fw{scratch, sizeof scratch};
    bool truncated = false;
    for (const LogField& f : fields) {
      const std::size_t mark = fw.len;
      if (mark != 0) fw.put(',');
      put_field(fw, f);
      if (fw.overflow) {
        fw.len = mark;
        fw.overflow = false;
        truncated = true;
        break;
      }
    }
    if (message.size() > kMessageCapacity - 1) {
      message = message.substr(0, kMessageCapacity - 1);
      truncated = true;
    }

    bool overwrote = false;
    {
      const std::lock_guard<std::mutex> lock(ring_mutex_);
      Record& slot = ring_[next_];
      next_ = (next_ + 1) % capacity_;
      if (retained_ < capacity_) {
        ++retained_;
      } else {
        overwrote = true;
      }
      slot.seq = seq_++;
      slot.t_ns = t_ns;
      slot.site = id;
      slot.thread = TraceContext::thread_index();
      slot.level = site.level;
      slot.truncated = truncated;
      slot.msg_len = static_cast<std::uint16_t>(message.size());
      std::memcpy(slot.msg, message.data(), message.size());
      slot.fields_len = static_cast<std::uint16_t>(fw.len);
      std::memcpy(slot.fields, scratch, fw.len);
      if (sink_ != nullptr) {
        // Sized for the worst case: every message/site byte escaping to
        // \u00xx (6x) plus the pre-escaped fields and fixed framing.
        char line[2048];
        BufWriter lw{line, sizeof line};
        lw.put("{\"t_ns\":");
        lw.put_u64(slot.t_ns);
        lw.put(",\"seq\":");
        lw.put_u64(slot.seq);
        lw.put(",\"level\":\"");
        lw.put(log_level_name(slot.level));
        lw.put("\",\"site\":\"");
        lw.put_escaped(std::string_view{site.name, site.name_len});
        lw.put("\",\"thread\":");
        lw.put_u64(slot.thread);
        lw.put(",\"msg\":\"");
        lw.put_escaped(std::string_view{slot.msg, slot.msg_len});
        lw.put("\",\"fields\":{");
        lw.put(std::string_view{slot.fields, slot.fields_len});
        lw.put("}}\n");
        auto* file = static_cast<std::FILE*>(sink_);
        std::fwrite(line, 1, lw.len, file);
        std::fflush(file);
      }
    }
    emitted_.fetch_add(1, std::memory_order_relaxed);
    if (overwrote) {
      dropped_.fetch_add(1, std::memory_order_relaxed);
      if (this == &Log::global()) {
        MetricsRegistry::global().add(PipelineMetrics::get().log_records_dropped);
      }
    }
  }
}

bool Log::open_jsonl_sink(const std::string& path) {
  if constexpr (kDisabled) return false;
  std::FILE* file = std::fopen(path.c_str(), "a");
  if (file == nullptr) return false;
  const std::lock_guard<std::mutex> lock(ring_mutex_);
  if (sink_ != nullptr) std::fclose(static_cast<std::FILE*>(sink_));
  sink_ = file;
  return true;
}

void Log::close_sink() {
  if constexpr (kDisabled) return;
  const std::lock_guard<std::mutex> lock(ring_mutex_);
  if (sink_ != nullptr) {
    std::fclose(static_cast<std::FILE*>(sink_));
    sink_ = nullptr;
  }
}

std::vector<Log::RecordView> Log::snapshot() const {
  std::vector<RecordView> out;
  if constexpr (kDisabled) return out;
  const std::lock_guard<std::mutex> ring_lock(ring_mutex_);
  const std::size_t site_count = site_count_.load(std::memory_order_acquire);
  out.reserve(retained_);
  // Oldest first: when full, next_ points at the oldest record.
  const std::size_t start = retained_ < capacity_ ? 0 : next_;
  for (std::size_t i = 0; i < retained_; ++i) {
    const Record& r = ring_[(start + i) % capacity_];
    RecordView view;
    view.seq = r.seq;
    view.t_ns = r.t_ns;
    view.level = r.level;
    view.thread = r.thread;
    view.truncated = r.truncated;
    if (r.site < site_count) {
      const Site& s = sites_[r.site];
      view.site.assign(s.name, s.name_len);
    }
    view.message.assign(r.msg, r.msg_len);
    view.fields_json.assign(r.fields, r.fields_len);
    out.push_back(std::move(view));
  }
  return out;
}

std::string Log::to_jsonl() const {
  std::string out;
  for (const RecordView& r : snapshot()) {
    out += "{\"t_ns\":";
    out += std::to_string(r.t_ns);
    out += ",\"seq\":";
    out += std::to_string(r.seq);
    out += ",\"level\":";
    out += util::json_quote(log_level_name(r.level));
    out += ",\"site\":";
    out += util::json_quote(r.site);
    out += ",\"thread\":";
    out += std::to_string(r.thread);
    out += ",\"msg\":";
    out += util::json_quote(r.message);
    out += ",\"fields\":{";
    out += r.fields_json;
    out += "}}\n";
  }
  return out;
}

util::JsonValue Log::to_json() const {
  util::JsonValue records = util::JsonValue::array();
  for (const RecordView& r : snapshot()) {
    util::JsonValue entry = util::JsonValue::object();
    entry.set("t_ns", util::JsonValue::integer(static_cast<std::int64_t>(r.t_ns)));
    entry.set("seq", util::JsonValue::integer(static_cast<std::int64_t>(r.seq)));
    entry.set("level", util::JsonValue::string(log_level_name(r.level)));
    entry.set("site", util::JsonValue::string(r.site));
    entry.set("thread", util::JsonValue::integer(r.thread));
    entry.set("msg", util::JsonValue::string(r.message));
    if (r.truncated) entry.set("truncated", util::JsonValue::boolean(true));
    // Field text is already a JSON object body; round-trip through the
    // parser so the dump nests it structurally rather than as a string.
    std::string object_text = "{";
    object_text += r.fields_json;
    object_text += "}";
    if (auto parsed = util::JsonValue::parse(object_text)) {
      entry.set("fields", std::move(*parsed));
    }
    records.push(std::move(entry));
  }
  util::JsonValue root = util::JsonValue::object();
  root.set("records", std::move(records));
  return root;
}

std::size_t Log::retained() const {
  if constexpr (kDisabled) return 0;
  const std::lock_guard<std::mutex> lock(ring_mutex_);
  return retained_;
}

void Log::clear() {
  if constexpr (kDisabled) return;
  const std::lock_guard<std::mutex> lock(ring_mutex_);
  next_ = 0;
  retained_ = 0;
  seq_ = 0;
  emitted_.store(0, std::memory_order_relaxed);
  dropped_.store(0, std::memory_order_relaxed);
  suppressed_level_.store(0, std::memory_order_relaxed);
  suppressed_rate_.store(0, std::memory_order_relaxed);
}

Log& Log::global() {
  static Log log;
  return log;
}

}  // namespace tzgeo::obs
