// Span tracing: nested, cross-thread stage timings for the pipeline.
//
// A ScopedSpan brackets one stage (ingest, profiles, filter, placement,
// gmm, ...): construction stamps the start and pushes the span as the
// thread's *current* span; destruction stamps the end and records a
// SpanRecord into a TraceBuffer sink.  Parent/child nesting follows a
// thread-local current-span id, and core::ThreadPool propagates the
// submitting thread's current span into its workers, so chunk spans
// created inside a parallel region parent correctly for any thread
// count (tested in test_obs.cpp).
//
// The sink is a fixed-capacity ring buffer guarded by a mutex — spans
// are stage-granular (tens per pipeline run, not per row), so a lock is
// simpler and TSan-clean; the hot per-row paths use MetricsRegistry's
// atomics instead.  Exporters: plain JSON ({"spans": [...]}) and Chrome
// trace_event format (load the file in chrome://tracing or Perfetto).
//
// With kDisabled (see obs/metrics.hpp) ScopedSpan compiles to an empty
// object and TraceContext::current_span() is constant 0.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/stopwatch.hpp"

namespace tzgeo::obs {

/// One completed span.
struct SpanRecord {
  std::uint64_t id = 0;
  std::uint64_t parent = 0;  ///< 0 = root
  std::uint64_t start_ns = 0;
  std::uint64_t end_ns = 0;
  std::uint32_t thread = 0;  ///< dense per-thread index (first-use order)
  std::string name;
};

/// Thread-safe fixed-capacity ring of completed spans (newest win).
class TraceBuffer {
 public:
  static constexpr std::size_t kDefaultCapacity = 8192;

  explicit TraceBuffer(std::size_t capacity = kDefaultCapacity);
  TraceBuffer(const TraceBuffer&) = delete;
  TraceBuffer& operator=(const TraceBuffer&) = delete;

  void record(SpanRecord record);

  /// Retained spans, oldest-first by arrival.
  [[nodiscard]] std::vector<SpanRecord> snapshot() const;

  /// Spans ever recorded (>= retained when the ring wrapped).
  [[nodiscard]] std::uint64_t recorded() const noexcept;
  /// Spans evicted by ring wrap-around.
  [[nodiscard]] std::uint64_t dropped() const noexcept;
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

  void clear();

  /// {"spans": [{id, parent, thread, name, start_ns, end_ns}, ...]}.
  [[nodiscard]] std::string to_json() const;

  /// Chrome trace_event JSON: {"traceEvents": [{ph:"X", ...}, ...]}.
  /// Timestamps are microseconds relative to the earliest retained span.
  [[nodiscard]] std::string to_chrome_trace() const;

  /// The process-wide sink ScopedSpan records into by default.
  static TraceBuffer& global();

 private:
  mutable std::mutex mutex_;
  std::size_t capacity_;
  std::vector<SpanRecord> ring_;  ///< guarded by mutex_
  std::size_t next_ = 0;          ///< ring write cursor
  std::uint64_t total_ = 0;       ///< records ever seen
};

/// Thread-local current-span bookkeeping + id allocation.
class TraceContext {
 public:
  /// The calling thread's innermost live span id (0 = none).
  [[nodiscard]] static std::uint64_t current_span() noexcept;

  /// Dense index of the calling thread (assigned on first use).
  [[nodiscard]] static std::uint32_t thread_index() noexcept;

  /// Fresh process-unique span id (never 0).
  [[nodiscard]] static std::uint64_t next_id() noexcept;

  /// RAII adoption of a foreign span as the thread's current span — the
  /// propagation edge ThreadPool workers use.  Restores the previous
  /// current span on destruction.
  class Scope {
   public:
    explicit Scope(std::uint64_t span_id) noexcept;
    ~Scope();
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    std::uint64_t previous_ = 0;
  };

 private:
  friend class ScopedSpan;
  static void set_current(std::uint64_t span_id) noexcept;
};

/// RAII span: records into `sink` (default: TraceBuffer::global()).
/// `name` must outlive the span (string literals by convention).
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name, TraceBuffer* sink = nullptr) noexcept;
  ~ScopedSpan();
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  /// This span's id (0 when kDisabled).
  [[nodiscard]] std::uint64_t id() const noexcept { return id_; }

 private:
  const char* name_ = nullptr;
  TraceBuffer* sink_ = nullptr;
  std::uint64_t id_ = 0;
  std::uint64_t parent_ = 0;
  std::uint64_t start_ns_ = 0;
};

}  // namespace tzgeo::obs
