// The one sanctioned monotonic clock read in the tree.
//
// Everything else in tzgeo runs on explicit time (util::SimClock, UTC
// seconds in the data) so experiments replay bit-identically.  Runtime
// *observability* is the deliberate exception: stage latencies and span
// timestamps describe the program, not the experiment, and never feed a
// computed result.  To keep that boundary mechanical, the host clock is
// read in exactly one place — Stopwatch::now_ns() — and the `obs-clock`
// lint rule forbids std::chrono clock reads in src/ outside src/obs/.
// Bench harness code shares this abstraction (bench_common section
// timers), so benchmarks and runtime metrics agree on one clock.
#pragma once

#include <chrono>
#include <cstdint>

namespace tzgeo::obs {

/// Monotonic nanosecond stopwatch over std::chrono::steady_clock.
class Stopwatch {
 public:
  Stopwatch() noexcept : start_(now_ns()) {}

  /// Monotonic nanoseconds since an arbitrary epoch (process-stable).
  [[nodiscard]] static std::uint64_t now_ns() noexcept {
    const auto since_epoch = std::chrono::steady_clock::now().time_since_epoch();
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(since_epoch).count());
  }

  void reset() noexcept { start_ = now_ns(); }

  [[nodiscard]] std::uint64_t elapsed_ns() const noexcept { return now_ns() - start_; }
  [[nodiscard]] std::uint64_t elapsed_us() const noexcept { return elapsed_ns() / 1000; }
  [[nodiscard]] double elapsed_ms() const noexcept {
    return static_cast<double>(elapsed_ns()) / 1e6;
  }
  [[nodiscard]] double elapsed_seconds() const noexcept {
    return static_cast<double>(elapsed_ns()) / 1e9;
  }

 private:
  std::uint64_t start_;
};

}  // namespace tzgeo::obs
