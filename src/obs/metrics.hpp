// Metrics registry: lock-free counters, gauges, and fixed-bucket
// latency histograms for the pipeline hot paths.
//
// Design constraints, in order:
//   1. A hot-path update must be one relaxed atomic operation on a
//      pre-registered slot — no name lookup, no lock, no allocation.
//      Registration (slow, mutex-guarded) returns a small MetricId; the
//      slot array is fixed-capacity so update never races a reallocation.
//   2. The whole layer must compile out.  Building with
//      -DTZGEO_OBS_DISABLED makes kDisabled true and every update/span
//      body an empty inline function — bench/obs_overhead.cpp keeps the
//      instrumented build honest against that floor.
//   3. Snapshots are safe from any thread at any time: values are read
//      with relaxed loads, so a snapshot is a consistent-enough view for
//      monitoring (not a linearizable cut — fine for dashboards).
//
// Histograms use fixed power-of-two buckets (upper bounds 1, 2, 4, ...
// 2^14, +Inf in the recorded unit — microseconds by convention, suffix
// the metric name `_us`).  Fixed bounds keep observe() branch-free
// (std::bit_width) and make dumps from different runs comparable.
//
// Metric naming scheme: tzgeo_<layer>_<name>[_total|_us|...], e.g.
// tzgeo_ingest_rows_ok_total, tzgeo_placement_batch_us.  The registry
// dumps Prometheus text exposition and JSON (via util::json).
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "util/json.hpp"

namespace tzgeo::obs {

#if defined(TZGEO_OBS_DISABLED)
inline constexpr bool kDisabled = true;
#else
inline constexpr bool kDisabled = false;
#endif

/// Handle to a registered metric; an index into the registry's slot array.
using MetricId = std::uint32_t;

/// Returned for registrations past capacity (updates on it are dropped).
inline constexpr MetricId kInvalidMetric = 0xFFFFFFFFu;

enum class MetricKind : std::uint8_t { kCounter, kGauge, kHistogram };

/// One decoded histogram state (snapshot-time view, not live).
struct HistogramSnapshot {
  std::vector<std::uint64_t> buckets;  ///< per-bucket counts (not cumulative)
  std::uint64_t sum = 0;
  std::uint64_t count = 0;
};

/// One metric in a snapshot.
struct MetricSample {
  std::string name;
  std::string help;
  MetricKind kind = MetricKind::kCounter;
  std::uint64_t value = 0;   ///< counter value / gauge bits (int64)
  HistogramSnapshot histogram;  ///< kind == kHistogram only
};

class MetricsRegistry {
 public:
  /// Fixed capacity: updates never race slot-array growth.
  static constexpr std::size_t kMaxMetrics = 512;
  /// Power-of-two bucket count: upper bounds 2^0..2^(kBuckets-2), last +Inf.
  static constexpr std::size_t kHistogramBuckets = 16;

  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Registers (or finds, by exact name) a metric.  Thread-safe, slow
  /// path; call once at startup and keep the id.  Returns kInvalidMetric
  /// when capacity is exhausted or the name exists with another kind.
  MetricId counter(std::string_view name, std::string_view help = {});
  MetricId gauge(std::string_view name, std::string_view help = {});
  MetricId histogram(std::string_view name, std::string_view help = {});

  /// Bucket index a histogram value lands in: smallest i with
  /// value <= 2^i, clamped to the +Inf bucket.  Exposed for tests.
  [[nodiscard]] static constexpr std::size_t bucket_of(std::uint64_t value) noexcept {
    const std::size_t bit =
        value <= 1 ? 0 : static_cast<std::size_t>(std::bit_width(value - 1));
    return bit < kHistogramBuckets - 1 ? bit : kHistogramBuckets - 1;
  }

  /// Upper bound of bucket `i` (the +Inf bucket returns UINT64_MAX).
  [[nodiscard]] static constexpr std::uint64_t bucket_bound(std::size_t i) noexcept {
    return i + 1 < kHistogramBuckets ? (std::uint64_t{1} << i)
                                     : ~std::uint64_t{0};
  }

  // --- hot path -----------------------------------------------------------

  /// Counter increment: one relaxed fetch_add.
  void add(MetricId id, std::uint64_t delta = 1) noexcept {  // tzgeo: hot
    if constexpr (kDisabled) {
      (void)id;
      (void)delta;
    } else {
      if (id >= kMaxMetrics || !runtime_enabled_.load(std::memory_order_relaxed)) return;
      slots_[id].value.fetch_add(delta, std::memory_order_relaxed);
    }
  }

  /// Gauge store: one relaxed store.
  void set(MetricId id, std::int64_t value) noexcept {  // tzgeo: hot
    if constexpr (kDisabled) {
      (void)id;
      (void)value;
    } else {
      if (id >= kMaxMetrics || !runtime_enabled_.load(std::memory_order_relaxed)) return;
      slots_[id].value.store(static_cast<std::uint64_t>(value), std::memory_order_relaxed);
    }
  }

  /// Histogram observation: three relaxed RMWs (bucket, sum, count).
  void observe(MetricId id, std::uint64_t value) noexcept {  // tzgeo: hot
    if constexpr (kDisabled) {
      (void)id;
      (void)value;
    } else {
      if (id >= kMaxMetrics || !runtime_enabled_.load(std::memory_order_relaxed)) return;
      Slot& slot = slots_[id];
      if (slot.hist == nullptr) return;
      (*slot.hist)[bucket_of(value)].fetch_add(1, std::memory_order_relaxed);
      slot.hist_sum.fetch_add(value, std::memory_order_relaxed);
      slot.hist_count.fetch_add(1, std::memory_order_relaxed);
    }
  }

  // --- reads --------------------------------------------------------------

  /// Id of a registered metric by exact name, or kInvalidMetric.
  [[nodiscard]] MetricId find(std::string_view name) const;

  [[nodiscard]] std::uint64_t counter_value(MetricId id) const noexcept;
  [[nodiscard]] std::int64_t gauge_value(MetricId id) const noexcept;
  [[nodiscard]] HistogramSnapshot histogram_value(MetricId id) const;

  /// Kind of a registered metric (kCounter for out-of-range ids).  Kind
  /// is immutable after registration, so no lock is needed once the id
  /// is published via `registered_`.
  [[nodiscard]] MetricKind kind_of(MetricId id) const noexcept {
    if (id >= registered_.load(std::memory_order_acquire)) return MetricKind::kCounter;
    return slots_[id].kind;
  }

  /// Name copy of a registered metric; empty for out-of-range ids.
  [[nodiscard]] std::string name_of(MetricId id) const;

  /// Non-allocating histogram read for periodic samplers: writes
  /// kHistogramBuckets counts into `buckets` (must have room), then sum
  /// and count.  Returns false (and writes nothing) for non-histograms.
  bool read_histogram(MetricId id, std::uint64_t* buckets, std::uint64_t& sum,
                      std::uint64_t& count) const noexcept;  // tzgeo: hot

  /// All registered metrics with their current values.
  [[nodiscard]] std::vector<MetricSample> snapshot() const;

  /// Prometheus text exposition format (counters/gauges/histograms).
  [[nodiscard]] std::string prometheus() const;

  /// JSON dump: {"metrics": [{"name", "kind", "value" | buckets...}]}.
  [[nodiscard]] util::JsonValue to_json() const;

  /// Zeroes every value (registrations are kept).  For tests and benches.
  void reset() noexcept;

  /// Runtime kill switch (the compile-out is kDisabled).  Updates become
  /// a relaxed load + branch; used by bench/obs_overhead.cpp to compare
  /// instrumented vs. quiesced hot paths inside one binary.
  void set_runtime_enabled(bool enabled) noexcept {
    runtime_enabled_.store(enabled, std::memory_order_relaxed);
  }
  [[nodiscard]] bool runtime_enabled() const noexcept {
    return runtime_enabled_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] std::size_t size() const noexcept {
    return registered_.load(std::memory_order_acquire);
  }

  /// The process-wide registry the pipeline instruments into.
  static MetricsRegistry& global();

 private:
  struct Slot {
    std::string name;
    std::string help;
    MetricKind kind = MetricKind::kCounter;
    std::atomic<std::uint64_t> value{0};
    std::unique_ptr<std::array<std::atomic<std::uint64_t>, kHistogramBuckets>> hist;
    std::atomic<std::uint64_t> hist_sum{0};
    std::atomic<std::uint64_t> hist_count{0};
  };

  MetricId register_slot(std::string_view name, std::string_view help, MetricKind kind);

  mutable std::mutex mutex_;               ///< guards registration metadata
  std::atomic<std::size_t> registered_{0};  ///< published slot count
  std::atomic<bool> runtime_enabled_{true};
  std::array<Slot, kMaxMetrics> slots_;
};

/// Approximate quantile from fixed-bucket counts (upper-bound of the
/// bucket containing the q-th observation); 0 when empty.
[[nodiscard]] std::uint64_t approx_quantile(const HistogramSnapshot& histogram, double q) noexcept;

// --- Prometheus text-exposition helpers ------------------------------------
// Shared by MetricsRegistry::prometheus() and the time-series recorder's
// timestamped export; exposed so tests can pin the escaping rules.

/// Escapes a HELP line payload: backslash and newline get backslash-escaped.
[[nodiscard]] std::string prometheus_escape_help(std::string_view text);

/// Escapes a label value: backslash, double-quote, and newline.
[[nodiscard]] std::string prometheus_escape_label_value(std::string_view text);

/// Maps arbitrary text to a valid metric name: [a-zA-Z_:][a-zA-Z0-9_:]*,
/// replacing every invalid byte with '_' (empty input becomes "_").
[[nodiscard]] std::string prometheus_sanitize_name(std::string_view name);

}  // namespace tzgeo::obs
