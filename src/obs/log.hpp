// Structured, leveled logging with an allocation-free hot path.
//
// Library code must never write raw diagnostics to stderr (the
// stderr-log lint rule enforces this): a crawler that prints a line per
// transient fault is unusable at campaign scale, and unstructured text
// cannot feed dashboards.  obs::Log is the sanctioned sink.  Design
// constraints mirror MetricsRegistry:
//
//   1. Sites are registered once (slow, mutex-guarded) and return a
//      small SiteId; the hot path `write()` touches only pre-sized
//      buffers — fixed-capacity ring of fixed-size records, stack
//      scratch for field formatting — so steady state never allocates.
//   2. Per-site rate limiting: each site carries a max-per-second
//      budget enforced with one packed CAS (second << 32 | count), so a
//      retry storm costs a relaxed RMW per suppressed line, not I/O.
//   3. Records land in a ring (newest overwrite oldest; overwrites are
//      counted and surfaced via PipelineMetrics) and optionally stream
//      to a JSONL file sink.  Message/field overflow truncates, never
//      spills.
//   4. The whole facility compiles out under TZGEO_OBS_DISABLED, like
//      metrics and traces.
//
// Levels are attached to *sites*, not calls: a site is one diagnostic
// event class ("forum.poll_failed"), registered with its severity and
// budget where it is used.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <initializer_list>
#include <mutex>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

#include "obs/metrics.hpp"
#include "util/json.hpp"

namespace tzgeo::obs {

enum class LogLevel : std::uint8_t { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

[[nodiscard]] const char* log_level_name(LogLevel level) noexcept;

/// One typed key/value attachment to a log record.  Built by the
/// `field()` helpers; keys and string values are borrowed for the
/// duration of the `write()` call only.
struct LogField {
  enum class Kind : std::uint8_t { kInt, kUint, kDouble, kBool, kString };
  std::string_view key;
  Kind kind = Kind::kInt;
  std::int64_t i = 0;
  std::uint64_t u = 0;
  double d = 0.0;
  bool b = false;
  std::string_view s;
};

/// Builds a LogField from any scalar or string-ish value.  Takes the
/// value by reference so a std::string argument stays alive at the call
/// site for the full write() expression.
template <typename T>
[[nodiscard]] LogField field(std::string_view key, const T& value) noexcept {
  LogField f;
  f.key = key;
  if constexpr (std::is_same_v<T, bool>) {
    f.kind = LogField::Kind::kBool;
    f.b = value;
  } else if constexpr (std::is_convertible_v<const T&, std::string_view>) {
    f.kind = LogField::Kind::kString;
    f.s = std::string_view{value};
  } else if constexpr (std::is_floating_point_v<T>) {
    f.kind = LogField::Kind::kDouble;
    f.d = static_cast<double>(value);
  } else if constexpr (std::is_unsigned_v<T>) {
    f.kind = LogField::Kind::kUint;
    f.u = static_cast<std::uint64_t>(value);
  } else {
    static_assert(std::is_integral_v<T>, "unsupported log field type");
    f.kind = LogField::Kind::kInt;
    f.i = static_cast<std::int64_t>(value);
  }
  return f;
}

class Log {
 public:
  using SiteId = std::uint32_t;
  static constexpr SiteId kInvalidSite = 0xFFFFFFFFu;
  /// Fixed capacities: the hot path never grows anything.
  static constexpr std::size_t kMaxSites = 128;
  static constexpr std::size_t kSiteNameCapacity = 48;
  static constexpr std::size_t kMessageCapacity = 192;
  static constexpr std::size_t kFieldsCapacity = 256;
  static constexpr std::size_t kDefaultCapacity = 1024;
  static constexpr std::uint32_t kDefaultPerSecond = 32;

  explicit Log(std::size_t capacity = kDefaultCapacity);
  ~Log();
  Log(const Log&) = delete;
  Log& operator=(const Log&) = delete;

  /// Registers (or finds, by exact name) a diagnostic site.  Slow path;
  /// call once and keep the id.  `max_per_second` == 0 disables the
  /// rate limit.  Returns kInvalidSite past capacity.
  SiteId site(std::string_view name, LogLevel level,
              std::uint32_t max_per_second = kDefaultPerSecond);

  // --- hot path -----------------------------------------------------------

  /// Emits one record: level gate (relaxed load), per-site rate limit
  /// (one CAS), field formatting into stack scratch, one ring slot copy
  /// under the ring mutex.  Message and fields truncate at the record
  /// capacities.  Timestamped with Stopwatch::now_ns().
  void write(SiteId id, std::string_view message,
             std::initializer_list<LogField> fields = {}) noexcept;

  /// Same with an explicit timestamp — deterministic tests drive the
  /// rate-limiter clock through this.
  void write_at(std::uint64_t t_ns, SiteId id, std::string_view message,
                std::initializer_list<LogField> fields = {}) noexcept;

  /// True when a write on this site would pass the level gate — lets
  /// callers skip expensive field computation for suppressed sites.
  [[nodiscard]] bool enabled(SiteId id) const noexcept;

  // --- configuration ------------------------------------------------------

  /// Records below this level are suppressed (counted).  Default kInfo.
  void set_min_level(LogLevel level) noexcept {
    min_level_.store(static_cast<std::uint8_t>(level), std::memory_order_relaxed);
  }
  [[nodiscard]] LogLevel min_level() const noexcept {
    return static_cast<LogLevel>(min_level_.load(std::memory_order_relaxed));
  }

  /// Runtime kill switch, like MetricsRegistry::set_runtime_enabled.
  void set_runtime_enabled(bool enabled) noexcept {
    runtime_enabled_.store(enabled, std::memory_order_relaxed);
  }

  /// Opens (append) a JSONL streaming sink; every emitted record is
  /// also written there as one line.  Returns false if the file cannot
  /// be opened.  Closes any previous sink.
  bool open_jsonl_sink(const std::string& path);
  void close_sink();

  // --- reads --------------------------------------------------------------

  struct RecordView {
    std::uint64_t seq = 0;
    std::uint64_t t_ns = 0;
    LogLevel level = LogLevel::kInfo;
    std::uint32_t thread = 0;
    bool truncated = false;
    std::string site;
    std::string message;
    std::string fields_json;  ///< object body text, no braces
  };

  /// Retained records, oldest first.
  [[nodiscard]] std::vector<RecordView> snapshot() const;
  /// Retained records as JSONL text (same shape as the streaming sink).
  [[nodiscard]] std::string to_jsonl() const;
  /// {"records": [...]} for embedding in dumps.
  [[nodiscard]] util::JsonValue to_json() const;

  [[nodiscard]] std::uint64_t emitted() const noexcept {
    return emitted_.load(std::memory_order_relaxed);
  }
  /// Ring overwrites (oldest record lost).
  [[nodiscard]] std::uint64_t dropped() const noexcept {
    return dropped_.load(std::memory_order_relaxed);
  }
  /// Writes dropped by the level gate or kill switch.
  [[nodiscard]] std::uint64_t suppressed_level() const noexcept {
    return suppressed_level_.load(std::memory_order_relaxed);
  }
  /// Writes dropped by a per-site rate limit.
  [[nodiscard]] std::uint64_t suppressed_rate() const noexcept {
    return suppressed_rate_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] std::size_t retained() const;

  /// Drops retained records and zeroes counters (sites are kept).
  void clear();

  /// The process-wide log the pipeline writes to.
  static Log& global();

 private:
  struct Site {
    char name[kSiteNameCapacity] = {};
    std::uint8_t name_len = 0;
    LogLevel level = LogLevel::kInfo;
    std::uint32_t max_per_second = 0;
    std::atomic<std::uint64_t> window{0};  ///< (second << 32) | count
  };

  struct Record {
    std::uint64_t seq = 0;
    std::uint64_t t_ns = 0;
    std::uint32_t site = 0;
    std::uint32_t thread = 0;
    LogLevel level = LogLevel::kInfo;
    bool truncated = false;
    std::uint16_t msg_len = 0;
    std::uint16_t fields_len = 0;
    char msg[kMessageCapacity] = {};
    char fields[kFieldsCapacity] = {};
  };

  [[nodiscard]] bool rate_limit_allows(Site& site, std::uint64_t t_ns) noexcept;
  void count_suppressed() noexcept;

  std::size_t capacity_ = 0;

  mutable std::mutex site_mutex_;  ///< guards site registration metadata
  std::atomic<std::size_t> site_count_{0};
  std::array<Site, kMaxSites> sites_;

  mutable std::mutex ring_mutex_;  ///< guards the ring and the sink
  std::vector<Record> ring_;       ///< pre-sized to capacity_ at construction
  std::size_t next_ = 0;
  std::size_t retained_ = 0;
  std::uint64_t seq_ = 0;
  void* sink_ = nullptr;  ///< FILE*, kept opaque to keep <cstdio> out of the header

  std::atomic<std::uint8_t> min_level_{static_cast<std::uint8_t>(LogLevel::kInfo)};
  std::atomic<bool> runtime_enabled_{true};
  std::atomic<std::uint64_t> emitted_{0};
  std::atomic<std::uint64_t> dropped_{0};
  std::atomic<std::uint64_t> suppressed_level_{0};
  std::atomic<std::uint64_t> suppressed_rate_{0};
};

}  // namespace tzgeo::obs
