#include "obs/metrics.hpp"

#include <algorithm>

namespace tzgeo::obs {

namespace {

[[nodiscard]] const char* kind_name(MetricKind kind) noexcept {
  switch (kind) {
    case MetricKind::kCounter:
      return "counter";
    case MetricKind::kGauge:
      return "gauge";
    case MetricKind::kHistogram:
      return "histogram";
  }
  return "unknown";  // unreachable
}

}  // namespace

MetricId MetricsRegistry::register_slot(std::string_view name, std::string_view help,
                                        MetricKind kind) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const std::size_t count = registered_.load(std::memory_order_relaxed);
  for (std::size_t i = 0; i < count; ++i) {
    if (slots_[i].name == name) {
      return slots_[i].kind == kind ? static_cast<MetricId>(i) : kInvalidMetric;
    }
  }
  if (count >= kMaxMetrics) return kInvalidMetric;
  Slot& slot = slots_[count];
  slot.name.assign(name);
  slot.help.assign(help);
  slot.kind = kind;
  if (kind == MetricKind::kHistogram) {
    slot.hist = std::make_unique<std::array<std::atomic<std::uint64_t>, kHistogramBuckets>>();
    for (auto& bucket : *slot.hist) bucket.store(0, std::memory_order_relaxed);
  }
  registered_.store(count + 1, std::memory_order_release);
  return static_cast<MetricId>(count);
}

MetricId MetricsRegistry::counter(std::string_view name, std::string_view help) {
  return register_slot(name, help, MetricKind::kCounter);
}

MetricId MetricsRegistry::gauge(std::string_view name, std::string_view help) {
  return register_slot(name, help, MetricKind::kGauge);
}

MetricId MetricsRegistry::histogram(std::string_view name, std::string_view help) {
  return register_slot(name, help, MetricKind::kHistogram);
}

MetricId MetricsRegistry::find(std::string_view name) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const std::size_t count = registered_.load(std::memory_order_relaxed);
  for (std::size_t i = 0; i < count; ++i) {
    if (slots_[i].name == name) return static_cast<MetricId>(i);
  }
  return kInvalidMetric;
}

std::uint64_t MetricsRegistry::counter_value(MetricId id) const noexcept {
  if (id >= registered_.load(std::memory_order_acquire)) return 0;
  return slots_[id].value.load(std::memory_order_relaxed);
}

std::int64_t MetricsRegistry::gauge_value(MetricId id) const noexcept {
  if (id >= registered_.load(std::memory_order_acquire)) return 0;
  return static_cast<std::int64_t>(slots_[id].value.load(std::memory_order_relaxed));
}

HistogramSnapshot MetricsRegistry::histogram_value(MetricId id) const {
  HistogramSnapshot out;
  if (id >= registered_.load(std::memory_order_acquire)) return out;
  const Slot& slot = slots_[id];
  if (slot.hist == nullptr) return out;
  out.buckets.resize(kHistogramBuckets);
  for (std::size_t i = 0; i < kHistogramBuckets; ++i) {
    out.buckets[i] = (*slot.hist)[i].load(std::memory_order_relaxed);
  }
  out.sum = slot.hist_sum.load(std::memory_order_relaxed);
  out.count = slot.hist_count.load(std::memory_order_relaxed);
  return out;
}

std::string MetricsRegistry::name_of(MetricId id) const {
  if (id >= registered_.load(std::memory_order_acquire)) return {};
  const std::lock_guard<std::mutex> lock(mutex_);
  return slots_[id].name;
}

bool MetricsRegistry::read_histogram(MetricId id, std::uint64_t* buckets,
                                     std::uint64_t& sum,
                                     std::uint64_t& count) const noexcept {
  if (id >= registered_.load(std::memory_order_acquire)) return false;
  const Slot& slot = slots_[id];
  if (slot.hist == nullptr) return false;
  for (std::size_t i = 0; i < kHistogramBuckets; ++i) {
    buckets[i] = (*slot.hist)[i].load(std::memory_order_relaxed);
  }
  sum = slot.hist_sum.load(std::memory_order_relaxed);
  count = slot.hist_count.load(std::memory_order_relaxed);
  return true;
}

std::vector<MetricSample> MetricsRegistry::snapshot() const {
  const std::size_t count = registered_.load(std::memory_order_acquire);
  std::vector<MetricSample> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const Slot& slot = slots_[i];
    MetricSample sample;
    {
      // Name/help are immutable after registration; the lock only orders
      // against a concurrent register_slot appending *later* slots.
      const std::lock_guard<std::mutex> lock(mutex_);
      sample.name = slot.name;
      sample.help = slot.help;
      sample.kind = slot.kind;
    }
    if (sample.kind == MetricKind::kHistogram) {
      sample.histogram = histogram_value(static_cast<MetricId>(i));
    } else {
      sample.value = slot.value.load(std::memory_order_relaxed);
    }
    out.push_back(std::move(sample));
  }
  return out;
}

std::string MetricsRegistry::prometheus() const {
  // Built piecewise (no operator+ chains; see the GCC12 -Wrestrict note
  // in trace_to_csv) into one growing buffer.  Names and help strings
  // pass through the exposition-format escapers: registrations normally
  // follow the tzgeo_* scheme, but the scrape must stay parseable even
  // if a caller registers something exotic.
  std::string out;
  for (const MetricSample& sample : snapshot()) {
    const std::string name = prometheus_sanitize_name(sample.name);
    if (!sample.help.empty()) {
      out += "# HELP ";
      out += name;
      out.push_back(' ');
      out += prometheus_escape_help(sample.help);
      out.push_back('\n');
    }
    out += "# TYPE ";
    out += name;
    out.push_back(' ');
    out += kind_name(sample.kind);
    out.push_back('\n');
    switch (sample.kind) {
      case MetricKind::kCounter:
        out += name;
        out.push_back(' ');
        out += std::to_string(sample.value);
        out.push_back('\n');
        break;
      case MetricKind::kGauge:
        out += name;
        out.push_back(' ');
        out += std::to_string(static_cast<std::int64_t>(sample.value));
        out.push_back('\n');
        break;
      case MetricKind::kHistogram: {
        std::uint64_t cumulative = 0;
        for (std::size_t i = 0; i < sample.histogram.buckets.size(); ++i) {
          cumulative += sample.histogram.buckets[i];
          out += name;
          out += "_bucket{le=\"";
          if (i + 1 < sample.histogram.buckets.size()) {
            out += std::to_string(bucket_bound(i));
          } else {
            out += "+Inf";
          }
          out += "\"} ";
          out += std::to_string(cumulative);
          out.push_back('\n');
        }
        out += name;
        out += "_sum ";
        out += std::to_string(sample.histogram.sum);
        out.push_back('\n');
        out += name;
        out += "_count ";
        out += std::to_string(sample.histogram.count);
        out.push_back('\n');
        break;
      }
    }
  }
  return out;
}

util::JsonValue MetricsRegistry::to_json() const {
  util::JsonValue metrics = util::JsonValue::array();
  for (const MetricSample& sample : snapshot()) {
    util::JsonValue entry = util::JsonValue::object();
    entry.set("name", util::JsonValue::string(sample.name));
    entry.set("kind", util::JsonValue::string(kind_name(sample.kind)));
    if (!sample.help.empty()) entry.set("help", util::JsonValue::string(sample.help));
    switch (sample.kind) {
      case MetricKind::kCounter:
        entry.set("value", util::JsonValue::integer(static_cast<std::int64_t>(sample.value)));
        break;
      case MetricKind::kGauge:
        entry.set("value", util::JsonValue::integer(static_cast<std::int64_t>(sample.value)));
        break;
      case MetricKind::kHistogram: {
        util::JsonValue buckets = util::JsonValue::array();
        for (const std::uint64_t count : sample.histogram.buckets) {
          buckets.push(util::JsonValue::integer(static_cast<std::int64_t>(count)));
        }
        entry.set("buckets", std::move(buckets));
        entry.set("sum",
                  util::JsonValue::integer(static_cast<std::int64_t>(sample.histogram.sum)));
        entry.set("count",
                  util::JsonValue::integer(static_cast<std::int64_t>(sample.histogram.count)));
        break;
      }
    }
    metrics.push(std::move(entry));
  }
  util::JsonValue root = util::JsonValue::object();
  root.set("metrics", std::move(metrics));
  return root;
}

void MetricsRegistry::reset() noexcept {
  const std::size_t count = registered_.load(std::memory_order_acquire);
  for (std::size_t i = 0; i < count; ++i) {
    Slot& slot = slots_[i];
    slot.value.store(0, std::memory_order_relaxed);
    if (slot.hist != nullptr) {
      for (auto& bucket : *slot.hist) bucket.store(0, std::memory_order_relaxed);
      slot.hist_sum.store(0, std::memory_order_relaxed);
      slot.hist_count.store(0, std::memory_order_relaxed);
    }
  }
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry registry;
  return registry;
}

std::string prometheus_escape_help(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out.push_back(c);
    }
  }
  return out;
}

std::string prometheus_escape_label_value(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '"') {
      out += "\\\"";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out.push_back(c);
    }
  }
  return out;
}

std::string prometheus_sanitize_name(std::string_view name) {
  if (name.empty()) return "_";
  std::string out;
  out.reserve(name.size());
  for (std::size_t i = 0; i < name.size(); ++i) {
    const char c = name[i];
    const bool alpha = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z');
    const bool digit = c >= '0' && c <= '9';
    const bool ok = alpha || c == '_' || c == ':' || (digit && i != 0);
    out.push_back(ok ? c : '_');
  }
  return out;
}

std::uint64_t approx_quantile(const HistogramSnapshot& histogram, double q) noexcept {
  if (histogram.count == 0 || histogram.buckets.empty()) return 0;
  const double clamped = std::clamp(q, 0.0, 1.0);
  const auto rank = static_cast<std::uint64_t>(
      clamped * static_cast<double>(histogram.count - 1));
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < histogram.buckets.size(); ++i) {
    seen += histogram.buckets[i];
    if (seen > rank) return MetricsRegistry::bucket_bound(i);
  }
  return MetricsRegistry::bucket_bound(histogram.buckets.size() - 1);
}

}  // namespace tzgeo::obs
