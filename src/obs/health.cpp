#include "obs/health.hpp"

#include <algorithm>
#include <cstring>

namespace tzgeo::obs {

const char* health_state_name(HealthState state) noexcept {
  switch (state) {
    case HealthState::kStarting: return "starting";
    case HealthState::kIdle: return "idle";
    case HealthState::kOk: return "ok";
    case HealthState::kStalled: return "stalled";
    case HealthState::kFailed: return "failed";
  }
  return "unknown";  // unreachable
}

Health::ComponentId Health::component(std::string_view name,
                                      std::uint64_t stall_after_ns) {
  if constexpr (kDisabled) return kInvalidComponent;
  const std::lock_guard<std::mutex> lock(mutex_);
  const std::size_t count = count_.load(std::memory_order_relaxed);
  for (std::size_t i = 0; i < count; ++i) {
    const Component& c = components_[i];
    if (std::string_view{c.name, c.name_len} == name) return static_cast<ComponentId>(i);
  }
  if (count >= kMaxComponents) return kInvalidComponent;
  Component& c = components_[count];
  const std::size_t n = std::min(name.size(), kNameCapacity - 1);
  std::memcpy(c.name, name.data(), n);
  c.name[n] = '\0';
  c.name_len = static_cast<std::uint8_t>(n);
  c.stall_after_ns = stall_after_ns == 0 ? kDefaultStallNs : stall_after_ns;
  c.last_beat_ns.store(0, std::memory_order_relaxed);
  c.beats.store(0, std::memory_order_relaxed);
  c.active.store(0, std::memory_order_relaxed);
  c.failed.store(false, std::memory_order_relaxed);
  count_.store(count + 1, std::memory_order_release);
  return static_cast<ComponentId>(count);
}

void Health::begin_work(ComponentId id) noexcept {
  if constexpr (kDisabled) {
    (void)id;
  } else {
    if (id >= count_.load(std::memory_order_acquire)) return;
    Component& c = components_[id];
    c.active.fetch_add(1, std::memory_order_relaxed);
    c.last_beat_ns.store(Stopwatch::now_ns(), std::memory_order_relaxed);
  }
}

void Health::end_work(ComponentId id) noexcept {
  if constexpr (kDisabled) {
    (void)id;
  } else {
    if (id >= count_.load(std::memory_order_acquire)) return;
    components_[id].active.fetch_sub(1, std::memory_order_relaxed);
  }
}

void Health::mark_failed(ComponentId id, std::string_view reason) {
  if constexpr (kDisabled) {
    (void)id;
    (void)reason;
  } else {
    if (id >= count_.load(std::memory_order_acquire)) return;
    const std::lock_guard<std::mutex> lock(mutex_);
    Component& c = components_[id];
    const std::size_t n = std::min(reason.size(), kReasonCapacity - 1);
    std::memcpy(c.reason, reason.data(), n);
    c.reason[n] = '\0';
    c.reason_len = static_cast<std::uint8_t>(n);
    c.failed.store(true, std::memory_order_release);
  }
}

void Health::clear_failed(ComponentId id) {
  if constexpr (kDisabled) {
    (void)id;
  } else {
    if (id >= count_.load(std::memory_order_acquire)) return;
    const std::lock_guard<std::mutex> lock(mutex_);
    Component& c = components_[id];
    c.reason_len = 0;
    c.failed.store(false, std::memory_order_release);
  }
}

HealthState Health::judge(const Component& c, std::uint64_t now_ns,
                          std::uint64_t last_beat, std::uint64_t beats,
                          std::uint32_t active) noexcept {
  if (active == 0) return beats == 0 ? HealthState::kStarting : HealthState::kIdle;
  if (beats == 0 && last_beat == 0) return HealthState::kStarting;
  const std::uint64_t age = now_ns > last_beat ? now_ns - last_beat : 0;
  return age > c.stall_after_ns ? HealthState::kStalled : HealthState::kOk;
}

Health::Report Health::report(std::uint64_t now_ns) const {
  Report out;
  if constexpr (kDisabled) return out;
  const std::size_t count = count_.load(std::memory_order_acquire);
  const std::lock_guard<std::mutex> lock(mutex_);
  for (std::size_t i = 0; i < count; ++i) {
    const Component& c = components_[i];
    ComponentReport entry;
    entry.name.assign(c.name, c.name_len);
    entry.beats = c.beats.load(std::memory_order_relaxed);
    entry.active = c.active.load(std::memory_order_relaxed);
    entry.stall_after_ns = c.stall_after_ns;
    const std::uint64_t last = c.last_beat_ns.load(std::memory_order_relaxed);
    entry.last_beat_age_ns = (last == 0 || now_ns <= last) ? 0 : now_ns - last;
    if (c.failed.load(std::memory_order_acquire)) {
      entry.state = HealthState::kFailed;
      entry.reason.assign(c.reason, c.reason_len);
    } else {
      entry.state = judge(c, now_ns, last, entry.beats, entry.active);
    }
    // Overall is the worst verdict; starting/idle/ok all count healthy.
    if (entry.state == HealthState::kFailed) {
      out.overall = HealthState::kFailed;
    } else if (entry.state == HealthState::kStalled &&
               out.overall != HealthState::kFailed) {
      out.overall = HealthState::kStalled;
    }
    out.components.push_back(std::move(entry));
  }
  return out;
}

bool Health::healthy(std::uint64_t now_ns) const {
  if constexpr (kDisabled) return true;
  const Report r = report(now_ns);
  return r.overall != HealthState::kStalled && r.overall != HealthState::kFailed;
}

util::JsonValue Health::to_json(std::uint64_t now_ns) const {
  const Report r = report(now_ns);
  util::JsonValue components = util::JsonValue::array();
  for (const ComponentReport& c : r.components) {
    util::JsonValue entry = util::JsonValue::object();
    entry.set("name", util::JsonValue::string(c.name));
    entry.set("state", util::JsonValue::string(health_state_name(c.state)));
    entry.set("beats", util::JsonValue::integer(static_cast<std::int64_t>(c.beats)));
    entry.set("active", util::JsonValue::integer(c.active));
    entry.set("last_beat_age_ms",
              util::JsonValue::integer(
                  static_cast<std::int64_t>(c.last_beat_age_ns / 1'000'000ull)));
    entry.set("stall_after_ms",
              util::JsonValue::integer(
                  static_cast<std::int64_t>(c.stall_after_ns / 1'000'000ull)));
    if (!c.reason.empty()) entry.set("reason", util::JsonValue::string(c.reason));
    components.push(std::move(entry));
  }
  util::JsonValue root = util::JsonValue::object();
  root.set("status", util::JsonValue::string(health_state_name(r.overall)));
  root.set("components", std::move(components));
  return root;
}

void Health::reset() {
  if constexpr (kDisabled) return;
  const std::lock_guard<std::mutex> lock(mutex_);
  count_.store(0, std::memory_order_release);
}

Health& Health::global() {
  static Health health;
  return health;
}

}  // namespace tzgeo::obs
