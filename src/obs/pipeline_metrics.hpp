// Pre-registered metric handles for every pipeline layer.
//
// The hot paths must not pay a name lookup per update, so every metric
// the pipeline touches is registered once — on first use, into
// MetricsRegistry::global() — and the resulting ids are kept in this
// struct.  Call PipelineMetrics::get() (cheap after the first call) and
// update through the ids.
//
// Naming scheme: tzgeo_<layer>_<name>, `_total` suffix for counters,
// `_us`/`_ms` for histograms in that unit, bare names for gauges.
// DESIGN.md §10 documents the full inventory.
#pragma once

#include <array>

#include "util/constants.hpp"
#include "obs/metrics.hpp"

namespace tzgeo::obs {

struct PipelineMetrics {
  // ingest
  MetricId ingest_rows_ok = kInvalidMetric;
  MetricId ingest_rows_rejected = kInvalidMetric;
  MetricId ingest_bytes = kInvalidMetric;
  MetricId ingest_chunks = kInvalidMetric;
  MetricId ingest_chunk_parse_us = kInvalidMetric;
  MetricId ingest_escaped_fixups = kInvalidMetric;
  MetricId ingest_handle_load_factor_pct = kInvalidMetric;

  // placement
  MetricId placement_batches = kInvalidMetric;
  MetricId placement_users = kInvalidMetric;
  MetricId placement_batch_us = kInvalidMetric;
  MetricId placement_zones_pruned = kInvalidMetric;
  MetricId placement_zones_evaluated = kInvalidMetric;
  std::array<MetricId, kZoneCount> placement_zone{};  ///< per-zone placements

  // placement, SoA/SIMD path
  MetricId placement_simd_lanes = kInvalidMetric;  ///< lane-slots processed
  MetricId placement_zones_pruned_vectorized = kInvalidMetric;
  MetricId placement_zones_evaluated_vectorized = kInvalidMetric;
  MetricId placement_shards = kInvalidMetric;        ///< SoA shard batches run
  MetricId placement_transpose_us = kInvalidMetric;  ///< SoA build wall time
  MetricId placement_soa_cache_hits = kInvalidMetric;
  MetricId placement_soa_cache_misses = kInvalidMetric;
  /// Batches served per dispatch path, indexed by core::simd::Path.
  std::array<MetricId, 4> placement_path_batches{};

  // incremental geolocator
  MetricId incremental_observations = kInvalidMetric;
  MetricId incremental_snapshots = kInvalidMetric;
  MetricId incremental_snapshot_us = kInvalidMetric;
  MetricId incremental_refreshes = kInvalidMetric;
  MetricId incremental_compaction_backlog = kInvalidMetric;

  // forum crawler / monitor
  MetricId forum_pages_fetched = kInvalidMetric;
  MetricId forum_parse_failures = kInvalidMetric;
  MetricId forum_polls = kInvalidMetric;
  MetricId forum_polls_failed = kInvalidMetric;
  MetricId forum_polls_partial = kInvalidMetric;
  MetricId forum_poll_recoveries = kInvalidMetric;
  MetricId forum_poll_us = kInvalidMetric;
  MetricId forum_threads_quarantined = kInvalidMetric;
  MetricId forum_checkpoint_writes = kInvalidMetric;
  MetricId forum_checkpoint_resumes = kInvalidMetric;
  MetricId forum_checkpoint_write_us = kInvalidMetric;

  // forum fleet scheduler
  MetricId fleet_forums_active = kInvalidMetric;       ///< gauge
  MetricId fleet_forums_quarantined = kInvalidMetric;  ///< gauge
  MetricId fleet_forums_parked = kInvalidMetric;       ///< gauge
  MetricId fleet_rounds = kInvalidMetric;
  MetricId fleet_round_us = kInvalidMetric;
  MetricId fleet_forum_poll_us = kInvalidMetric;  ///< per-forum poll latency
  MetricId fleet_polls_skipped = kInvalidMetric;  ///< quarantine/park skips
  MetricId fleet_checkpoint_writes = kInvalidMetric;
  MetricId fleet_checkpoint_write_us = kInvalidMetric;
  MetricId fleet_checkpoint_resumes = kInvalidMetric;
  MetricId fleet_sub_entries_quarantined = kInvalidMetric;  ///< corrupt on resume

  // tor transport
  MetricId tor_requests = kInvalidMetric;
  MetricId tor_request_failures = kInvalidMetric;
  MetricId tor_retries = kInvalidMetric;
  MetricId tor_circuits_built = kInvalidMetric;
  MetricId tor_circuit_build_ms = kInvalidMetric;
  MetricId tor_rate_limit_waits = kInvalidMetric;

  // fault injection (chaos harness)
  MetricId fault_injections = kInvalidMetric;

  // observability self-metrics: losses inside the obs layer itself must
  // be visible, or a saturated ring reads as a quiet system.
  MetricId trace_spans_dropped = kInvalidMetric;    ///< global ring overwrites
  MetricId log_records_dropped = kInvalidMetric;    ///< log ring overwrites
  MetricId log_records_suppressed = kInvalidMetric; ///< level + rate-limit drops

  /// The shared instance, registered on MetricsRegistry::global() the
  /// first time any instrumented path runs.  Thread-safe (magic static).
  static const PipelineMetrics& get();
};

}  // namespace tzgeo::obs
