#include "obs/pipeline_metrics.hpp"

#include <string>

namespace tzgeo::obs {

namespace {

[[nodiscard]] PipelineMetrics register_all() {
  MetricsRegistry& reg = MetricsRegistry::global();
  PipelineMetrics m;

  m.ingest_rows_ok = reg.counter("tzgeo_ingest_rows_ok_total", "CSV rows accepted");
  m.ingest_rows_rejected =
      reg.counter("tzgeo_ingest_rows_rejected_total", "malformed author/timestamp rows");
  m.ingest_bytes = reg.counter("tzgeo_ingest_bytes_total", "CSV bytes scanned");
  m.ingest_chunks = reg.counter("tzgeo_ingest_chunks_total", "parallel parse chunks");
  m.ingest_chunk_parse_us =
      reg.histogram("tzgeo_ingest_chunk_parse_us", "per-chunk parse wall time");
  m.ingest_escaped_fixups =
      reg.counter("tzgeo_ingest_escaped_fixups_total", "escaped CSV fields materialized");
  m.ingest_handle_load_factor_pct = reg.gauge("tzgeo_ingest_handle_load_factor_pct",
                                              "author handle-table load factor, percent");

  m.placement_batches = reg.counter("tzgeo_placement_batches_total", "placement batches");
  m.placement_users = reg.counter("tzgeo_placement_users_total", "user profiles placed");
  m.placement_batch_us = reg.histogram("tzgeo_placement_batch_us", "batch wall time");
  m.placement_zones_pruned = reg.counter("tzgeo_placement_zones_pruned_total",
                                         "zone evaluations skipped by the EMD lower bound");
  m.placement_zones_evaluated = reg.counter("tzgeo_placement_zones_evaluated_total",
                                            "zone evaluations run exactly");
  for (std::size_t bin = 0; bin < m.placement_zone.size(); ++bin) {
    // Same mapping as core::zone_of_bin (obs sits below core in the link
    // order, so it cannot call the throwing helper in tzgeo_core).
    const std::int32_t zone = static_cast<std::int32_t>(bin) + kMinZone;
    std::string name = "tzgeo_placement_zone_utc_";
    name += zone < 0 ? 'm' : 'p';
    name += std::to_string(zone < 0 ? -zone : zone);
    name += "_total";
    m.placement_zone[bin] = reg.counter(name, "users placed in this zone");
  }

  m.placement_simd_lanes = reg.counter("tzgeo_placement_simd_lanes_total",
                                       "SoA lane-slots processed by the group kernels");
  m.placement_zones_pruned_vectorized =
      reg.counter("tzgeo_placement_zones_pruned_vectorized_total",
                  "zone evaluations skipped by the whole-group lower bound (lane units)");
  m.placement_zones_evaluated_vectorized =
      reg.counter("tzgeo_placement_zones_evaluated_vectorized_total",
                  "zone evaluations run by the group kernels (lane units)");
  m.placement_shards = reg.counter("tzgeo_placement_shards_total", "SoA shard batches run");
  m.placement_transpose_us =
      reg.histogram("tzgeo_placement_transpose_us", "SoA transpose build wall time");
  m.placement_soa_cache_hits =
      reg.counter("tzgeo_placement_soa_cache_hits_total", "prepared SoA crowds reused");
  m.placement_soa_cache_misses =
      reg.counter("tzgeo_placement_soa_cache_misses_total", "SoA crowds transposed");
  const char* path_names[] = {"scalar", "avx2", "neon", "avx512"};
  for (std::size_t p = 0; p < m.placement_path_batches.size(); ++p) {
    m.placement_path_batches[p] =
        reg.counter(std::string{"tzgeo_placement_batches_"} + path_names[p] + "_total",
                    "SoA batches served by this dispatch path");
  }

  m.incremental_observations =
      reg.counter("tzgeo_incremental_observations_total", "streamed observations");
  m.incremental_snapshots =
      reg.counter("tzgeo_incremental_snapshots_total", "estimate() snapshots");
  m.incremental_snapshot_us =
      reg.histogram("tzgeo_incremental_snapshot_us", "estimate() wall time");
  m.incremental_refreshes =
      reg.counter("tzgeo_incremental_refreshes_total", "dirty users re-placed");
  m.incremental_compaction_backlog =
      reg.gauge("tzgeo_incremental_compaction_backlog",
                "cells awaiting deferred sort+unique compaction");

  m.forum_pages_fetched = reg.counter("tzgeo_forum_pages_fetched_total", "pages fetched");
  m.forum_parse_failures =
      reg.counter("tzgeo_forum_parse_failures_total", "posts skipped by the parser");
  m.forum_polls = reg.counter("tzgeo_forum_polls_total", "monitor poll sweeps started");
  m.forum_polls_failed =
      reg.counter("tzgeo_forum_polls_failed_total", "monitor poll sweeps aborted");
  m.forum_polls_partial = reg.counter("tzgeo_forum_polls_partial_total",
                                      "poll sweeps committed with threads skipped");
  m.forum_poll_recoveries = reg.counter("tzgeo_forum_poll_recoveries_total",
                                        "successful sweeps right after a failed one");
  m.forum_poll_us = reg.histogram("tzgeo_forum_poll_us", "poll sweep wall time");
  m.forum_threads_quarantined = reg.counter("tzgeo_forum_threads_quarantined_total",
                                            "threads skipped while quarantined");
  m.forum_checkpoint_writes =
      reg.counter("tzgeo_forum_checkpoint_writes_total", "monitor checkpoints persisted");
  m.forum_checkpoint_resumes =
      reg.counter("tzgeo_forum_checkpoint_resumes_total", "campaigns resumed from disk");
  m.forum_checkpoint_write_us =
      reg.histogram("tzgeo_forum_checkpoint_write_us", "checkpoint serialize+fsync time");

  m.fleet_forums_active = reg.gauge("tzgeo_fleet_forums_active", "fleet forums polling");
  m.fleet_forums_quarantined =
      reg.gauge("tzgeo_fleet_forums_quarantined", "fleet forums in cooldown quarantine");
  m.fleet_forums_parked =
      reg.gauge("tzgeo_fleet_forums_parked", "fleet forums parked for the campaign");
  m.fleet_rounds = reg.counter("tzgeo_fleet_rounds_total", "fleet poll rounds completed");
  m.fleet_round_us = reg.histogram("tzgeo_fleet_round_us", "whole-round wall time");
  m.fleet_forum_poll_us =
      reg.histogram("tzgeo_fleet_forum_poll_us", "per-forum poll wall time inside a round");
  m.fleet_polls_skipped = reg.counter("tzgeo_fleet_polls_skipped_total",
                                      "forum polls skipped while quarantined or parked");
  m.fleet_checkpoint_writes =
      reg.counter("tzgeo_fleet_checkpoint_writes_total", "fleet manifest checkpoints persisted");
  m.fleet_checkpoint_write_us =
      reg.histogram("tzgeo_fleet_checkpoint_write_us", "fleet checkpoint serialize+fsync time");
  m.fleet_checkpoint_resumes =
      reg.counter("tzgeo_fleet_checkpoint_resumes_total", "fleet campaigns resumed from disk");
  m.fleet_sub_entries_quarantined =
      reg.counter("tzgeo_fleet_sub_entries_quarantined_total",
                  "corrupt per-forum checkpoint sub-entries parked on resume");

  m.tor_requests = reg.counter("tzgeo_tor_requests_total", "hidden-service round trips");
  m.tor_request_failures =
      reg.counter("tzgeo_tor_request_failures_total", "circuit drops mid-request");
  m.tor_retries = reg.counter("tzgeo_tor_retries_total", "retry attempts after a drop");
  m.tor_circuits_built = reg.counter("tzgeo_tor_circuits_built_total", "rendezvous circuits");
  m.tor_circuit_build_ms =
      reg.histogram("tzgeo_tor_circuit_build_ms", "simulated circuit setup latency");
  m.tor_rate_limit_waits =
      reg.counter("tzgeo_tor_rate_limit_waits_total", "429 backoffs taken");

  m.fault_injections =
      reg.counter("tzgeo_fault_injections_total", "chaos faults fired by the injector");

  m.trace_spans_dropped = reg.counter("tzgeo_obs_trace_spans_dropped_total",
                                      "spans overwritten in the global trace ring");
  m.log_records_dropped = reg.counter("tzgeo_obs_log_records_dropped_total",
                                      "log records overwritten in the global log ring");
  m.log_records_suppressed =
      reg.counter("tzgeo_obs_log_records_suppressed_total",
                  "log writes dropped by level or per-site rate limits");

  return m;
}

}  // namespace

const PipelineMetrics& PipelineMetrics::get() {
  static const PipelineMetrics metrics = register_all();
  return metrics;
}

}  // namespace tzgeo::obs
