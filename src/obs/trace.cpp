#include "obs/trace.hpp"

#include <algorithm>

#include "obs/pipeline_metrics.hpp"
#include "util/json.hpp"

namespace tzgeo::obs {

namespace {

std::atomic<std::uint64_t> g_next_span_id{1};
std::atomic<std::uint32_t> g_next_thread_index{0};

thread_local std::uint64_t t_current_span = 0;

[[nodiscard]] std::uint32_t this_thread_index() noexcept {
  thread_local const std::uint32_t index =
      g_next_thread_index.fetch_add(1, std::memory_order_relaxed);
  return index;
}

}  // namespace

// --- TraceBuffer -----------------------------------------------------------

TraceBuffer::TraceBuffer(std::size_t capacity)
    : capacity_(std::max<std::size_t>(1, capacity)) {
  ring_.reserve(std::min<std::size_t>(capacity_, 1024));
}

void TraceBuffer::record(SpanRecord record) {
  bool overwrote = false;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    ++total_;
    if (ring_.size() < capacity_) {
      ring_.push_back(std::move(record));
    } else {
      ring_[next_] = std::move(record);
      next_ = (next_ + 1) % capacity_;
      overwrote = true;
    }
  }
  // Silent trace loss must show up on dashboards.  Counted outside the
  // ring lock (keeps the lock graph trace-mutex-free) and only for the
  // global buffer — private sinks in tests/benches track their own
  // dropped() and must not pollute the process-wide counter.
  if (overwrote && this == &TraceBuffer::global()) {
    MetricsRegistry::global().add(PipelineMetrics::get().trace_spans_dropped);
  }
}

std::vector<SpanRecord> TraceBuffer::snapshot() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<SpanRecord> out;
  out.reserve(ring_.size());
  // Oldest-first: the wrap cursor marks the oldest retained record.
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(next_ + i) % ring_.size()]);
  }
  return out;
}

std::uint64_t TraceBuffer::recorded() const noexcept {
  const std::lock_guard<std::mutex> lock(mutex_);
  return total_;
}

std::uint64_t TraceBuffer::dropped() const noexcept {
  const std::lock_guard<std::mutex> lock(mutex_);
  return total_ - ring_.size();
}

void TraceBuffer::clear() {
  const std::lock_guard<std::mutex> lock(mutex_);
  ring_.clear();
  next_ = 0;
  total_ = 0;
}

std::string TraceBuffer::to_json() const {
  util::JsonValue spans = util::JsonValue::array();
  for (const SpanRecord& record : snapshot()) {
    util::JsonValue entry = util::JsonValue::object();
    entry.set("id", util::JsonValue::integer(static_cast<std::int64_t>(record.id)));
    entry.set("parent", util::JsonValue::integer(static_cast<std::int64_t>(record.parent)));
    entry.set("thread", util::JsonValue::integer(record.thread));
    entry.set("name", util::JsonValue::string(record.name));
    entry.set("start_ns",
              util::JsonValue::integer(static_cast<std::int64_t>(record.start_ns)));
    entry.set("end_ns", util::JsonValue::integer(static_cast<std::int64_t>(record.end_ns)));
    spans.push(std::move(entry));
  }
  util::JsonValue root = util::JsonValue::object();
  root.set("spans", std::move(spans));
  return root.dump(2);
}

std::string TraceBuffer::to_chrome_trace() const {
  const std::vector<SpanRecord> spans = snapshot();
  std::uint64_t epoch = ~std::uint64_t{0};
  for (const SpanRecord& record : spans) epoch = std::min(epoch, record.start_ns);
  if (spans.empty()) epoch = 0;

  util::JsonValue events = util::JsonValue::array();
  for (const SpanRecord& record : spans) {
    util::JsonValue event = util::JsonValue::object();
    event.set("name", util::JsonValue::string(record.name));
    event.set("cat", util::JsonValue::string("tzgeo"));
    event.set("ph", util::JsonValue::string("X"));
    event.set("ts", util::JsonValue::number(
                        static_cast<double>(record.start_ns - epoch) / 1e3));
    event.set("dur", util::JsonValue::number(
                         static_cast<double>(record.end_ns - record.start_ns) / 1e3));
    event.set("pid", util::JsonValue::integer(1));
    event.set("tid", util::JsonValue::integer(record.thread));
    util::JsonValue args = util::JsonValue::object();
    args.set("span", util::JsonValue::integer(static_cast<std::int64_t>(record.id)));
    args.set("parent", util::JsonValue::integer(static_cast<std::int64_t>(record.parent)));
    event.set("args", std::move(args));
    events.push(std::move(event));
  }
  util::JsonValue root = util::JsonValue::object();
  root.set("traceEvents", std::move(events));
  root.set("displayTimeUnit", util::JsonValue::string("ms"));
  return root.dump(2);
}

TraceBuffer& TraceBuffer::global() {
  static TraceBuffer buffer;
  return buffer;
}

// --- TraceContext ----------------------------------------------------------

std::uint64_t TraceContext::current_span() noexcept {
  if constexpr (kDisabled) return 0;
  return t_current_span;
}

std::uint32_t TraceContext::thread_index() noexcept { return this_thread_index(); }

std::uint64_t TraceContext::next_id() noexcept {
  return g_next_span_id.fetch_add(1, std::memory_order_relaxed);
}

void TraceContext::set_current(std::uint64_t span_id) noexcept { t_current_span = span_id; }

TraceContext::Scope::Scope(std::uint64_t span_id) noexcept {
  if constexpr (kDisabled) {
    (void)span_id;
  } else {
    previous_ = t_current_span;
    t_current_span = span_id;
  }
}

TraceContext::Scope::~Scope() {
  if constexpr (!kDisabled) t_current_span = previous_;
}

// --- ScopedSpan ------------------------------------------------------------

ScopedSpan::ScopedSpan(const char* name, TraceBuffer* sink) noexcept {
  if constexpr (kDisabled) {
    (void)name;
    (void)sink;
  } else {
    name_ = name;
    sink_ = sink != nullptr ? sink : &TraceBuffer::global();
    parent_ = t_current_span;
    id_ = TraceContext::next_id();
    t_current_span = id_;
    start_ns_ = Stopwatch::now_ns();
  }
}

ScopedSpan::~ScopedSpan() {
  if constexpr (kDisabled) return;
  t_current_span = parent_;
  SpanRecord record;
  record.id = id_;
  record.parent = parent_;
  record.start_ns = start_ns_;
  record.end_ns = Stopwatch::now_ns();
  record.thread = this_thread_index();
  record.name.assign(name_);
  sink_->record(std::move(record));
}

}  // namespace tzgeo::obs
