#include "obs/timeseries.hpp"

#include <algorithm>

namespace tzgeo::obs {

TimeSeriesRecorder::TimeSeriesRecorder(std::size_t capacity,
                                       const MetricsRegistry* registry)
    : capacity_(capacity == 0 ? 1 : capacity),
      registry_(registry != nullptr ? registry : &MetricsRegistry::global()) {
  if constexpr (kDisabled) return;
  ring_.resize(capacity_);  // rows; each row's flat vector grows on first fill
}

void TimeSeriesRecorder::rebuild_layout_locked() {
  // Slow path: runs only when the registry grew since the last sample
  // (metric registration happens at startup, so in steady state never).
  const std::size_t count = registry_->size();
  layout_.clear();
  layout_.reserve(count);
  std::size_t offset = 0;
  for (std::size_t i = 0; i < count; ++i) {
    const auto id = static_cast<MetricId>(i);
    Column column;
    column.id = id;
    column.kind = registry_->kind_of(id);
    column.name = registry_->name_of(id);
    column.offset = offset;
    column.width =
        column.kind == MetricKind::kHistogram ? MetricsRegistry::kHistogramBuckets + 2 : 1;
    offset += column.width;
    layout_.push_back(std::move(column));
  }
  row_width_ = offset;
  layout_metrics_ = count;
}

void TimeSeriesRecorder::sample(std::uint64_t t_ns) {  // tzgeo: hot
  if constexpr (kDisabled) {
    (void)t_ns;
  } else {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (registry_->size() != layout_metrics_) rebuild_layout_locked();
    Row& row = ring_[next_];
    next_ = (next_ + 1) % capacity_;
    if (retained_ < capacity_) ++retained_;
    ++taken_;
    row.t_ns = t_ns;
    row.values.resize(row_width_);
    for (const Column& column : layout_) {
      std::uint64_t* out = row.values.data() + column.offset;
      if (column.kind == MetricKind::kHistogram) {
        std::uint64_t sum = 0;
        std::uint64_t count = 0;
        if (!registry_->read_histogram(column.id, out, sum, count)) {
          std::fill(out, out + column.width, std::uint64_t{0});
          continue;
        }
        out[MetricsRegistry::kHistogramBuckets] = sum;
        out[MetricsRegistry::kHistogramBuckets + 1] = count;
      } else {
        *out = registry_->counter_value(column.id);
      }
    }
  }
}

std::size_t TimeSeriesRecorder::samples() const {
  if constexpr (kDisabled) return 0;
  const std::lock_guard<std::mutex> lock(mutex_);
  return retained_;
}

std::uint64_t TimeSeriesRecorder::taken() const {
  if constexpr (kDisabled) return 0;
  const std::lock_guard<std::mutex> lock(mutex_);
  return taken_;
}

const TimeSeriesRecorder::Column* TimeSeriesRecorder::column_locked(
    std::string_view name) const {
  for (const Column& column : layout_) {
    if (column.name == name) return &column;
  }
  return nullptr;
}

const TimeSeriesRecorder::Row& TimeSeriesRecorder::row_locked(
    std::size_t time_index) const {
  // time_index 0 is the oldest retained row.
  const std::size_t start = retained_ < capacity_ ? 0 : next_;
  return ring_[(start + time_index) % capacity_];
}

std::size_t TimeSeriesRecorder::window_start_locked(std::uint64_t window_ns) const {
  if (retained_ == 0) return static_cast<std::size_t>(-1);
  if (window_ns == 0) return 0;
  const std::uint64_t end = row_locked(retained_ - 1).t_ns;
  const std::uint64_t cutoff = end >= window_ns ? end - window_ns : 0;
  // Oldest row still inside [cutoff, end]; rows are time-ordered.
  for (std::size_t i = 0; i < retained_; ++i) {
    if (row_locked(i).t_ns >= cutoff) return i;
  }
  return retained_ - 1;
}

std::size_t TimeSeriesRecorder::covered_start_locked(std::size_t start,
                                                     std::size_t end_offset) const {
  for (std::size_t i = start; i < retained_; ++i) {
    if (end_offset <= row_locked(i).values.size()) return i;
  }
  return retained_;
}

std::int64_t TimeSeriesRecorder::delta(std::string_view name,
                                       std::uint64_t window_ns) const {
  if constexpr (kDisabled) return 0;
  const std::lock_guard<std::mutex> lock(mutex_);
  const Column* column = column_locked(name);
  if (column == nullptr || column->kind == MetricKind::kHistogram || retained_ == 0) {
    return 0;
  }
  const std::size_t start =
      covered_start_locked(window_start_locked(window_ns), column->offset + 1);
  if (start >= retained_) return 0;
  const Row& first = row_locked(start);
  const Row& last = row_locked(retained_ - 1);
  return static_cast<std::int64_t>(last.values[column->offset]) -
         static_cast<std::int64_t>(first.values[column->offset]);
}

double TimeSeriesRecorder::rate_per_second(std::string_view name,
                                           std::uint64_t window_ns) const {
  if constexpr (kDisabled) return 0.0;
  std::int64_t diff = 0;
  std::uint64_t elapsed_ns = 0;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    const Column* column = column_locked(name);
    if (column == nullptr || column->kind == MetricKind::kHistogram || retained_ < 2) {
      return 0.0;
    }
    const std::size_t start =
        covered_start_locked(window_start_locked(window_ns), column->offset + 1);
    if (start + 1 >= retained_) return 0.0;  // need two covering rows for a rate
    const Row& first = row_locked(start);
    const Row& last = row_locked(retained_ - 1);
    diff = static_cast<std::int64_t>(last.values[column->offset]) -
           static_cast<std::int64_t>(first.values[column->offset]);
    elapsed_ns = last.t_ns > first.t_ns ? last.t_ns - first.t_ns : 0;
  }
  if (elapsed_ns == 0) return 0.0;
  return static_cast<double>(diff) * 1e9 / static_cast<double>(elapsed_ns);
}

HistogramSnapshot TimeSeriesRecorder::window_histogram(std::string_view name,
                                                       std::uint64_t window_ns) const {
  HistogramSnapshot out;
  if constexpr (kDisabled) return out;
  const std::lock_guard<std::mutex> lock(mutex_);
  const Column* column = column_locked(name);
  if (column == nullptr || column->kind != MetricKind::kHistogram || retained_ == 0) {
    return out;
  }
  const std::size_t end_offset = column->offset + column->width;
  const Row& last = row_locked(retained_ - 1);
  if (end_offset > last.values.size()) return out;
  const std::size_t start =
      covered_start_locked(window_start_locked(window_ns), end_offset);
  const Row& first = row_locked(start < retained_ ? start : retained_ - 1);
  constexpr std::size_t kBuckets = MetricsRegistry::kHistogramBuckets;
  out.buckets.assign(kBuckets, 0);
  // Counters only grow, so the bucket-wise difference of two cumulative
  // snapshots is exactly the observations that landed in the window.
  // With a single covering row there is no baseline: the whole
  // cumulative state counts as "inside the window".
  const bool have_first = start + 1 < retained_;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    const std::uint64_t newest = last.values[column->offset + i];
    const std::uint64_t oldest = have_first ? first.values[column->offset + i] : 0;
    out.buckets[i] = newest >= oldest ? newest - oldest : 0;
  }
  const std::uint64_t sum_new = last.values[column->offset + kBuckets];
  const std::uint64_t sum_old = have_first ? first.values[column->offset + kBuckets] : 0;
  const std::uint64_t count_new = last.values[column->offset + kBuckets + 1];
  const std::uint64_t count_old =
      have_first ? first.values[column->offset + kBuckets + 1] : 0;
  out.sum = sum_new >= sum_old ? sum_new - sum_old : 0;
  out.count = count_new >= count_old ? count_new - count_old : 0;
  return out;
}

std::uint64_t TimeSeriesRecorder::window_quantile(std::string_view name, double q,
                                                  std::uint64_t window_ns) const {
  return approx_quantile(window_histogram(name, window_ns), q);
}

std::vector<TimeSeriesRecorder::Point> TimeSeriesRecorder::series(
    std::string_view name) const {
  std::vector<Point> out;
  if constexpr (kDisabled) return out;
  const std::lock_guard<std::mutex> lock(mutex_);
  const Column* column = column_locked(name);
  if (column == nullptr) return out;
  // Histograms chart their observation count.
  const std::size_t offset = column->kind == MetricKind::kHistogram
                                 ? column->offset + MetricsRegistry::kHistogramBuckets + 1
                                 : column->offset;
  out.reserve(retained_);
  for (std::size_t i = 0; i < retained_; ++i) {
    const Row& row = row_locked(i);
    if (offset >= row.values.size()) continue;
    out.push_back(Point{row.t_ns, row.values[offset]});
  }
  return out;
}

std::vector<double> TimeSeriesRecorder::rate_series(std::string_view name) const {
  const std::vector<Point> points = series(name);
  std::vector<double> out;
  if (points.size() < 2) return out;
  out.reserve(points.size() - 1);
  for (std::size_t i = 1; i < points.size(); ++i) {
    const std::uint64_t dt = points[i].t_ns - points[i - 1].t_ns;
    const auto dv = static_cast<double>(points[i].value) -
                    static_cast<double>(points[i - 1].value);
    out.push_back(dt == 0 ? 0.0 : dv * 1e9 / static_cast<double>(dt));
  }
  return out;
}

util::JsonValue TimeSeriesRecorder::to_json() const {
  util::JsonValue root = util::JsonValue::object();
  util::JsonValue series_json = util::JsonValue::array();
  std::size_t sample_count = 0;
  if constexpr (!kDisabled) {
    const std::lock_guard<std::mutex> lock(mutex_);
    sample_count = retained_;
    for (const Column& column : layout_) {
      util::JsonValue entry = util::JsonValue::object();
      entry.set("name", util::JsonValue::string(column.name));
      const char* kind = column.kind == MetricKind::kHistogram ? "histogram"
                         : column.kind == MetricKind::kGauge   ? "gauge"
                                                               : "counter";
      entry.set("kind", util::JsonValue::string(kind));
      const std::size_t offset =
          column.kind == MetricKind::kHistogram
              ? column.offset + MetricsRegistry::kHistogramBuckets + 1
              : column.offset;
      util::JsonValue points = util::JsonValue::array();
      for (std::size_t i = 0; i < retained_; ++i) {
        const Row& row = row_locked(i);
        if (offset >= row.values.size()) continue;
        util::JsonValue point = util::JsonValue::array();
        point.push(util::JsonValue::integer(static_cast<std::int64_t>(row.t_ns / 1'000'000ull)));
        point.push(util::JsonValue::integer(static_cast<std::int64_t>(row.values[offset])));
        points.push(std::move(point));
      }
      entry.set("points", std::move(points));
      if (column.kind == MetricKind::kHistogram && retained_ > 0) {
        const Row& last = row_locked(retained_ - 1);
        if (column.offset + column.width <= last.values.size()) {
          util::JsonValue buckets = util::JsonValue::array();
          for (std::size_t i = 0; i < MetricsRegistry::kHistogramBuckets; ++i) {
            buckets.push(util::JsonValue::integer(
                static_cast<std::int64_t>(last.values[column.offset + i])));
          }
          entry.set("buckets", std::move(buckets));
          entry.set("sum",
                    util::JsonValue::integer(static_cast<std::int64_t>(
                        last.values[column.offset + MetricsRegistry::kHistogramBuckets])));
        }
      }
      series_json.push(std::move(entry));
    }
  }
  root.set("samples", util::JsonValue::integer(static_cast<std::int64_t>(sample_count)));
  root.set("series", std::move(series_json));
  return root;
}

std::string TimeSeriesRecorder::prometheus() const {
  // Exposition format with explicit timestamps: `name value ts_ms`.
  // Built piecewise like MetricsRegistry::prometheus (GCC PR105651).
  std::string out;
  if constexpr (kDisabled) return out;
  const std::lock_guard<std::mutex> lock(mutex_);
  for (const Column& column : layout_) {
    const std::string name = prometheus_sanitize_name(column.name);
    const char* type = column.kind == MetricKind::kHistogram ? "histogram"
                       : column.kind == MetricKind::kGauge   ? "gauge"
                                                             : "counter";
    out += "# TYPE ";
    out += name;
    out.push_back(' ');
    out += type;
    out.push_back('\n');
    if (column.kind != MetricKind::kHistogram) {
      for (std::size_t i = 0; i < retained_; ++i) {
        const Row& row = row_locked(i);
        if (column.offset >= row.values.size()) continue;
        out += name;
        out.push_back(' ');
        if (column.kind == MetricKind::kGauge) {
          out += std::to_string(static_cast<std::int64_t>(row.values[column.offset]));
        } else {
          out += std::to_string(row.values[column.offset]);
        }
        out.push_back(' ');
        out += std::to_string(row.t_ns / 1'000'000ull);
        out.push_back('\n');
      }
      continue;
    }
    constexpr std::size_t kBuckets = MetricsRegistry::kHistogramBuckets;
    for (std::size_t i = 0; i < retained_; ++i) {
      const Row& row = row_locked(i);
      if (column.offset + column.width > row.values.size()) continue;
      const std::string ts = std::to_string(row.t_ns / 1'000'000ull);
      out += name;
      out += "_sum ";
      out += std::to_string(row.values[column.offset + kBuckets]);
      out.push_back(' ');
      out += ts;
      out.push_back('\n');
      out += name;
      out += "_count ";
      out += std::to_string(row.values[column.offset + kBuckets + 1]);
      out.push_back(' ');
      out += ts;
      out.push_back('\n');
    }
    if (retained_ > 0) {
      const Row& last = row_locked(retained_ - 1);
      if (column.offset + column.width <= last.values.size()) {
        const std::string ts = std::to_string(last.t_ns / 1'000'000ull);
        std::uint64_t cumulative = 0;
        for (std::size_t b = 0; b < kBuckets; ++b) {
          cumulative += last.values[column.offset + b];
          out += name;
          out += "_bucket{le=\"";
          if (b + 1 < kBuckets) {
            out += std::to_string(MetricsRegistry::bucket_bound(b));
          } else {
            out += "+Inf";
          }
          out += "\"} ";
          out += std::to_string(cumulative);
          out.push_back(' ');
          out += ts;
          out.push_back('\n');
        }
      }
    }
  }
  return out;
}

void TimeSeriesRecorder::clear() {
  if constexpr (kDisabled) return;
  const std::lock_guard<std::mutex> lock(mutex_);
  next_ = 0;
  retained_ = 0;
  taken_ = 0;
}

}  // namespace tzgeo::obs
