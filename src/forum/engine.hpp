// The forum engine: a hidden-service discussion board.
//
// An engine is built from a synthetic crowd (personas + their post trace)
// and serves rendered pages through a ServiceHandler.  It enforces the
// observable behaviours the methodology must survive:
//   * post timestamps are displayed in the *server's* clock, which may be
//     offset from UTC or deliberately shifted (Section V: "the timestamp
//     can be deliberately shifted");
//   * posts become visible the moment they are made ("we also checked that
//     in all of the forums the posts appear with no delay");
//   * optional countermeasures from the Discussion: hidden timestamps and
//     random display delays.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "forum/model.hpp"
#include "forum/render.hpp"
#include "synth/dataset.hpp"
#include "tor/transport.hpp"

namespace tzgeo::forum {

/// A forum server instance.
class ForumEngine {
 public:
  /// Populates the board from a crowd: every persona becomes a member and
  /// every trace event becomes a post in one of the discussion threads.
  ForumEngine(ForumConfig config, const synth::Dataset& crowd);

  /// Registers a brand-new member (the investigator signs up).  Returns
  /// the member's handle; throws std::invalid_argument if taken.  New
  /// members start at AccessTier::kPublic.
  std::string signup(const std::string& handle);

  /// Promotes a member to a tier (paying the 'Pro'/'Elite' subscription).
  /// Throws std::out_of_range for unknown handles.
  void grant_tier(const std::string& handle, AccessTier tier);

  /// Request handler compatible with tor::ServiceHandler.  Supported:
  ///   GET  /index?page=N[&as=<handle>]
  ///   GET  /thread/<id>?page=N[&as=<handle>]
  ///   POST /post   body: "thread=<id>&author=<handle>&text=<body>"
  ///   POST /signup body: "handle=<handle>"
  /// The optional `as` parameter authenticates the requester; restricted
  /// threads are invisible below their tier.
  [[nodiscard]] tor::Response handle(const tor::Request& request, std::int64_t now_utc);

  // --- Introspection (tests and report generation) -----------------------
  [[nodiscard]] const ForumConfig& config() const noexcept { return config_; }
  [[nodiscard]] const std::vector<Thread>& threads() const noexcept { return threads_; }
  [[nodiscard]] std::size_t post_count() const noexcept { return posts_.size(); }
  [[nodiscard]] std::size_t user_count() const noexcept { return users_.size(); }
  /// True posting instant of a post id (ground truth for tests).
  [[nodiscard]] tz::UtcSeconds true_time_of(std::uint64_t post_id) const;
  /// The handle of a crowd member by persona id (ground truth for tests).
  [[nodiscard]] const std::string& handle_of(std::uint64_t persona_id) const;

  /// The instant a post becomes visible (equals utc_time except under
  /// kRandomDelay, where display delay also delays publication).
  [[nodiscard]] tz::UtcSeconds visible_at(const Post& post) const noexcept;

  /// The timestamp the server displays for a post (policy applied), or
  /// nothing under kHidden.
  [[nodiscard]] std::optional<tz::CivilDateTime> display_time(const Post& post) const;

  /// Number of posts in threads at or below `tier` (ground truth for
  /// partial-crawl tests).
  [[nodiscard]] std::size_t post_count_visible_to(AccessTier tier) const noexcept;

 private:
  [[nodiscard]] tor::Response serve_index(std::size_t page, std::int64_t now_utc,
                                          AccessTier tier) const;
  [[nodiscard]] tor::Response serve_thread(std::uint64_t thread_id, std::size_t page,
                                           std::int64_t now_utc, AccessTier tier) const;
  [[nodiscard]] tor::Response accept_post(const std::string& body, std::int64_t now_utc);
  [[nodiscard]] AccessTier tier_of_handle(const std::string& handle) const noexcept;

  /// Deterministic per-post delay for kRandomDelay.
  [[nodiscard]] std::int64_t random_delay_of(std::uint64_t post_id) const noexcept;

  /// Posts of a thread visible at `now_utc`, in display order.
  [[nodiscard]] std::vector<const Post*> visible_posts(std::uint64_t thread_id,
                                                       std::int64_t now_utc) const;

  /// True when the rolling-window rate limiter rejects this request.
  [[nodiscard]] bool rate_limited(std::int64_t now_utc);

  ForumConfig config_;
  std::map<std::string, AccessTier> tiers_;  ///< by handle; absent = public
  std::vector<std::int64_t> recent_requests_;  ///< rolling 60 s window
  std::vector<Thread> threads_;
  std::vector<Post> posts_;                       ///< sorted by visible-at time
  std::map<std::uint64_t, ForumUser> users_;      ///< by user id
  std::map<std::string, std::uint64_t> by_handle_;
  std::map<std::uint64_t, std::string> persona_handles_;
  std::uint64_t next_post_id_ = 1;
  std::uint64_t next_user_id_ = 1;
};

}  // namespace tzgeo::forum
