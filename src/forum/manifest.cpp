#include "forum/manifest.hpp"

#include <map>
#include <stdexcept>
#include <utility>

#include "util/rng.hpp"

namespace tzgeo::forum {

namespace {

/// Mixes one 64-bit word into a running hash (splitmix-style).
[[nodiscard]] std::uint64_t mix(std::uint64_t h, std::uint64_t word) noexcept {
  std::uint64_t s = h ^ word;
  return util::splitmix64(s);
}

/// Chooses the agreed record between two observations of one post id.
[[nodiscard]] const ScrapeRecord* resolve(const ScrapeRecord* a, const ScrapeRecord* b) {
  const std::uint64_t hash_a = record_content_hash(*a);
  const std::uint64_t hash_b = record_content_hash(*b);
  if (hash_a == hash_b) {
    // Same content on both sides; the earlier stamp carries less
    // poll-interval error.
    return b->observed_utc < a->observed_utc ? b : a;
  }
  // Content conflict (one side parsed a garbled page): no oracle knows
  // which is true, so pick deterministically — both crawlers converge on
  // the same answer without talking to each other.
  return hash_b < hash_a ? b : a;
}

}  // namespace

std::uint64_t record_content_hash(const ScrapeRecord& record) noexcept {
  std::uint64_t h = mix(0x747a6d616e696601ull, record.post_id);  // "tzmanif" domain tag
  h = mix(h, record.thread_id);
  h = mix(h, util::hash64(record.author));
  h = mix(h, record.display_time.has_value() ? 1u : 0u);
  if (record.display_time.has_value()) {
    const tz::CivilDateTime& when = *record.display_time;
    h = mix(h, static_cast<std::uint64_t>(static_cast<std::int64_t>(when.date.year)));
    h = mix(h, static_cast<std::uint64_t>(static_cast<std::int64_t>(when.date.month)));
    h = mix(h, static_cast<std::uint64_t>(static_cast<std::int64_t>(when.date.day)));
    h = mix(h, static_cast<std::uint64_t>(static_cast<std::int64_t>(when.hour)));
    h = mix(h, static_cast<std::uint64_t>(static_cast<std::int64_t>(when.minute)));
    h = mix(h, static_cast<std::uint64_t>(static_cast<std::int64_t>(when.second)));
  }
  return h;
}

ScrapeManifest build_manifest(const ScrapeDump& dump) {
  ScrapeManifest manifest;
  manifest.onion = dump.onion;
  manifest.forum_name = dump.forum_name;
  // std::map both sorts by post id and deduplicates; ties keep the
  // smaller content hash so build_manifest(converge(a, b)) is stable.
  std::map<std::uint64_t, std::uint64_t> parts;
  for (const ScrapeRecord& record : dump.records) {
    const std::uint64_t hash = record_content_hash(record);
    const auto [it, inserted] = parts.emplace(record.post_id, hash);
    if (!inserted && hash < it->second) it->second = hash;
  }
  manifest.parts.reserve(parts.size());
  std::uint64_t combined = mix(0x747a6d616e696602ull, parts.size());
  for (const auto& [post_id, hash] : parts) {
    manifest.parts.push_back(ManifestPart{post_id, hash});
    combined = mix(combined, post_id);
    combined = mix(combined, hash);
  }
  manifest.combined_hash = combined;
  return manifest;
}

ScrapeDump converge(const ScrapeDump& a, const ScrapeDump& b) {
  if (a.onion != b.onion) {
    throw std::invalid_argument("converge: dumps are for different onions (" + a.onion +
                                " vs " + b.onion + ")");
  }
  std::map<std::uint64_t, const ScrapeRecord*> agreed;
  for (const ScrapeRecord& record : a.records) {
    const auto [it, inserted] = agreed.emplace(record.post_id, &record);
    if (!inserted) it->second = resolve(it->second, &record);
  }
  for (const ScrapeRecord& record : b.records) {
    const auto [it, inserted] = agreed.emplace(record.post_id, &record);
    if (!inserted) it->second = resolve(it->second, &record);
  }

  ScrapeDump out;
  out.onion = a.onion;
  out.forum_name = a.forum_name.empty() ? b.forum_name : a.forum_name;
  out.records.reserve(agreed.size());
  for (const auto& [post_id, record] : agreed) out.records.push_back(*record);
  out.pages_fetched = a.pages_fetched + b.pages_fetched;
  out.malformed_posts = a.malformed_posts + b.malformed_posts;
  out.polls = a.polls + b.polls;
  out.polls_failed = a.polls_failed + b.polls_failed;
  out.polls_partial = a.polls_partial + b.polls_partial;
  out.threads_quarantined = a.threads_quarantined + b.threads_quarantined;
  return out;
}

}  // namespace tzgeo::forum
