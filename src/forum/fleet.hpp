// Fleet monitor: hundreds of forums under one scheduler.
//
// The paper's monitor mode (Section VII) watches one forum; a real
// campaign watches hundreds of onion boards that churn, vanish, and
// rate-limit independently.  forum::Fleet multiplexes N forum campaigns
// over one core::ThreadPool and one fleet-wide request budget:
//
//  * Staggered deterministic schedule.  Forum i's poll n is pinned to
//    t0 + stagger(i) + n * interval with stagger(i) = interval * i / N,
//    so the fleet's load spreads across each interval instead of
//    spiking.  Every forum runs its own simulated clock and transport
//    whose RNG epoch is the scheduled second — randomness is a pure
//    function of (fleet seed, forum name, poll), never of sibling
//    traffic or worker interleaving, which is what keeps a parallel
//    fleet bit-reproducible and kill/resume-identical.
//
//  * Shared request budget with per-forum fairness.  A per-round fetch
//    budget is divided evenly (remainder to the lowest indices) among
//    the forums polling that round and enforced by the transport's
//    epoch allowance; a forum that exhausts its share degrades through
//    the normal sweep ladder instead of starving its siblings.
//
//  * Two-level degradation ladder.  Inside a forum, the sweep ladder
//    from PR 5 (thread strikes, quarantine, jittered re-probes).  At
//    fleet level, a forum whose sweeps keep failing is quarantined
//    (skipped, re-probed once per cooldown window at a jittered phase);
//    a forum whose re-probes keep failing is parked for the campaign.
//    Parking is not fatal: the campaign completes with a partial-fleet
//    verdict.
//
//  * One atomic fleet checkpoint.  All per-forum sub-states ride in a
//    single manifest frame (util::write_manifest_checkpoint_file), each
//    with its own CRC: a corrupt sub-entry parks that one forum on
//    resume, the rest of the fleet resumes byte-identically.
//
// DESIGN.md §14 documents the architecture and the stagger/budget math.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "forum/manifest.hpp"
#include "forum/sweep.hpp"
#include "tor/transport.hpp"

namespace tzgeo::fault {
struct FaultPlan;
class FaultInjector;
}  // namespace tzgeo::fault

namespace tzgeo::forum {

/// One forum campaign in the fleet.
struct FleetForumSpec {
  /// Stable identity: keys the checkpoint sub-entry, the health
  /// component, and the jitter phases.  Must be unique within the fleet.
  std::string name;
  /// The simulated service behind this forum's onion address.
  tor::ServiceHandler handler;
  /// Hidden-service key the handler is hosted under.
  std::uint64_t service_key = 0;
  /// Optional per-forum chaos schedule; not owned, must outlive the
  /// fleet.  nullptr = no injection.
  const fault::FaultPlan* fault_plan = nullptr;
};

/// Fleet lifecycle state of one forum.
enum class ForumStatus : std::uint8_t {
  kActive,       ///< polling on schedule
  kQuarantined,  ///< skipped, re-probed once per cooldown window
  kParked,       ///< out for the rest of the campaign (never fatal)
};

[[nodiscard]] const char* to_string(ForumStatus status) noexcept;

/// Fleet schedule, budget, ladder, and checkpoint wiring.
struct FleetOptions {
  /// Campaign origin on the simulated timeline (UTC seconds); forum i
  /// starts at start + stagger(i).
  std::int64_t start_time_seconds = 0;
  std::int64_t poll_interval_seconds = 1800;
  std::int64_t duration_seconds = 30 * 86400;
  /// Fleet seed: drives per-forum transport seeds and every jitter phase.
  std::uint64_t seed = 0;

  /// Per-forum page cap (forwarded to the sweep ladder).
  std::size_t max_pages_per_poll = 50'000;
  /// Fleet-wide fetch budget per round, divided fairly among the forums
  /// polling that round (0 = unlimited).  Enforced via
  /// tor::OnionTransport::set_epoch_request_allowance.
  std::size_t request_budget_per_round = 0;

  /// Fleet checkpoint file; empty disables checkpointing.  Removed on
  /// successful completion.
  std::string checkpoint_path;
  /// Persist the fleet every N-th round (1 = after every round).
  std::size_t checkpoint_every_rounds = 1;

  /// Per-forum sweep ladder (see MonitorOptions for semantics).
  std::size_t thread_quarantine_after = 3;
  std::size_t thread_quarantine_cooldown_polls = 8;

  /// Fleet ladder: quarantine a forum after this many consecutive failed
  /// sweeps (0 disables)...
  std::size_t forum_quarantine_after = 4;
  /// ...re-probe each quarantined forum once per N-round cooldown window
  /// at a jittered per-forum phase (0 = never)...
  std::size_t forum_quarantine_cooldown_rounds = 8;
  /// ...and park it for the campaign after this many consecutive failed
  /// re-probes (0 = never park).
  std::size_t forum_park_after = 3;

  /// Base transport tuning; the per-forum fault injector (from
  /// FleetForumSpec::fault_plan) overrides the fault_injector field.
  tor::TransportOptions transport;

  /// Chaos hook: throw CrawlError{kHalted} after this many rounds *in
  /// this process run* (0 disables), after the round's cadence-driven
  /// checkpoint — exactly what kill -9 after that round leaves.
  std::size_t halt_after_rounds = 0;

  /// Called after every round, serially in spec order, with each forum's
  /// newly committed records (empty vectors are skipped).
  std::function<void(std::size_t forum_index, const std::vector<ScrapeRecord>&)> on_commit;
  /// Per-forum caller state rides inside the forum's checkpoint
  /// sub-entry, committing atomically with the fleet.
  std::function<std::string(std::size_t forum_index)> checkpoint_extra;
  std::function<void(std::size_t forum_index, std::string_view)> restore_extra;
};

/// Per-forum outcome in the fleet verdict.
struct FleetForumOutcome {
  std::string name;
  std::string onion;
  ForumStatus status = ForumStatus::kActive;
  ScrapeDump dump;
  ScrapeManifest manifest;
  std::size_t rounds_polled = 0;
  std::size_t rounds_skipped = 0;
  std::size_t parked_at_round = 0;  ///< meaningful when status == kParked
  std::string park_reason;
};

/// The partial-fleet verdict of a completed campaign.
struct FleetResult {
  std::vector<FleetForumOutcome> forums;  ///< in spec order
  std::size_t rounds = 0;
  std::size_t active = 0;
  std::size_t quarantined = 0;
  std::size_t parked = 0;

  /// True when every forum stayed in the campaign to the end.
  [[nodiscard]] bool full_fleet() const noexcept { return parked == 0 && quarantined == 0; }
};

/// Deterministic fair division of `total` among `claimants`: every
/// claimant gets total/claimants, the first total%claimants get one
/// more.  Returns 0 for index >= claimants.
[[nodiscard]] std::size_t fair_share(std::size_t total, std::size_t claimants,
                                     std::size_t index) noexcept;

/// The fleet scheduler.  Construct, then either run() the whole campaign
/// or drive it round by round (poll_round / done / finish) — the
/// dashboard uses the stepwise form.  The consensus and every
/// FleetForumSpec::fault_plan must outlive the Fleet.
class Fleet {
 public:
  Fleet(const tor::Consensus& consensus, std::vector<FleetForumSpec> specs,
        FleetOptions options);
  ~Fleet();
  Fleet(const Fleet&) = delete;
  Fleet& operator=(const Fleet&) = delete;

  /// Runs the remaining campaign and returns the verdict.  Throws
  /// std::invalid_argument on bad options, util::CheckpointError when an
  /// existing fleet checkpoint's directory or global entry is unusable or
  /// for a different campaign (a corrupt per-forum sub-entry only parks
  /// that forum), and CrawlError{kHalted} from the halt_after_rounds
  /// chaos hook.
  [[nodiscard]] FleetResult run();

  /// One scheduling round: every due forum polls (in parallel over the
  /// global thread pool), the fleet ladder advances, and the cadence
  /// checkpoint is written.  Precondition: !done().
  void poll_round();

  [[nodiscard]] bool done() const noexcept { return next_round_ >= rounds_total_; }
  [[nodiscard]] std::size_t rounds_total() const noexcept { return rounds_total_; }
  [[nodiscard]] std::size_t next_round() const noexcept { return next_round_; }

  /// Completes the campaign after the last round: removes the
  /// checkpoint and assembles the verdict (with manifests).
  [[nodiscard]] FleetResult finish();

  /// Lightweight per-forum view for dashboards (no dump copies).
  struct ForumSnapshot {
    std::string name;
    ForumStatus status = ForumStatus::kActive;
    std::size_t polls = 0;
    std::size_t polls_failed = 0;
    std::size_t records = 0;
    std::size_t rounds_skipped = 0;
    std::string park_reason;
  };
  [[nodiscard]] std::vector<ForumSnapshot> snapshot() const;

 private:
  struct Forum;

  void resume_from_checkpoint();
  void write_fleet_checkpoint();
  void refresh_gauges() const;
  [[nodiscard]] bool forum_due(const Forum& forum, std::size_t round) const noexcept;

  FleetOptions options_;
  std::vector<std::unique_ptr<Forum>> forums_;
  std::size_t rounds_total_ = 0;
  std::size_t next_round_ = 0;
  std::size_t rounds_this_run_ = 0;
};

}  // namespace tzgeo::forum
