#include "forum/model.hpp"

namespace tzgeo::forum {

const char* to_string(AccessTier tier) noexcept {
  switch (tier) {
    case AccessTier::kPublic: return "public";
    case AccessTier::kPro: return "pro";
    case AccessTier::kElite: return "elite";
  }
  return "unknown";
}

const char* to_string(TimestampFormat format) noexcept {
  switch (format) {
    case TimestampFormat::kIso: return "iso";
    case TimestampFormat::kEuropean: return "european";
    case TimestampFormat::kUsAmPm: return "us_ampm";
    case TimestampFormat::kRelativeDay: return "relative_day";
  }
  return "unknown";
}

const char* to_string(TimestampPolicy policy) noexcept {
  switch (policy) {
    case TimestampPolicy::kUtc: return "utc";
    case TimestampPolicy::kServerLocal: return "server_local";
    case TimestampPolicy::kHidden: return "hidden";
    case TimestampPolicy::kRandomDelay: return "random_delay";
  }
  return "unknown";
}

}  // namespace tzgeo::forum
