// Full-site forum crawler.
//
// Walks the index and every thread page over the Tor transport and collects
// the information the methodology needs — author handle and displayed
// timestamp per post.  Nothing else is kept, matching the paper's data
// policy ("only author ID and time of posting, without the body").
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "timezone/civil.hpp"
#include "tor/transport.hpp"

namespace tzgeo::forum {

/// One scraped post record.
struct ScrapeRecord {
  std::uint64_t post_id = 0;
  std::uint64_t thread_id = 0;
  std::string author;
  /// Timestamp as displayed by the server (its own clock); absent when the
  /// forum hides timestamps.
  std::optional<tz::CivilDateTime> display_time;
  /// When the crawler observed the post (true UTC of the simulated clock);
  /// this is the stamp monitor mode relies on.
  tz::UtcSeconds observed_utc = 0;
};

/// The result of a crawl.
struct ScrapeDump {
  std::string onion;
  std::string forum_name;
  std::vector<ScrapeRecord> records;
  std::size_t pages_fetched = 0;
  std::size_t malformed_posts = 0;  ///< skipped by the defensive parser
  /// Monitor mode only: poll sweeps attempted and sweeps aborted by a
  /// fetch/parse failure (a failed sweep is retried next interval, so the
  /// stamping error for the affected posts grows by one interval).
  std::size_t polls = 0;
  std::size_t polls_failed = 0;
  /// Sweeps committed with at least one thread skipped (degradation
  /// ladder), and thread skips taken while a thread sat in quarantine.
  std::size_t polls_partial = 0;
  std::size_t threads_quarantined = 0;
};

/// Crawl tuning.
struct CrawlOptions {
  std::size_t max_pages = 1'000'000;  ///< hard safety cap on page fetches
  /// Crawl as this member (tier-gated sections become visible up to the
  /// member's tier).  Empty = anonymous/public crawl.
  std::string as_handle;
};

/// Crawls the full forum: every index page, every thread, every page.
/// Throws tor::TransportError on unrecoverable network failure and
/// CrawlError (kFetchFailed / kUnparsable / kPageCap) when a page cannot
/// be retrieved or understood.
[[nodiscard]] ScrapeDump crawl_forum(tor::OnionTransport& transport, const std::string& onion,
                                     const CrawlOptions& options = {});

}  // namespace tzgeo::forum
