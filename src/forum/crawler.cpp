#include "forum/crawler.hpp"

#include "forum/error.hpp"
#include "forum/parser.hpp"
#include "obs/pipeline_metrics.hpp"
#include "obs/trace.hpp"
#include "util/strings.hpp"

namespace tzgeo::forum {

namespace {

[[nodiscard]] std::string auth_suffix(const CrawlOptions& options) {
  return options.as_handle.empty() ? std::string{} : "&as=" + options.as_handle;
}

[[nodiscard]] std::string forum_name_of(std::string_view markup) {
  std::size_t pos = 0;
  const auto header = tzgeo::util::extract_between(markup, "<forum ", ">", pos);
  if (!header) return "";
  const auto name = attribute(*header, "name");
  return name.value_or("");
}

}  // namespace

ScrapeDump crawl_forum(tor::OnionTransport& transport, const std::string& onion,
                       const CrawlOptions& options) {
  const obs::ScopedSpan crawl_span("forum.crawl");
  const obs::PipelineMetrics& metrics = obs::PipelineMetrics::get();
  obs::MetricsRegistry& registry = obs::MetricsRegistry::global();
  ScrapeDump dump;
  dump.onion = onion;

  // 1. Walk the index pages and gather thread references.
  std::vector<ThreadRef> threads;
  std::size_t index_pages = 1;
  for (std::size_t page = 1; page <= index_pages; ++page) {
    const std::string path = "/index?page=" + std::to_string(page) + auth_suffix(options);
    if (dump.pages_fetched >= options.max_pages) {
      throw CrawlError(CrawlErrorCategory::kPageCap, onion, path,
                       "page cap reached while reading the index");
    }
    const tor::Response response = transport.fetch(onion, tor::Request{"GET", path, ""});
    ++dump.pages_fetched;
    registry.add(metrics.forum_pages_fetched);
    if (response.status != 200) {
      throw CrawlError(CrawlErrorCategory::kFetchFailed, onion, path,
                       "index fetch failed with status " + std::to_string(response.status));
    }
    const auto parsed = parse_index_page(response.body);
    if (!parsed) {
      throw CrawlError(CrawlErrorCategory::kUnparsable, onion, path, "unparsable index page");
    }
    index_pages = parsed->pages;
    threads.insert(threads.end(), parsed->threads.begin(), parsed->threads.end());
    if (dump.forum_name.empty()) dump.forum_name = forum_name_of(response.body);
  }

  // 2. Walk every page of every thread.
  for (const auto& thread : threads) {
    std::size_t thread_pages = thread.pages;
    for (std::size_t page = 1; page <= thread_pages; ++page) {
      const std::string path = "/thread/" + std::to_string(thread.id) +
                               "?page=" + std::to_string(page) + auth_suffix(options);
      if (dump.pages_fetched >= options.max_pages) {
        throw CrawlError(CrawlErrorCategory::kPageCap, onion, path,
                         "page cap reached while reading threads");
      }
      const tor::Response response = transport.fetch(onion, tor::Request{"GET", path, ""});
      ++dump.pages_fetched;
      registry.add(metrics.forum_pages_fetched);
      if (response.status != 200) {
        throw CrawlError(CrawlErrorCategory::kFetchFailed, onion, path,
                         "thread fetch failed with status " + std::to_string(response.status));
      }
      const auto parsed = parse_thread_page(
          response.body, tz::from_utc_seconds(transport.clock().now_seconds()).date);
      if (!parsed) {
        throw CrawlError(CrawlErrorCategory::kUnparsable, onion, path,
                         "unparsable thread page");
      }
      thread_pages = parsed->pages;  // the thread may have grown mid-crawl
      dump.malformed_posts += parsed->malformed_posts;
      registry.add(metrics.forum_parse_failures, parsed->malformed_posts);
      for (const auto& post : parsed->posts) {
        ScrapeRecord record;
        record.post_id = post.id;
        record.thread_id = parsed->thread_id;
        record.author = post.author;
        record.display_time = post.display_time;
        record.observed_utc = transport.clock().now_seconds();
        dump.records.push_back(std::move(record));
      }
    }
  }
  return dump;
}

}  // namespace tzgeo::forum
