#include "forum/render.hpp"

#include <cstdio>

#include "util/constants.hpp"
#include "util/strings.hpp"

namespace tzgeo::forum {

std::string escape_markup(const std::string& text) {
  std::string out = util::replace_all(text, "&", "&amp;");
  out = util::replace_all(out, "<", "&lt;");
  out = util::replace_all(out, ">", "&gt;");
  out = util::replace_all(out, "\"", "&quot;");
  return out;
}

std::string unescape_markup(const std::string& text) {
  std::string out = util::replace_all(text, "&quot;", "\"");
  out = util::replace_all(out, "&gt;", ">");
  out = util::replace_all(out, "&lt;", "<");
  out = util::replace_all(out, "&amp;", "&");
  return out;
}

std::string format_timestamp(const tz::CivilDateTime& dt) { return tz::to_string(dt); }

std::string format_timestamp(const tz::CivilDateTime& dt, TimestampFormat format,
                             const tz::CivilDate& today) {
  char buffer[48];
  switch (format) {
    case TimestampFormat::kIso:
      return tz::to_string(dt);
    case TimestampFormat::kEuropean:
      std::snprintf(buffer, sizeof buffer, "%02d.%02d.%04d %02d:%02d:%02d", dt.date.day,
                    dt.date.month, dt.date.year, dt.hour, dt.minute, dt.second);
      return buffer;
    case TimestampFormat::kUsAmPm: {
      const bool pm = dt.hour >= 12;
      int hour12 = dt.hour % 12;
      if (hour12 == 0) hour12 = 12;
      std::snprintf(buffer, sizeof buffer, "%02d/%02d/%04d %d:%02d:%02d %s", dt.date.month,
                    dt.date.day, dt.date.year, hour12, dt.minute, dt.second, pm ? "pm" : "am");
      return buffer;
    }
    case TimestampFormat::kRelativeDay: {
      const std::int64_t delta =
          tz::days_from_civil(today) - tz::days_from_civil(dt.date);
      if (delta == 0 || delta == 1) {
        std::snprintf(buffer, sizeof buffer, "%s %02d:%02d:%02d",
                      delta == 0 ? "today" : "yesterday", dt.hour, dt.minute, dt.second);
        return buffer;
      }
      return tz::to_string(dt);
    }
  }
  return tz::to_string(dt);
}

namespace {

[[nodiscard]] std::optional<tz::CivilDateTime> validate(int year, int month, int day, int hour,
                                                        int minute, int second) {
  if (month < 1 || month > 12 || day < 1 || day > tz::days_in_month(year, month)) {
    return std::nullopt;
  }
  if (hour < 0 || hour > kMaxHourOfDay || minute < 0 || minute > 59 || second < 0 ||
      second > 59) {
    return std::nullopt;
  }
  return tz::CivilDateTime{tz::CivilDate{year, month, day}, hour, minute, second};
}

}  // namespace

std::optional<tz::CivilDateTime> parse_timestamp(const std::string& text) {
  // Expected: "YYYY-MM-DD HH:MM:SS", the whole string.  The view is taken
  // from c_str() so an embedded NUL truncates, exactly as the sscanf this
  // replaced behaved; anything after the seconds field is a parse error.
  const std::string_view view{text.c_str()};
  std::size_t used = 0;
  const auto dt = tz::parse_civil_datetime(view, &used);
  if (!dt || used != view.size()) return std::nullopt;
  return dt;
}

std::optional<tz::CivilDateTime> parse_timestamp_any(
    const std::string& text, const std::optional<tz::CivilDate>& today) {
  if (auto iso = parse_timestamp(text)) return iso;

  int year = 0, month = 0, day = 0, hour = 0, minute = 0, second = 0;
  char tail = '\0';

  // European: "DD.MM.YYYY HH:MM:SS" — lenient scraper-facing fallback, not a
  // hot path, so the sscanf grammar is kept.  tzgeo-lint: allow(sscanf-parse)
  if (std::sscanf(text.c_str(), "%d.%d.%d %d:%d:%d%c", &day, &month, &year,  // tzgeo-lint: allow(sscanf-parse)
                  &hour, &minute, &second, &tail) == 6) {
    return validate(year, month, day, hour, minute, second);
  }

  // US am/pm: "MM/DD/YYYY H:MM:SS am|pm"
  char meridiem[3] = {0};
  if (std::sscanf(text.c_str(), "%d/%d/%d %d:%d:%d %2s", &month, &day, &year,  // tzgeo-lint: allow(sscanf-parse)
                  &hour, &minute, &second, meridiem) == 7) {
    const std::string_view half{meridiem};
    if ((half == "am" || half == "pm") && hour >= 1 && hour <= 12) {
      int hour24 = hour % 12;
      if (half == "pm") hour24 += 12;
      return validate(year, month, day, hour24, minute, second);
    }
    return std::nullopt;
  }

  // Relative: "today HH:MM:SS" / "yesterday HH:MM:SS" (needs `today`).
  if (today) {
    char word[10] = {0};
    if (std::sscanf(text.c_str(), "%9s %d:%d:%d%c", word, &hour, &minute,  // tzgeo-lint: allow(sscanf-parse)
                    &second, &tail) == 4) {
      const std::string_view label{word};
      std::int64_t delta = -1;
      if (label == "today") delta = 0;
      if (label == "yesterday") delta = 1;
      if (delta >= 0) {
        const tz::CivilDate date = tz::civil_from_days(tz::days_from_civil(*today) - delta);
        return validate(date.year, date.month, date.day, hour, minute, second);
      }
    }
  }
  return std::nullopt;
}

std::string render_thread_page(const std::string& forum_name, const Thread& thread,
                               const std::vector<RenderedPost>& posts, std::size_t page,
                               std::size_t pages, TimestampFormat format,
                               const tz::CivilDate& today) {
  // Appended piecewise — GCC 12's -Wrestrict misfires on operator+
  // chains under -O2 (GCC PR105651) — and avoids per-post temporaries.
  std::string out;
  out += "<forum name=\"";
  out += escape_markup(forum_name);
  out += "\">\n";
  out += "<thread id=\"";
  out += std::to_string(thread.id);
  out += "\" title=\"";
  out += escape_markup(thread.title);
  out += "\" page=\"";
  out += std::to_string(page);
  out += "\" pages=\"";
  out += std::to_string(pages);
  out += "\">\n";
  for (const auto& post : posts) {
    out += "<post id=\"";
    out += std::to_string(post.id);
    out += "\" author=\"";
    out += escape_markup(post.author);
    out.push_back('"');
    if (post.display_time) {
      out += " time=\"";
      out += format_timestamp(*post.display_time, format, today);
      out.push_back('"');
    } else {
      out += " notime";
    }
    out.push_back('>');
    out += escape_markup(post.body);
    out += "</post>\n";
  }
  out += "</thread>\n</forum>\n";
  return out;
}

std::string render_index_page(const std::string& forum_name,
                              const std::vector<ThreadRef>& threads, std::size_t page,
                              std::size_t pages) {
  std::string out;
  out += "<forum name=\"" + escape_markup(forum_name) + "\">\n";
  out += "<index page=\"" + std::to_string(page) + "\" pages=\"" + std::to_string(pages) +
         "\">\n";
  for (const auto& thread : threads) {
    out += "<threadref id=\"" + std::to_string(thread.id) + "\" title=\"" +
           escape_markup(thread.title) + "\" pages=\"" + std::to_string(thread.pages) + "\"/>\n";
  }
  out += "</index>\n</forum>\n";
  return out;
}

}  // namespace tzgeo::forum
