// Markup rendering of forum pages.
//
// The engine renders pages in a small HTML-like markup that the crawler
// must parse back — the pipeline never gets structured data for free, just
// like a real scrape.  Example thread page:
//
//   <forum name="CRD Club">
//   <thread id="7" title="carding 101" page="2" pages="9">
//   <post id="120" author="wolf3" time="2016-05-12 18:03:44">text</post>
//   <post id="121" author="ghost" notime>text</post>
//   </thread>
//   </forum>
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "forum/model.hpp"

namespace tzgeo::forum {

/// A post as it appears on a page: display strings only.
struct RenderedPost {
  std::uint64_t id = 0;
  std::string author;
  std::optional<tz::CivilDateTime> display_time;  ///< absent under kHidden
  std::string body;
};

/// Renders a thread page.  `format` controls the timestamp text;
/// kRelativeDay additionally needs `today` (the server's display date).
[[nodiscard]] std::string render_thread_page(const std::string& forum_name, const Thread& thread,
                                             const std::vector<RenderedPost>& posts,
                                             std::size_t page, std::size_t pages,
                                             TimestampFormat format = TimestampFormat::kIso,
                                             const tz::CivilDate& today = {});

/// Renders the thread index page: a list of `<threadref id=".." pages="..">`.
struct ThreadRef {
  std::uint64_t id = 0;
  std::string title;
  std::size_t pages = 1;
};
[[nodiscard]] std::string render_index_page(const std::string& forum_name,
                                            const std::vector<ThreadRef>& threads,
                                            std::size_t page, std::size_t pages);

/// Escapes '<', '>', '&' and '"' in body/title text.
[[nodiscard]] std::string escape_markup(const std::string& text);
/// Inverse of escape_markup.
[[nodiscard]] std::string unescape_markup(const std::string& text);

/// Renders a civil datetime in ISO form ("2016-05-12 18:03:44").
[[nodiscard]] std::string format_timestamp(const tz::CivilDateTime& dt);

/// Renders a civil datetime in any supported forum format.  kRelativeDay
/// writes "today HH:MM:SS" / "yesterday HH:MM:SS" when `today` (the
/// server's current display date) allows it, falling back to ISO.
[[nodiscard]] std::string format_timestamp(const tz::CivilDateTime& dt, TimestampFormat format,
                                           const tz::CivilDate& today);

/// Parses the ISO forum timestamp; std::nullopt on malformed input.
[[nodiscard]] std::optional<tz::CivilDateTime> parse_timestamp(const std::string& text);

/// Format auto-detection: tries ISO, European ("12.05.2016 18:03:44") and
/// US am/pm ("05/12/2016 6:03:44 pm"); when `today` is provided, also the
/// relative forms ("today 18:03:44" / "yesterday 18:03:44") resolved
/// against it.  std::nullopt when nothing matches.
[[nodiscard]] std::optional<tz::CivilDateTime> parse_timestamp_any(
    const std::string& text, const std::optional<tz::CivilDate>& today = std::nullopt);

}  // namespace tzgeo::forum
