#include "forum/error.hpp"

#include <utility>

namespace tzgeo::forum {

namespace {

[[nodiscard]] std::string compose(CrawlErrorCategory category, const std::string& onion,
                                  const std::string& path, const std::string& detail) {
  std::string message = "crawl error [";
  message += to_string(category);
  message += "]";
  if (!onion.empty()) {
    message += " at " + onion;
    message += path;
  }
  if (!detail.empty()) message += ": " + detail;
  return message;
}

}  // namespace

const char* to_string(CrawlErrorCategory category) noexcept {
  switch (category) {
    case CrawlErrorCategory::kFetchFailed: return "fetch-failed";
    case CrawlErrorCategory::kUnparsable: return "unparsable";
    case CrawlErrorCategory::kPageCap: return "page-cap";
    case CrawlErrorCategory::kBudgetExhausted: return "budget-exhausted";
    case CrawlErrorCategory::kHalted: return "halted";
  }
  return "unknown";
}

CrawlError::CrawlError(CrawlErrorCategory category, std::string onion, std::string path,
                       const std::string& detail)
    : std::runtime_error(compose(category, onion, path, detail)),
      category_(category),
      onion_(std::move(onion)),
      path_(std::move(path)) {}

}  // namespace tzgeo::forum
