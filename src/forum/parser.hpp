// Parsing of scraped forum pages (the inverse of render.hpp).
//
// The parser is written against the markup contract only — it never peeks
// at engine internals — and is deliberately defensive: scraped pages in the
// wild contain surprises, so malformed posts are skipped and reported
// rather than aborting the crawl.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "forum/render.hpp"

namespace tzgeo::forum {

/// A parsed thread page.
struct ParsedThreadPage {
  std::uint64_t thread_id = 0;
  std::string title;
  std::size_t page = 1;
  std::size_t pages = 1;
  std::vector<RenderedPost> posts;
  std::size_t malformed_posts = 0;  ///< entries skipped during parsing
};

/// A parsed index page.
struct ParsedIndexPage {
  std::size_t page = 1;
  std::size_t pages = 1;
  std::vector<ThreadRef> threads;
};

/// Parses a thread page; std::nullopt when the page structure is missing.
/// Timestamps are auto-detected across the known formats; relative forms
/// ("today 18:03:44") resolve against `observer_today` when provided —
/// near a midnight boundary between the observer's and the server's
/// display clock they can be off by one day, which the hour-granular
/// methodology tolerates.
[[nodiscard]] std::optional<ParsedThreadPage> parse_thread_page(
    std::string_view markup, const std::optional<tz::CivilDate>& observer_today = std::nullopt);

/// Parses an index page; std::nullopt when the page structure is missing.
[[nodiscard]] std::optional<ParsedIndexPage> parse_index_page(std::string_view markup);

/// Extracts the value of attribute `name` inside an already-extracted tag
/// header (helper exposed for tests).
[[nodiscard]] std::optional<std::string> attribute(std::string_view tag_header,
                                                   std::string_view name);

}  // namespace tzgeo::forum
