// Persistence of scrape dumps.
//
// An investigation has two phases with different risk profiles: the crawl
// (online, over Tor, interruptible) and the analysis (offline, repeatable).
// Persisting the dump between them decouples the two — crawl once, analyze
// forever — and matches the paper's data policy: the CSV stores only the
// post id, thread id, author handle, displayed time and observation time,
// never post bodies.
#pragma once

#include <string>
#include <string_view>

#include "forum/crawler.hpp"

namespace tzgeo::forum {

/// Serializes a dump to CSV:
///   post_id,thread_id,author,display_time,observed_utc
/// The display_time column is empty for records without a displayed
/// timestamp (hidden-timestamp forums).
[[nodiscard]] std::string dump_to_csv(const ScrapeDump& dump);

/// Parses a dump back.  Forum name/onion travel in a leading comment line
/// ("# forum=<name> onion=<onion>").  Malformed data rows are counted into
/// `malformed_posts` rather than fatal; a structurally invalid CSV throws
/// std::invalid_argument.
[[nodiscard]] ScrapeDump dump_from_csv(std::string_view csv_text);

/// File variants; throw std::runtime_error on I/O failure.
void dump_to_csv_file(const ScrapeDump& dump, const std::string& path);
[[nodiscard]] ScrapeDump dump_from_csv_file(const std::string& path);

}  // namespace tzgeo::forum
