#include "forum/monitor.hpp"

#include <stdexcept>
#include <utility>

#include "forum/parser.hpp"
#include "obs/pipeline_metrics.hpp"
#include "obs/stopwatch.hpp"
#include "obs/trace.hpp"

namespace tzgeo::forum {

namespace {

/// One polling sweep: collects the posts not yet in `seen`.
/// Pages are read from the tail of each thread backwards, stopping at the
/// first fully-seen page, so steady-state sweeps stay cheap.
///
/// All effects are staged: `fresh` (ids first seen this sweep), `staged`
/// (records to append) and `malformed` are only merged into `seen`/`dump`
/// by the caller when the sweep completes — a sweep aborted halfway must
/// not mark posts as seen, or they would never be recorded.
void sweep(tor::OnionTransport& transport, const std::string& onion,
           const std::set<std::uint64_t>& seen, std::set<std::uint64_t>& fresh,
           bool record, ScrapeDump& dump, std::vector<ScrapeRecord>& staged,
           std::size_t& malformed, std::size_t max_pages) {
  std::size_t pages_this_poll = 0;
  const auto fetch_page = [&](const std::string& path) {
    if (++pages_this_poll > max_pages) {
      throw std::runtime_error("monitor_forum: per-poll page cap exceeded");
    }
    ++dump.pages_fetched;
    obs::MetricsRegistry::global().add(obs::PipelineMetrics::get().forum_pages_fetched);
    return transport.fetch(onion, tor::Request{"GET", path, ""});
  };

  // Index sweep.
  std::vector<ThreadRef> threads;
  std::size_t index_pages = 1;
  for (std::size_t page = 1; page <= index_pages; ++page) {
    const tor::Response response = fetch_page("/index?page=" + std::to_string(page));
    if (response.status != 200) {
      throw std::runtime_error("monitor_forum: index fetch failed");
    }
    const auto parsed = parse_index_page(response.body);
    if (!parsed) throw std::runtime_error("monitor_forum: unparsable index");
    index_pages = parsed->pages;
    threads.insert(threads.end(), parsed->threads.begin(), parsed->threads.end());
  }

  for (const auto& thread : threads) {
    // Newest posts are on the last page; walk backwards until a page with
    // no unseen posts (or page 1).
    for (std::size_t page = thread.pages; page >= 1; --page) {
      const std::string path =
          "/thread/" + std::to_string(thread.id) + "?page=" + std::to_string(page);
      const tor::Response response = fetch_page(path);
      if (response.status != 200) {
        throw std::runtime_error("monitor_forum: thread fetch failed");
      }
      const auto parsed = parse_thread_page(
        response.body, tz::from_utc_seconds(transport.clock().now_seconds()).date);
      if (!parsed) throw std::runtime_error("monitor_forum: unparsable thread page");
      malformed += record ? parsed->malformed_posts : 0;

      bool any_new = false;
      for (const auto& post : parsed->posts) {
        if (seen.count(post.id) != 0 || !fresh.insert(post.id).second) continue;
        any_new = true;
        if (!record) continue;
        ScrapeRecord entry;
        entry.post_id = post.id;
        entry.thread_id = parsed->thread_id;
        entry.author = post.author;
        entry.display_time = post.display_time;  // typically absent (kHidden)
        entry.observed_utc = transport.clock().now_seconds();
        staged.push_back(std::move(entry));
      }
      if (!any_new || page == 1) break;
    }
  }
}

/// Runs one sweep with staged effects, committing them only on success.
/// Returns false (and leaves `seen`/`dump` untouched, beyond the page
/// counter) when the sweep aborted on a fetch/parse failure.
bool try_sweep(tor::OnionTransport& transport, const std::string& onion,
               std::set<std::uint64_t>& seen, bool record, ScrapeDump& dump,
               std::size_t max_pages) {
  const obs::PipelineMetrics& metrics = obs::PipelineMetrics::get();
  obs::MetricsRegistry& registry = obs::MetricsRegistry::global();
  const obs::ScopedSpan poll_span("forum.poll");
  const obs::Stopwatch watch;
  ++dump.polls;
  registry.add(metrics.forum_polls);

  std::set<std::uint64_t> fresh;
  std::vector<ScrapeRecord> staged;
  std::size_t malformed = 0;
  try {
    sweep(transport, onion, seen, fresh, record, dump, staged, malformed, max_pages);
  } catch (const std::exception&) {
    ++dump.polls_failed;
    registry.add(metrics.forum_polls_failed);
    registry.observe(metrics.forum_poll_us, watch.elapsed_us());
    return false;
  }
  seen.merge(fresh);
  dump.malformed_posts += malformed;
  registry.add(metrics.forum_parse_failures, malformed);
  for (ScrapeRecord& entry : staged) dump.records.push_back(std::move(entry));
  registry.observe(metrics.forum_poll_us, watch.elapsed_us());
  return true;
}

}  // namespace

ScrapeDump monitor_forum(tor::OnionTransport& transport, const std::string& onion,
                         const MonitorOptions& options) {
  if (options.poll_interval_seconds <= 0 || options.duration_seconds <= 0) {
    throw std::invalid_argument("monitor_forum: interval and duration must be positive");
  }
  ScrapeDump dump;
  dump.onion = onion;

  std::set<std::uint64_t> seen;
  // Baseline sweep: the backlog has no observable posting time.  A failed
  // baseline is retried on the next interval (still unrecorded) — posts
  // predating the first *successful* sweep must never be stamped.
  bool baseline_done =
      try_sweep(transport, onion, seen, /*record=*/false, dump, options.max_pages_per_poll);

  const std::int64_t end_time = transport.clock().now_seconds() + options.duration_seconds;
  while (transport.clock().now_seconds() < end_time) {
    transport.clock().advance_seconds(options.poll_interval_seconds);
    if (!baseline_done) {
      baseline_done = try_sweep(transport, onion, seen, /*record=*/false, dump,
                                options.max_pages_per_poll);
      continue;
    }
    try_sweep(transport, onion, seen, /*record=*/true, dump, options.max_pages_per_poll);
  }
  return dump;
}

}  // namespace tzgeo::forum
