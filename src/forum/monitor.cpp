#include "forum/monitor.hpp"

#include <filesystem>
#include <stdexcept>
#include <utility>

#include "forum/error.hpp"
#include "forum/sweep.hpp"
#include "obs/health.hpp"
#include "obs/log.hpp"
#include "obs/pipeline_metrics.hpp"
#include "obs/stopwatch.hpp"
#include "util/checkpoint.hpp"
#include "util/rng.hpp"

namespace tzgeo::forum {

namespace {

/// Campaign liveness: the heartbeat fires once per poll, so the stall
/// threshold must cover one whole sweep (index + every thread walk)
/// under simulated latency, not one page fetch.
obs::Health::ComponentId monitor_health() {
  static const obs::Health::ComponentId id =
      obs::Health::global().component("forum.monitor", 120'000'000'000ull);
  return id;
}

/// Diagnostic sites, registered once.  Levels are the event severity;
/// per-second budgets keep a flapping forum from flooding the ring.
struct MonitorLogSites {
  obs::Log::SiteId resumed = obs::Log::kInvalidSite;
  obs::Log::SiteId poll_failed = obs::Log::kInvalidSite;
  obs::Log::SiteId checkpoint_written = obs::Log::kInvalidSite;
  obs::Log::SiteId budget_exhausted = obs::Log::kInvalidSite;
  obs::Log::SiteId campaign_done = obs::Log::kInvalidSite;
};

const MonitorLogSites& monitor_log_sites() {
  static const MonitorLogSites sites = [] {
    obs::Log& log = obs::Log::global();
    MonitorLogSites s;
    s.resumed = log.site("forum.monitor.resumed", obs::LogLevel::kInfo);
    s.poll_failed = log.site("forum.monitor.poll_failed", obs::LogLevel::kWarn);
    s.checkpoint_written = log.site("forum.monitor.checkpoint_written", obs::LogLevel::kDebug);
    s.budget_exhausted = log.site("forum.monitor.budget_exhausted", obs::LogLevel::kError, 0);
    s.campaign_done = log.site("forum.monitor.campaign_done", obs::LogLevel::kInfo, 0);
    return s;
  }();
  return sites;
}

/// Monitor checkpoint payload format generation (util::Checkpoint framing
/// carries its own version on top; bump this when the payload layout
/// changes).  v2: sweep-state codec shared with the fleet (clock and
/// extra moved after the state block).
constexpr std::uint32_t kMonitorCheckpointVersion = 2;

[[nodiscard]] std::string encode_checkpoint(const SweepState& state, std::int64_t clock_millis,
                                            const std::string& extra) {
  util::ByteWriter writer;
  encode_sweep_state(writer, state);
  writer.i64(clock_millis);
  writer.str(extra);
  return writer.take();
}

/// Decodes a checkpoint payload into (state, clock_millis, extra).
/// Throws util::CheckpointError{kMalformed/kTruncated} on anything off.
void decode_checkpoint(std::string_view payload, const std::string& onion, SweepState& state,
                       std::int64_t& clock_millis, std::string& extra) {
  util::ByteReader reader{payload};
  decode_sweep_state(reader, state);
  clock_millis = reader.i64();
  extra = reader.str();
  if (!reader.done()) {
    throw util::CheckpointError(util::CheckpointErrorCode::kMalformed,
                                "trailing bytes after monitor checkpoint payload");
  }
  if (state.dump.onion != onion) {
    throw util::CheckpointError(
        util::CheckpointErrorCode::kMalformed,
        "checkpoint is for " + state.dump.onion + ", not " + onion);
  }
}

void write_monitor_checkpoint(const MonitorOptions& options, const SweepState& state,
                              std::int64_t clock_millis) {
  const obs::Stopwatch watch;
  const std::string extra =
      options.checkpoint_extra ? options.checkpoint_extra() : std::string{};
  util::write_checkpoint_file(options.checkpoint_path,
                              encode_checkpoint(state, clock_millis, extra),
                              kMonitorCheckpointVersion);
  const obs::PipelineMetrics& metrics = obs::PipelineMetrics::get();
  obs::MetricsRegistry& registry = obs::MetricsRegistry::global();
  registry.add(metrics.forum_checkpoint_writes);
  registry.observe(metrics.forum_checkpoint_write_us, watch.elapsed_us());
  obs::Log::global().write(monitor_log_sites().checkpoint_written, "monitor checkpoint persisted",
                           {obs::field("next_poll", state.next_poll),
                            obs::field("records", state.dump.records.size()),
                            obs::field("write_us", watch.elapsed_us())});
}

}  // namespace

ScrapeDump monitor_forum(tor::OnionTransport& transport, const std::string& onion,
                         const MonitorOptions& options) {
  if (options.poll_interval_seconds <= 0 || options.duration_seconds <= 0) {
    throw std::invalid_argument("monitor_forum: interval and duration must be positive");
  }
  const obs::PipelineMetrics& metrics = obs::PipelineMetrics::get();
  obs::MetricsRegistry& registry = obs::MetricsRegistry::global();
  const bool checkpointing = !options.checkpoint_path.empty();
  const std::size_t cadence = options.checkpoint_every_polls > 0
                                  ? options.checkpoint_every_polls
                                  : std::size_t{1};
  SweepOptions sweep_options;
  sweep_options.max_pages_per_poll = options.max_pages_per_poll;
  sweep_options.thread_quarantine_after = options.thread_quarantine_after;
  sweep_options.thread_quarantine_cooldown_polls = options.thread_quarantine_cooldown_polls;
  sweep_options.jitter_key = util::hash64(onion);

  SweepState state;
  bool resumed = false;
  if (checkpointing && std::filesystem::exists(options.checkpoint_path)) {
    const std::string payload =
        util::read_checkpoint_file(options.checkpoint_path, kMonitorCheckpointVersion);
    std::int64_t clock_millis = 0;
    std::string extra;
    decode_checkpoint(payload, onion, state, clock_millis, extra);
    // Rejoin the campaign's timeline exactly; every later poll then
    // replays bit-identically (schedule-pinned time + per-poll epochs).
    transport.clock().set_millis(clock_millis);
    if (options.restore_extra) options.restore_extra(extra);
    registry.add(metrics.forum_checkpoint_resumes);
    obs::Log::global().write(monitor_log_sites().resumed, "campaign resumed from checkpoint",
                             {obs::field("onion", onion),
                              obs::field("next_poll", state.next_poll),
                              obs::field("records", state.dump.records.size())});
    resumed = true;
  }
  if (!resumed) {
    state.dump.onion = onion;
    state.t0 = transport.clock().now_seconds();
    state.end_time = state.t0 + options.duration_seconds;
  }

  std::size_t attempts_this_run = 0;
  std::vector<ScrapeRecord> committed;
  const obs::Health::WorkScope campaign_work(obs::Health::global(), monitor_health());
  // A fresh campaign supersedes any failure latched by a previous one.
  obs::Health::global().clear_failed(monitor_health());
  for (;;) {
    if (state.next_poll > 0 && transport.clock().now_seconds() >= state.end_time) break;
    // Poll n is pinned to its schedule slot: latency jitter from earlier
    // sweeps is erased at every boundary (set_seconds never rewinds; a
    // sweep that overruns its slot just starts late, deterministically).
    const std::int64_t scheduled = state.t0 + state.next_poll * options.poll_interval_seconds;
    transport.clock().set_seconds(scheduled);
    transport.begin_epoch(static_cast<std::uint64_t>(scheduled));

    committed.clear();
    const SweepResult result =
        try_sweep(transport, onion, state, state.baseline_done, sweep_options, committed);
    obs::Health::global().beat(monitor_health());
    bool budget_exhausted = false;
    if (result == SweepResult::kFailed) {
      ++state.consecutive_failed;
      budget_exhausted = options.max_consecutive_failed_polls > 0 &&
                         state.consecutive_failed >= options.max_consecutive_failed_polls;
      obs::Log::global().write(monitor_log_sites().poll_failed, "poll sweep aborted",
                               {obs::field("poll", state.next_poll),
                                obs::field("consecutive_failed", state.consecutive_failed)});
    } else {
      if (state.consecutive_failed > 0) registry.add(metrics.forum_poll_recoveries);
      state.consecutive_failed = 0;
      // The baseline (backlog census) must be complete before recording
      // starts: a partial baseline would later mistake unseen backlog for
      // fresh posts.
      if (!state.baseline_done && result == SweepResult::kFull) state.baseline_done = true;
      if (options.on_commit && !committed.empty()) options.on_commit(committed);
    }

    ++state.next_poll;
    ++attempts_this_run;
    if (checkpointing &&
        (static_cast<std::uint64_t>(state.next_poll) % cadence == 0 || budget_exhausted)) {
      write_monitor_checkpoint(options, state, transport.clock().now_millis());
    }
    if (budget_exhausted) {
      obs::Log::global().write(monitor_log_sites().budget_exhausted,
                               "failure budget exhausted; campaign aborted",
                               {obs::field("onion", onion),
                                obs::field("consecutive_failed", state.consecutive_failed)});
      obs::Health::global().mark_failed(monitor_health(), "consecutive failed polls");
      throw CrawlError(CrawlErrorCategory::kBudgetExhausted, onion, "",
                       std::to_string(state.consecutive_failed) +
                           " consecutive failed polls");
    }
    if (options.halt_after_polls > 0 && attempts_this_run >= options.halt_after_polls) {
      // Chaos hook: simulate the process dying right here.  Deliberately
      // no extra checkpoint write — resume sees exactly what the cadence
      // left on disk.
      throw CrawlError(CrawlErrorCategory::kHalted, onion, "",
                       "halt_after_polls chaos hook fired");
    }
  }

  if (checkpointing) {
    // Campaign complete: the checkpoint has served its purpose, and a
    // stale file must not hijack an unrelated future run.
    std::error_code ignored;
    std::filesystem::remove(options.checkpoint_path, ignored);
  }
  obs::Log::global().write(monitor_log_sites().campaign_done, "campaign complete",
                           {obs::field("onion", onion),
                            obs::field("polls", state.dump.polls),
                            obs::field("records", state.dump.records.size()),
                            obs::field("polls_failed", state.dump.polls_failed)});
  return state.dump;
}

}  // namespace tzgeo::forum
