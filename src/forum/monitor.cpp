#include "forum/monitor.hpp"

#include <filesystem>
#include <map>
#include <stdexcept>
#include <utility>

#include "forum/error.hpp"
#include "forum/parser.hpp"
#include "obs/health.hpp"
#include "obs/log.hpp"
#include "obs/pipeline_metrics.hpp"
#include "obs/stopwatch.hpp"
#include "obs/trace.hpp"
#include "util/checkpoint.hpp"

namespace tzgeo::forum {

namespace {

/// Campaign liveness: the heartbeat fires once per poll, so the stall
/// threshold must cover one whole sweep (index + every thread walk)
/// under simulated latency, not one page fetch.
obs::Health::ComponentId monitor_health() {
  static const obs::Health::ComponentId id =
      obs::Health::global().component("forum.monitor", 120'000'000'000ull);
  return id;
}

/// Diagnostic sites, registered once.  Levels are the event severity;
/// per-second budgets keep a flapping forum from flooding the ring.
struct MonitorLogSites {
  obs::Log::SiteId resumed = obs::Log::kInvalidSite;
  obs::Log::SiteId poll_failed = obs::Log::kInvalidSite;
  obs::Log::SiteId thread_quarantined = obs::Log::kInvalidSite;
  obs::Log::SiteId checkpoint_written = obs::Log::kInvalidSite;
  obs::Log::SiteId budget_exhausted = obs::Log::kInvalidSite;
  obs::Log::SiteId campaign_done = obs::Log::kInvalidSite;
};

const MonitorLogSites& monitor_log_sites() {
  static const MonitorLogSites sites = [] {
    obs::Log& log = obs::Log::global();
    MonitorLogSites s;
    s.resumed = log.site("forum.monitor.resumed", obs::LogLevel::kInfo);
    s.poll_failed = log.site("forum.monitor.poll_failed", obs::LogLevel::kWarn);
    s.thread_quarantined = log.site("forum.monitor.thread_quarantined", obs::LogLevel::kWarn);
    s.checkpoint_written = log.site("forum.monitor.checkpoint_written", obs::LogLevel::kDebug);
    s.budget_exhausted = log.site("forum.monitor.budget_exhausted", obs::LogLevel::kError, 0);
    s.campaign_done = log.site("forum.monitor.campaign_done", obs::LogLevel::kInfo, 0);
    return s;
  }();
  return sites;
}

/// Monitor checkpoint payload format generation (util::Checkpoint framing
/// carries its own version on top; bump this when the payload layout
/// changes).
constexpr std::uint32_t kMonitorCheckpointVersion = 1;

/// Everything a campaign needs to continue after a crash.
struct MonitorState {
  std::int64_t t0 = 0;        ///< campaign start (schedule origin)
  std::int64_t end_time = 0;  ///< t0 + duration
  std::int64_t next_poll = 0; ///< index of the next scheduled poll
  bool baseline_done = false;
  std::size_t consecutive_failed = 0;
  std::set<std::uint64_t> seen;
  /// thread id -> consecutive failed walks (degradation ladder).
  std::map<std::uint64_t, std::uint32_t> quarantine;
  ScrapeDump dump;
};

enum class SweepResult {
  kFull,     ///< every thread walked and committed
  kPartial,  ///< some threads skipped/failed; the rest committed
  kFailed,   ///< index unreachable or page cap: nothing new committed
};

[[nodiscard]] std::string encode_checkpoint(const MonitorState& state,
                                            std::int64_t clock_millis,
                                            const std::string& extra) {
  util::ByteWriter writer;
  writer.str(state.dump.onion);
  writer.str(state.dump.forum_name);
  writer.i64(state.t0);
  writer.i64(state.end_time);
  writer.i64(state.next_poll);
  writer.i64(clock_millis);
  writer.u8(state.baseline_done ? 1 : 0);
  writer.u64(state.consecutive_failed);
  writer.u64(state.seen.size());
  for (const std::uint64_t id : state.seen) writer.u64(id);
  writer.u64(state.quarantine.size());
  for (const auto& [thread_id, strikes] : state.quarantine) {
    writer.u64(thread_id);
    writer.u32(strikes);
  }
  writer.u64(state.dump.pages_fetched);
  writer.u64(state.dump.malformed_posts);
  writer.u64(state.dump.polls);
  writer.u64(state.dump.polls_failed);
  writer.u64(state.dump.polls_partial);
  writer.u64(state.dump.threads_quarantined);
  writer.u64(state.dump.records.size());
  for (const ScrapeRecord& record : state.dump.records) {
    writer.u64(record.post_id);
    writer.u64(record.thread_id);
    writer.str(record.author);
    writer.u8(record.display_time.has_value() ? 1 : 0);
    if (record.display_time.has_value()) {
      const tz::CivilDateTime& when = *record.display_time;
      writer.i64(when.date.year);
      writer.i64(when.date.month);
      writer.i64(when.date.day);
      writer.i64(when.hour);
      writer.i64(when.minute);
      writer.i64(when.second);
    }
    writer.i64(record.observed_utc);
  }
  writer.str(extra);
  return writer.take();
}

/// Decodes a checkpoint payload into (state, clock_millis, extra).
/// Throws util::CheckpointError{kMalformed/kTruncated} on anything off.
void decode_checkpoint(std::string_view payload, const std::string& onion,
                       MonitorState& state, std::int64_t& clock_millis, std::string& extra) {
  util::ByteReader reader{payload};
  state.dump.onion = reader.str();
  state.dump.forum_name = reader.str();
  state.t0 = reader.i64();
  state.end_time = reader.i64();
  state.next_poll = reader.i64();
  clock_millis = reader.i64();
  state.baseline_done = reader.u8() != 0;
  state.consecutive_failed = static_cast<std::size_t>(reader.u64());
  const std::uint64_t seen_count = reader.u64();
  for (std::uint64_t i = 0; i < seen_count; ++i) state.seen.insert(reader.u64());
  const std::uint64_t quarantine_count = reader.u64();
  for (std::uint64_t i = 0; i < quarantine_count; ++i) {
    const std::uint64_t thread_id = reader.u64();
    state.quarantine[thread_id] = reader.u32();
  }
  state.dump.pages_fetched = static_cast<std::size_t>(reader.u64());
  state.dump.malformed_posts = static_cast<std::size_t>(reader.u64());
  state.dump.polls = static_cast<std::size_t>(reader.u64());
  state.dump.polls_failed = static_cast<std::size_t>(reader.u64());
  state.dump.polls_partial = static_cast<std::size_t>(reader.u64());
  state.dump.threads_quarantined = static_cast<std::size_t>(reader.u64());
  const std::uint64_t record_count = reader.u64();
  state.dump.records.reserve(static_cast<std::size_t>(record_count));
  for (std::uint64_t i = 0; i < record_count; ++i) {
    ScrapeRecord record;
    record.post_id = reader.u64();
    record.thread_id = reader.u64();
    record.author = reader.str();
    if (reader.u8() != 0) {
      tz::CivilDateTime when;
      when.date.year = static_cast<std::int32_t>(reader.i64());
      when.date.month = static_cast<std::int32_t>(reader.i64());
      when.date.day = static_cast<std::int32_t>(reader.i64());
      when.hour = static_cast<std::int32_t>(reader.i64());
      when.minute = static_cast<std::int32_t>(reader.i64());
      when.second = static_cast<std::int32_t>(reader.i64());
      record.display_time = when;
    }
    record.observed_utc = reader.i64();
    state.dump.records.push_back(std::move(record));
  }
  extra = reader.str();
  if (!reader.done()) {
    throw util::CheckpointError(util::CheckpointErrorCode::kMalformed,
                                "trailing bytes after monitor checkpoint payload");
  }
  if (state.dump.onion != onion) {
    throw util::CheckpointError(
        util::CheckpointErrorCode::kMalformed,
        "checkpoint is for " + state.dump.onion + ", not " + onion);
  }
  if (state.end_time < state.t0 || state.next_poll < 1 ||
      state.dump.polls < state.dump.polls_failed) {
    throw util::CheckpointError(util::CheckpointErrorCode::kMalformed,
                                "monitor checkpoint decoded to impossible state");
  }
}

void write_monitor_checkpoint(const MonitorOptions& options, const MonitorState& state,
                              std::int64_t clock_millis) {
  const obs::Stopwatch watch;
  const std::string extra =
      options.checkpoint_extra ? options.checkpoint_extra() : std::string{};
  util::write_checkpoint_file(options.checkpoint_path,
                              encode_checkpoint(state, clock_millis, extra),
                              kMonitorCheckpointVersion);
  const obs::PipelineMetrics& metrics = obs::PipelineMetrics::get();
  obs::MetricsRegistry& registry = obs::MetricsRegistry::global();
  registry.add(metrics.forum_checkpoint_writes);
  registry.observe(metrics.forum_checkpoint_write_us, watch.elapsed_us());
  obs::Log::global().write(monitor_log_sites().checkpoint_written, "monitor checkpoint persisted",
                           {obs::field("next_poll", state.next_poll),
                            obs::field("records", state.dump.records.size()),
                            obs::field("write_us", watch.elapsed_us())});
}

/// Walks one thread tail-first, staging everything; throws CrawlError /
/// tor::TransportError on any page it cannot fetch or parse.
void walk_thread(tor::OnionTransport& transport, const std::string& onion,
                 const ThreadRef& thread, const std::set<std::uint64_t>& seen, bool record,
                 const std::function<tor::Response(const std::string&)>& fetch_page,
                 std::set<std::uint64_t>& fresh, std::vector<ScrapeRecord>& staged,
                 std::size_t& malformed) {
  // Newest posts are on the last page; walk backwards until a page with
  // no unseen posts (or page 1).
  for (std::size_t page = thread.pages; page >= 1; --page) {
    const std::string path =
        "/thread/" + std::to_string(thread.id) + "?page=" + std::to_string(page);
    const tor::Response response = fetch_page(path);
    const auto parsed = parse_thread_page(
        response.body, tz::from_utc_seconds(transport.clock().now_seconds()).date);
    if (!parsed) {
      throw CrawlError(CrawlErrorCategory::kUnparsable, onion, path, "unparsable thread page");
    }
    malformed += record ? parsed->malformed_posts : 0;

    bool any_new = false;
    for (const auto& post : parsed->posts) {
      if (seen.count(post.id) != 0 || !fresh.insert(post.id).second) continue;
      any_new = true;
      if (!record) continue;
      ScrapeRecord entry;
      entry.post_id = post.id;
      entry.thread_id = parsed->thread_id;
      entry.author = post.author;
      entry.display_time = post.display_time;  // typically absent (kHidden)
      entry.observed_utc = transport.clock().now_seconds();
      staged.push_back(std::move(entry));
    }
    if (!any_new || page == 1) break;
  }
}

/// One polling sweep under the degradation ladder.  The index must be
/// readable (otherwise the sweep fails outright: no thread list, nothing
/// to commit).  Each thread is then walked independently: a thread that
/// fails is skipped and its quarantine strike count grows, the rest of the
/// sweep commits thread-by-thread, so an abort mid-thread can never mark a
/// post seen without recording it.
[[nodiscard]] SweepResult laddered_sweep(tor::OnionTransport& transport,
                                         const std::string& onion, MonitorState& state,
                                         bool record, const MonitorOptions& options,
                                         std::vector<ScrapeRecord>& committed) {
  const obs::PipelineMetrics& metrics = obs::PipelineMetrics::get();
  obs::MetricsRegistry& registry = obs::MetricsRegistry::global();

  std::size_t pages_this_poll = 0;
  const std::function<tor::Response(const std::string&)> fetch_page =
      [&](const std::string& path) {
        if (++pages_this_poll > options.max_pages_per_poll) {
          throw CrawlError(CrawlErrorCategory::kPageCap, onion, path,
                           "per-poll page cap exceeded");
        }
        ++state.dump.pages_fetched;
        registry.add(metrics.forum_pages_fetched);
        tor::Response response = transport.fetch(onion, tor::Request{"GET", path, ""});
        if (response.status != 200) {
          throw CrawlError(CrawlErrorCategory::kFetchFailed, onion, path,
                           "status " + std::to_string(response.status));
        }
        return response;
      };

  // Rung 0: the index.  Without a thread list there is nothing to degrade
  // to — any failure here fails the sweep.
  std::vector<ThreadRef> threads;
  try {
    std::size_t index_pages = 1;
    for (std::size_t page = 1; page <= index_pages; ++page) {
      const std::string path = "/index?page=" + std::to_string(page);
      const tor::Response response = fetch_page(path);
      const auto parsed = parse_index_page(response.body);
      if (!parsed) {
        throw CrawlError(CrawlErrorCategory::kUnparsable, onion, path, "unparsable index");
      }
      index_pages = parsed->pages;
      threads.insert(threads.end(), parsed->threads.begin(), parsed->threads.end());
    }
  } catch (const std::exception&) {
    return SweepResult::kFailed;
  }

  // Rung 1: per-thread walks with quarantine.  A quarantined thread is
  // only re-probed on cooldown polls; everything else proceeds.
  const bool cooldown_poll =
      options.thread_quarantine_cooldown_polls > 0 &&
      static_cast<std::uint64_t>(state.next_poll) %
              options.thread_quarantine_cooldown_polls == 0;
  bool degraded = false;
  for (const auto& thread : threads) {
    const auto strikes = state.quarantine.find(thread.id);
    const bool quarantined = options.thread_quarantine_after > 0 &&
                             strikes != state.quarantine.end() &&
                             strikes->second >= options.thread_quarantine_after;
    if (quarantined && !cooldown_poll) {
      ++state.dump.threads_quarantined;
      registry.add(metrics.forum_threads_quarantined);
      degraded = true;
      continue;
    }

    std::set<std::uint64_t> fresh;
    std::vector<ScrapeRecord> staged;
    std::size_t malformed = 0;
    try {
      walk_thread(transport, onion, thread, state.seen, record, fetch_page, fresh, staged,
                  malformed);
    } catch (const CrawlError& error) {
      if (error.category() == CrawlErrorCategory::kPageCap) {
        // The page budget is sweep-wide: once spent, the remaining threads
        // cannot be fetched either.  Threads already committed stand.
        return SweepResult::kFailed;
      }
      const std::uint32_t strikes = ++state.quarantine[thread.id];
      obs::Log::global().write(monitor_log_sites().thread_quarantined,
                               "thread walk failed; strike recorded",
                               {obs::field("thread", thread.id),
                                obs::field("strikes", strikes),
                                obs::field("error", error.what())});
      degraded = true;
      continue;
    } catch (const std::exception& error) {  // tor::TransportError and parser faults
      const std::uint32_t strikes = ++state.quarantine[thread.id];
      obs::Log::global().write(monitor_log_sites().thread_quarantined,
                               "thread walk failed; strike recorded",
                               {obs::field("thread", thread.id),
                                obs::field("strikes", strikes),
                                obs::field("error", error.what())});
      degraded = true;
      continue;
    }

    // Rung 2: commit this thread.  Per-thread granularity keeps the
    // invariant that a post marked seen is always either backlog or
    // recorded, no matter where the sweep stops.
    state.seen.merge(fresh);
    state.dump.malformed_posts += malformed;
    registry.add(metrics.forum_parse_failures, malformed);
    for (ScrapeRecord& entry : staged) {
      committed.push_back(entry);
      state.dump.records.push_back(std::move(entry));
    }
    state.quarantine.erase(thread.id);
  }
  return degraded ? SweepResult::kPartial : SweepResult::kFull;
}

/// Runs one sweep and does the poll-level accounting.
[[nodiscard]] SweepResult try_sweep(tor::OnionTransport& transport, const std::string& onion,
                                    MonitorState& state, bool record,
                                    const MonitorOptions& options,
                                    std::vector<ScrapeRecord>& committed) {
  const obs::PipelineMetrics& metrics = obs::PipelineMetrics::get();
  obs::MetricsRegistry& registry = obs::MetricsRegistry::global();
  const obs::ScopedSpan poll_span("forum.poll");
  const obs::Stopwatch watch;
  ++state.dump.polls;
  registry.add(metrics.forum_polls);

  const SweepResult result = laddered_sweep(transport, onion, state, record, options, committed);
  if (result == SweepResult::kFailed) {
    ++state.dump.polls_failed;
    registry.add(metrics.forum_polls_failed);
  } else if (result == SweepResult::kPartial) {
    ++state.dump.polls_partial;
    registry.add(metrics.forum_polls_partial);
  }
  registry.observe(metrics.forum_poll_us, watch.elapsed_us());
  return result;
}

}  // namespace

ScrapeDump monitor_forum(tor::OnionTransport& transport, const std::string& onion,
                         const MonitorOptions& options) {
  if (options.poll_interval_seconds <= 0 || options.duration_seconds <= 0) {
    throw std::invalid_argument("monitor_forum: interval and duration must be positive");
  }
  const obs::PipelineMetrics& metrics = obs::PipelineMetrics::get();
  obs::MetricsRegistry& registry = obs::MetricsRegistry::global();
  const bool checkpointing = !options.checkpoint_path.empty();
  const std::size_t cadence = options.checkpoint_every_polls > 0
                                  ? options.checkpoint_every_polls
                                  : std::size_t{1};

  MonitorState state;
  bool resumed = false;
  if (checkpointing && std::filesystem::exists(options.checkpoint_path)) {
    const std::string payload =
        util::read_checkpoint_file(options.checkpoint_path, kMonitorCheckpointVersion);
    std::int64_t clock_millis = 0;
    std::string extra;
    decode_checkpoint(payload, onion, state, clock_millis, extra);
    // Rejoin the campaign's timeline exactly; every later poll then
    // replays bit-identically (schedule-pinned time + per-poll epochs).
    transport.clock().set_millis(clock_millis);
    if (options.restore_extra) options.restore_extra(extra);
    registry.add(metrics.forum_checkpoint_resumes);
    obs::Log::global().write(monitor_log_sites().resumed, "campaign resumed from checkpoint",
                             {obs::field("onion", onion),
                              obs::field("next_poll", state.next_poll),
                              obs::field("records", state.dump.records.size())});
    resumed = true;
  }
  if (!resumed) {
    state.dump.onion = onion;
    state.t0 = transport.clock().now_seconds();
    state.end_time = state.t0 + options.duration_seconds;
  }

  std::size_t attempts_this_run = 0;
  std::vector<ScrapeRecord> committed;
  const obs::Health::WorkScope campaign_work(obs::Health::global(), monitor_health());
  // A fresh campaign supersedes any failure latched by a previous one.
  obs::Health::global().clear_failed(monitor_health());
  for (;;) {
    if (state.next_poll > 0 && transport.clock().now_seconds() >= state.end_time) break;
    // Poll n is pinned to its schedule slot: latency jitter from earlier
    // sweeps is erased at every boundary (set_seconds never rewinds; a
    // sweep that overruns its slot just starts late, deterministically).
    const std::int64_t scheduled = state.t0 + state.next_poll * options.poll_interval_seconds;
    transport.clock().set_seconds(scheduled);
    transport.begin_epoch(static_cast<std::uint64_t>(scheduled));

    committed.clear();
    const SweepResult result =
        try_sweep(transport, onion, state, state.baseline_done, options, committed);
    obs::Health::global().beat(monitor_health());
    bool budget_exhausted = false;
    if (result == SweepResult::kFailed) {
      ++state.consecutive_failed;
      budget_exhausted = options.max_consecutive_failed_polls > 0 &&
                         state.consecutive_failed >= options.max_consecutive_failed_polls;
      obs::Log::global().write(monitor_log_sites().poll_failed, "poll sweep aborted",
                               {obs::field("poll", state.next_poll),
                                obs::field("consecutive_failed", state.consecutive_failed)});
    } else {
      if (state.consecutive_failed > 0) registry.add(metrics.forum_poll_recoveries);
      state.consecutive_failed = 0;
      // The baseline (backlog census) must be complete before recording
      // starts: a partial baseline would later mistake unseen backlog for
      // fresh posts.
      if (!state.baseline_done && result == SweepResult::kFull) state.baseline_done = true;
      if (options.on_commit && !committed.empty()) options.on_commit(committed);
    }

    ++state.next_poll;
    ++attempts_this_run;
    if (checkpointing &&
        (static_cast<std::uint64_t>(state.next_poll) % cadence == 0 || budget_exhausted)) {
      write_monitor_checkpoint(options, state, transport.clock().now_millis());
    }
    if (budget_exhausted) {
      obs::Log::global().write(monitor_log_sites().budget_exhausted,
                               "failure budget exhausted; campaign aborted",
                               {obs::field("onion", onion),
                                obs::field("consecutive_failed", state.consecutive_failed)});
      obs::Health::global().mark_failed(monitor_health(), "consecutive failed polls");
      throw CrawlError(CrawlErrorCategory::kBudgetExhausted, onion, "",
                       std::to_string(state.consecutive_failed) +
                           " consecutive failed polls");
    }
    if (options.halt_after_polls > 0 && attempts_this_run >= options.halt_after_polls) {
      // Chaos hook: simulate the process dying right here.  Deliberately
      // no extra checkpoint write — resume sees exactly what the cadence
      // left on disk.
      throw CrawlError(CrawlErrorCategory::kHalted, onion, "",
                       "halt_after_polls chaos hook fired");
    }
  }

  if (checkpointing) {
    // Campaign complete: the checkpoint has served its purpose, and a
    // stale file must not hijack an unrelated future run.
    std::error_code ignored;
    std::filesystem::remove(options.checkpoint_path, ignored);
  }
  obs::Log::global().write(monitor_log_sites().campaign_done, "campaign complete",
                           {obs::field("onion", onion),
                            obs::field("polls", state.dump.polls),
                            obs::field("records", state.dump.records.size()),
                            obs::field("polls_failed", state.dump.polls_failed)});
  return state.dump;
}

}  // namespace tzgeo::forum
