#include "forum/calibration.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "forum/model.hpp"
#include "forum/parser.hpp"

namespace tzgeo::forum {

namespace {

/// One sweep over the Welcome thread (newest page first) looking for the
/// marker.  Returns the displayed time (possibly nullopt = no timestamp)
/// when found; disengaged `found` when the marker is not visible yet.
struct MarkerLookup {
  bool found = false;
  std::optional<tz::CivilDateTime> display_time;
};

[[nodiscard]] MarkerLookup scan_for_marker(tor::OnionTransport& transport,
                                           const std::string& onion,
                                           const std::string& marker) {
  const std::string base = "/thread/" + std::to_string(kWelcomeThreadId);
  const tor::Response first = transport.fetch(onion, tor::Request{"GET", base + "?page=1", ""});
  if (first.status != 200) throw std::runtime_error("calibration: Welcome thread unavailable");
  const auto parsed_first = parse_thread_page(
      first.body, tz::from_utc_seconds(transport.clock().now_seconds()).date);
  if (!parsed_first) throw std::runtime_error("calibration: unparsable Welcome thread");

  std::size_t page = parsed_first->pages;
  while (page >= 1) {
    const tor::Response response = transport.fetch(
        onion, tor::Request{"GET", base + "?page=" + std::to_string(page), ""});
    if (response.status != 200) throw std::runtime_error("calibration: page fetch failed");
    const auto parsed = parse_thread_page(
        response.body, tz::from_utc_seconds(transport.clock().now_seconds()).date);
    if (!parsed) throw std::runtime_error("calibration: unparsable Welcome page");
    for (auto it = parsed->posts.rbegin(); it != parsed->posts.rend(); ++it) {
      if (it->body == marker) return MarkerLookup{true, it->display_time};
    }
    if (page == 1) break;
    --page;
  }
  return MarkerLookup{};
}

/// Polls for the marker until the deadline.  A forum that delays post
/// publication (the random-delay countermeasure) shows the marker late.
[[nodiscard]] std::optional<tz::CivilDateTime> read_back_marker(
    tor::OnionTransport& transport, const std::string& onion, const std::string& marker,
    const CalibrationOptions& options) {
  const std::int64_t deadline =
      transport.clock().now_seconds() + options.marker_wait_seconds;
  for (;;) {
    const MarkerLookup lookup = scan_for_marker(transport, onion, marker);
    if (lookup.found) return lookup.display_time;
    if (transport.clock().now_seconds() >= deadline) {
      throw std::runtime_error("calibration: marker post not visible before the deadline");
    }
    transport.clock().advance_seconds(std::max<std::int64_t>(options.marker_poll_seconds, 1));
  }
}

[[nodiscard]] std::int64_t round_to(std::int64_t value, std::int64_t granule) {
  if (granule <= 1) return value;
  const double rounded = std::round(static_cast<double>(value) / static_cast<double>(granule));
  return static_cast<std::int64_t>(rounded) * granule;
}

}  // namespace

std::optional<CalibrationResult> calibrate_server_clock(tor::OnionTransport& transport,
                                                        const std::string& onion,
                                                        const CalibrationOptions& options) {
  if (options.probes < 1) throw std::invalid_argument("calibration: probes must be >= 1");

  // Sign up (idempotent per handle: a 409 means we already registered).
  const tor::Response signup = transport.fetch(
      onion, tor::Request{"POST", "/signup", "handle=" + options.handle});
  if (signup.status != 200 && signup.status != 409) {
    throw std::runtime_error("calibration: signup rejected with status " +
                             std::to_string(signup.status));
  }

  std::vector<std::int64_t> offsets;
  for (int probe = 0; probe < options.probes; ++probe) {
    const std::string marker =
        "calibration marker " + options.handle + " #" + std::to_string(probe);
    const std::int64_t before = transport.clock().now_seconds();
    const tor::Response posted = transport.fetch(
        onion, tor::Request{"POST", "/post",
                            "thread=" + std::to_string(kWelcomeThreadId) +
                                "&author=" + options.handle + "&text=" + marker});
    if (posted.status != 200) {
      throw std::runtime_error("calibration: marker post rejected with status " +
                               std::to_string(posted.status));
    }
    const std::int64_t after = transport.clock().now_seconds();

    const auto displayed = read_back_marker(transport, onion, marker, options);
    if (!displayed) return std::nullopt;  // timestamps hidden: monitor mode

    // The server stamped the post somewhere within [before, after].
    const std::int64_t own_estimate = (before + after) / 2;
    std::int64_t offset = tz::to_utc_seconds(*displayed) - own_estimate;
    // Relative timestamps ("today 18:03") can resolve to the wrong day
    // around a midnight boundary; real display offsets live in
    // [-12 h, +12 h], so fold whole-day errors away.
    while (offset > 12 * tz::kSecondsPerHour) offset -= tz::kSecondsPerDay;
    while (offset < -12 * tz::kSecondsPerHour) offset += tz::kSecondsPerDay;
    offsets.push_back(offset);
  }

  const auto [min_it, max_it] = std::minmax_element(offsets.begin(), offsets.end());
  CalibrationResult result;
  result.probe_spread_seconds = *max_it - *min_it;
  result.stable = result.probe_spread_seconds <= options.stability_tolerance_seconds;
  // Use the smallest probe: under a random *additive* delay the minimum is
  // the least-contaminated estimate.
  result.offset_seconds = round_to(*min_it, options.round_to_seconds);
  return result;
}

std::vector<TimedPost> to_utc_posts(const ScrapeDump& dump, std::int64_t offset_seconds) {
  std::vector<TimedPost> posts;
  posts.reserve(dump.records.size());
  for (const auto& record : dump.records) {
    TimedPost post;
    post.author = record.author;
    post.utc_time = record.display_time
                        ? tz::to_utc_seconds(*record.display_time) - offset_seconds
                        : record.observed_utc;
    posts.push_back(std::move(post));
  }
  return posts;
}

std::vector<TimedPost> to_utc_posts_observed(const ScrapeDump& dump) {
  std::vector<TimedPost> posts;
  posts.reserve(dump.records.size());
  for (const auto& record : dump.records) {
    posts.push_back(TimedPost{record.author, record.observed_utc});
  }
  return posts;
}

}  // namespace tzgeo::forum
