#include "forum/sweep.hpp"

#include <functional>
#include <utility>

#include "forum/error.hpp"
#include "forum/parser.hpp"
#include "obs/log.hpp"
#include "obs/pipeline_metrics.hpp"
#include "obs/stopwatch.hpp"
#include "obs/trace.hpp"
#include "util/rng.hpp"

namespace tzgeo::forum {

namespace {

/// Diagnostic site for thread strikes, registered once.
obs::Log::SiteId thread_quarantined_site() {
  static const obs::Log::SiteId id =
      obs::Log::global().site("forum.monitor.thread_quarantined", obs::LogLevel::kWarn);
  return id;
}

/// Walks one thread tail-first, staging everything; throws CrawlError /
/// tor::TransportError on any page it cannot fetch or parse.
void walk_thread(tor::OnionTransport& transport, const std::string& onion,
                 const ThreadRef& thread, const std::set<std::uint64_t>& seen, bool record,
                 const std::function<tor::Response(const std::string&)>& fetch_page,
                 std::set<std::uint64_t>& fresh, std::vector<ScrapeRecord>& staged,
                 std::size_t& malformed) {
  // Newest posts are on the last page; walk backwards until a page with
  // no unseen posts (or page 1).
  for (std::size_t page = thread.pages; page >= 1; --page) {
    const std::string path =
        "/thread/" + std::to_string(thread.id) + "?page=" + std::to_string(page);
    const tor::Response response = fetch_page(path);
    const auto parsed = parse_thread_page(
        response.body, tz::from_utc_seconds(transport.clock().now_seconds()).date);
    if (!parsed) {
      throw CrawlError(CrawlErrorCategory::kUnparsable, onion, path, "unparsable thread page");
    }
    malformed += record ? parsed->malformed_posts : 0;

    bool any_new = false;
    for (const auto& post : parsed->posts) {
      if (seen.count(post.id) != 0 || !fresh.insert(post.id).second) continue;
      any_new = true;
      if (!record) continue;
      ScrapeRecord entry;
      entry.post_id = post.id;
      entry.thread_id = parsed->thread_id;
      entry.author = post.author;
      entry.display_time = post.display_time;  // typically absent (kHidden)
      entry.observed_utc = transport.clock().now_seconds();
      staged.push_back(std::move(entry));
    }
    if (!any_new || page == 1) break;
  }
}

/// One polling sweep under the degradation ladder.  The index must be
/// readable (otherwise the sweep fails outright: no thread list, nothing
/// to commit).  Each thread is then walked independently: a thread that
/// fails is skipped and its quarantine strike count grows, the rest of the
/// sweep commits thread-by-thread, so an abort mid-thread can never mark a
/// post seen without recording it.
[[nodiscard]] SweepResult laddered_sweep(tor::OnionTransport& transport,
                                         const std::string& onion, SweepState& state,
                                         bool record, const SweepOptions& options,
                                         std::vector<ScrapeRecord>& committed) {
  const obs::PipelineMetrics& metrics = obs::PipelineMetrics::get();
  obs::MetricsRegistry& registry = obs::MetricsRegistry::global();

  std::size_t pages_this_poll = 0;
  const std::function<tor::Response(const std::string&)> fetch_page =
      [&](const std::string& path) {
        if (++pages_this_poll > options.max_pages_per_poll) {
          throw CrawlError(CrawlErrorCategory::kPageCap, onion, path,
                           "per-poll page cap exceeded");
        }
        ++state.dump.pages_fetched;
        registry.add(metrics.forum_pages_fetched);
        tor::Response response = transport.fetch(onion, tor::Request{"GET", path, ""});
        if (response.status != 200) {
          throw CrawlError(CrawlErrorCategory::kFetchFailed, onion, path,
                           "status " + std::to_string(response.status));
        }
        return response;
      };

  // Rung 0: the index.  Without a thread list there is nothing to degrade
  // to — any failure here fails the sweep.
  std::vector<ThreadRef> threads;
  try {
    std::size_t index_pages = 1;
    for (std::size_t page = 1; page <= index_pages; ++page) {
      const std::string path = "/index?page=" + std::to_string(page);
      const tor::Response response = fetch_page(path);
      const auto parsed = parse_index_page(response.body);
      if (!parsed) {
        throw CrawlError(CrawlErrorCategory::kUnparsable, onion, path, "unparsable index");
      }
      index_pages = parsed->pages;
      threads.insert(threads.end(), parsed->threads.begin(), parsed->threads.end());
    }
  } catch (const std::exception&) {
    return SweepResult::kFailed;
  }

  // Rung 1: per-thread walks with quarantine.  A quarantined thread is
  // only re-probed on its jittered cooldown slot; everything else
  // proceeds.
  bool degraded = false;
  for (const auto& thread : threads) {
    const auto strikes = state.quarantine.find(thread.id);
    const bool quarantined = options.thread_quarantine_after > 0 &&
                             strikes != state.quarantine.end() &&
                             strikes->second >= options.thread_quarantine_after;
    const bool reprobe = is_reprobe_poll(static_cast<std::uint64_t>(state.next_poll),
                                         options.thread_quarantine_cooldown_polls,
                                         options.jitter_key ^ thread.id);
    if (quarantined && !reprobe) {
      ++state.dump.threads_quarantined;
      registry.add(metrics.forum_threads_quarantined);
      degraded = true;
      continue;
    }

    std::set<std::uint64_t> fresh;
    std::vector<ScrapeRecord> staged;
    std::size_t malformed = 0;
    try {
      walk_thread(transport, onion, thread, state.seen, record, fetch_page, fresh, staged,
                  malformed);
    } catch (const CrawlError& error) {
      if (error.category() == CrawlErrorCategory::kPageCap) {
        // The page budget is sweep-wide: once spent, the remaining threads
        // cannot be fetched either.  Threads already committed stand.
        return SweepResult::kFailed;
      }
      const std::uint32_t thread_strikes = ++state.quarantine[thread.id];
      obs::Log::global().write(thread_quarantined_site(),
                               "thread walk failed; strike recorded",
                               {obs::field("thread", thread.id),
                                obs::field("strikes", thread_strikes),
                                obs::field("error", error.what())});
      degraded = true;
      continue;
    } catch (const std::exception& error) {  // tor::TransportError and parser faults
      const std::uint32_t thread_strikes = ++state.quarantine[thread.id];
      obs::Log::global().write(thread_quarantined_site(),
                               "thread walk failed; strike recorded",
                               {obs::field("thread", thread.id),
                                obs::field("strikes", thread_strikes),
                                obs::field("error", error.what())});
      degraded = true;
      continue;
    }

    // Rung 2: commit this thread.  Per-thread granularity keeps the
    // invariant that a post marked seen is always either backlog or
    // recorded, no matter where the sweep stops.
    state.seen.merge(fresh);
    state.dump.malformed_posts += malformed;
    registry.add(metrics.forum_parse_failures, malformed);
    for (ScrapeRecord& entry : staged) {
      committed.push_back(entry);
      state.dump.records.push_back(std::move(entry));
    }
    state.quarantine.erase(thread.id);
  }
  return degraded ? SweepResult::kPartial : SweepResult::kFull;
}

}  // namespace

std::uint64_t cooldown_phase(std::uint64_t key, std::uint64_t cooldown) noexcept {
  // One splitmix64 pass decorrelates phases of adjacent keys (thread ids
  // and fleet indices are sequential); the modulo spreads them across the
  // window.
  std::uint64_t s = key;
  return util::splitmix64(s) % cooldown;
}

bool is_reprobe_poll(std::uint64_t poll, std::uint64_t cooldown, std::uint64_t key) noexcept {
  if (cooldown == 0) return false;
  return poll % cooldown == cooldown_phase(key, cooldown);
}

SweepResult try_sweep(tor::OnionTransport& transport, const std::string& onion,
                      SweepState& state, bool record, const SweepOptions& options,
                      std::vector<ScrapeRecord>& committed) {
  const obs::PipelineMetrics& metrics = obs::PipelineMetrics::get();
  obs::MetricsRegistry& registry = obs::MetricsRegistry::global();
  const obs::ScopedSpan poll_span("forum.poll");
  const obs::Stopwatch watch;
  ++state.dump.polls;
  registry.add(metrics.forum_polls);

  const SweepResult result = laddered_sweep(transport, onion, state, record, options, committed);
  if (result == SweepResult::kFailed) {
    ++state.dump.polls_failed;
    registry.add(metrics.forum_polls_failed);
  } else if (result == SweepResult::kPartial) {
    ++state.dump.polls_partial;
    registry.add(metrics.forum_polls_partial);
  }
  registry.observe(metrics.forum_poll_us, watch.elapsed_us());
  return result;
}

void encode_sweep_state(util::ByteWriter& writer, const SweepState& state) {
  writer.str(state.dump.onion);
  writer.str(state.dump.forum_name);
  writer.i64(state.t0);
  writer.i64(state.end_time);
  writer.i64(state.next_poll);
  writer.u8(state.baseline_done ? 1 : 0);
  writer.u64(state.consecutive_failed);
  writer.u64(state.seen.size());
  for (const std::uint64_t id : state.seen) writer.u64(id);
  writer.u64(state.quarantine.size());
  for (const auto& [thread_id, strikes] : state.quarantine) {
    writer.u64(thread_id);
    writer.u32(strikes);
  }
  writer.u64(state.dump.pages_fetched);
  writer.u64(state.dump.malformed_posts);
  writer.u64(state.dump.polls);
  writer.u64(state.dump.polls_failed);
  writer.u64(state.dump.polls_partial);
  writer.u64(state.dump.threads_quarantined);
  writer.u64(state.dump.records.size());
  for (const ScrapeRecord& record : state.dump.records) {
    writer.u64(record.post_id);
    writer.u64(record.thread_id);
    writer.str(record.author);
    writer.u8(record.display_time.has_value() ? 1 : 0);
    if (record.display_time.has_value()) {
      const tz::CivilDateTime& when = *record.display_time;
      writer.i64(when.date.year);
      writer.i64(when.date.month);
      writer.i64(when.date.day);
      writer.i64(when.hour);
      writer.i64(when.minute);
      writer.i64(when.second);
    }
    writer.i64(record.observed_utc);
  }
}

void decode_sweep_state(util::ByteReader& reader, SweepState& state) {
  state.dump.onion = reader.str();
  state.dump.forum_name = reader.str();
  state.t0 = reader.i64();
  state.end_time = reader.i64();
  state.next_poll = reader.i64();
  state.baseline_done = reader.u8() != 0;
  state.consecutive_failed = static_cast<std::size_t>(reader.u64());
  const std::uint64_t seen_count = reader.u64();
  for (std::uint64_t i = 0; i < seen_count; ++i) state.seen.insert(reader.u64());
  const std::uint64_t quarantine_count = reader.u64();
  for (std::uint64_t i = 0; i < quarantine_count; ++i) {
    const std::uint64_t thread_id = reader.u64();
    state.quarantine[thread_id] = reader.u32();
  }
  state.dump.pages_fetched = static_cast<std::size_t>(reader.u64());
  state.dump.malformed_posts = static_cast<std::size_t>(reader.u64());
  state.dump.polls = static_cast<std::size_t>(reader.u64());
  state.dump.polls_failed = static_cast<std::size_t>(reader.u64());
  state.dump.polls_partial = static_cast<std::size_t>(reader.u64());
  state.dump.threads_quarantined = static_cast<std::size_t>(reader.u64());
  const std::uint64_t record_count = reader.u64();
  state.dump.records.reserve(static_cast<std::size_t>(record_count));
  for (std::uint64_t i = 0; i < record_count; ++i) {
    ScrapeRecord record;
    record.post_id = reader.u64();
    record.thread_id = reader.u64();
    record.author = reader.str();
    if (reader.u8() != 0) {
      tz::CivilDateTime when;
      when.date.year = static_cast<std::int32_t>(reader.i64());
      when.date.month = static_cast<std::int32_t>(reader.i64());
      when.date.day = static_cast<std::int32_t>(reader.i64());
      when.hour = static_cast<std::int32_t>(reader.i64());
      when.minute = static_cast<std::int32_t>(reader.i64());
      when.second = static_cast<std::int32_t>(reader.i64());
      record.display_time = when;
    }
    record.observed_utc = reader.i64();
    state.dump.records.push_back(std::move(record));
  }
  if (state.end_time < state.t0 || state.next_poll < 1 ||
      state.dump.polls < state.dump.polls_failed) {
    throw util::CheckpointError(util::CheckpointErrorCode::kMalformed,
                                "sweep state decoded to impossible values");
  }
}

}  // namespace tzgeo::forum
