#include "forum/parser.hpp"

#include "util/strings.hpp"

namespace tzgeo::forum {

namespace {

[[nodiscard]] std::optional<std::uint64_t> parse_u64(std::string_view text) {
  const auto value = util::parse_int(text);
  if (!value || *value < 0) return std::nullopt;
  return static_cast<std::uint64_t>(*value);
}

[[nodiscard]] std::optional<std::size_t> parse_size(std::string_view text) {
  const auto value = parse_u64(text);
  if (!value) return std::nullopt;
  return static_cast<std::size_t>(*value);
}

}  // namespace

std::optional<std::string> attribute(std::string_view tag_header, std::string_view name) {
  const std::string needle = std::string{name} + "=\"";
  std::size_t pos = 0;
  const auto value = util::extract_between(tag_header, needle, "\"", pos);
  if (!value) return std::nullopt;
  return unescape_markup(std::string{*value});
}

std::optional<ParsedThreadPage> parse_thread_page(
    std::string_view markup, const std::optional<tz::CivilDate>& observer_today) {
  // Locate the <thread ...> header.
  std::size_t pos = 0;
  const auto thread_header = util::extract_between(markup, "<thread ", ">", pos);
  if (!thread_header) return std::nullopt;

  ParsedThreadPage result;
  const auto id = attribute(*thread_header, "id");
  const auto title = attribute(*thread_header, "title");
  const auto page = attribute(*thread_header, "page");
  const auto pages = attribute(*thread_header, "pages");
  if (!id || !page || !pages) return std::nullopt;
  const auto id_value = parse_u64(*id);
  const auto page_value = parse_size(*page);
  const auto pages_value = parse_size(*pages);
  if (!id_value || !page_value || !pages_value) return std::nullopt;
  result.thread_id = *id_value;
  result.title = title.value_or("");
  result.page = *page_value;
  result.pages = *pages_value;

  // Walk the <post ...>body</post> entries.
  for (;;) {
    const auto post_header = util::extract_between(markup, "<post ", ">", pos);
    if (!post_header) break;
    const std::size_t body_begin = pos;
    const std::size_t body_end = markup.find("</post>", body_begin);
    if (body_end == std::string_view::npos) {
      ++result.malformed_posts;
      break;
    }
    pos = body_end + 7;  // past "</post>"

    RenderedPost post;
    const auto post_id = attribute(*post_header, "id");
    const auto author = attribute(*post_header, "author");
    const auto parsed_id = post_id ? parse_u64(*post_id) : std::nullopt;
    if (!parsed_id || !author || author->empty()) {
      ++result.malformed_posts;
      continue;
    }
    post.id = *parsed_id;
    post.author = *author;
    if (const auto time_text = attribute(*post_header, "time")) {
      post.display_time = parse_timestamp_any(*time_text, observer_today);
      if (!post.display_time) {
        ++result.malformed_posts;
        continue;
      }
    } else if (post_header->find("notime") == std::string_view::npos) {
      // Neither a time attribute nor the explicit notime marker.
      ++result.malformed_posts;
      continue;
    }
    post.body = unescape_markup(std::string{markup.substr(body_begin, body_end - body_begin)});
    result.posts.push_back(std::move(post));
  }
  return result;
}

std::optional<ParsedIndexPage> parse_index_page(std::string_view markup) {
  std::size_t pos = 0;
  const auto index_header = util::extract_between(markup, "<index ", ">", pos);
  if (!index_header) return std::nullopt;

  ParsedIndexPage result;
  const auto page = attribute(*index_header, "page");
  const auto pages = attribute(*index_header, "pages");
  const auto page_value = page ? parse_size(*page) : std::nullopt;
  const auto pages_value = pages ? parse_size(*pages) : std::nullopt;
  if (!page_value || !pages_value) return std::nullopt;
  result.page = *page_value;
  result.pages = *pages_value;

  for (;;) {
    const auto ref_header = util::extract_between(markup, "<threadref ", "/>", pos);
    if (!ref_header) break;
    ThreadRef ref;
    const auto id = attribute(*ref_header, "id");
    const auto title = attribute(*ref_header, "title");
    const auto ref_pages = attribute(*ref_header, "pages");
    const auto id_value = id ? parse_u64(*id) : std::nullopt;
    const auto ref_pages_value = ref_pages ? parse_size(*ref_pages) : std::nullopt;
    if (!id_value || !ref_pages_value) continue;
    ref.id = *id_value;
    ref.title = title.value_or("");
    ref.pages = *ref_pages_value;
    result.threads.push_back(std::move(ref));
  }
  return result;
}

}  // namespace tzgeo::forum
