// Forum domain model: users, threads, posts, server configuration.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "timezone/civil.hpp"

namespace tzgeo::forum {

/// A registered forum member.
struct ForumUser {
  std::uint64_t id = 0;
  std::string handle;
};

/// One post.  `utc_time` is the true posting instant; what the server
/// *displays* depends on the timestamp policy below.
struct Post {
  std::uint64_t id = 0;
  std::uint64_t thread_id = 0;
  std::uint64_t author_id = 0;
  tz::UtcSeconds utc_time = 0;
  std::string body;
};

/// Access tiers, mirroring the boards of Section V: the Italian DarkNet
/// Community gates its Market section behind a 'Pro' subscription and its
/// Elite section behind 'Elite' membership; the Pedo Support Community
/// hides some sections entirely ("we have no data from that part of the
/// forum").  Anonymous visitors and fresh signups are kPublic.
enum class AccessTier : std::uint8_t { kPublic = 0, kPro = 1, kElite = 2 };

[[nodiscard]] const char* to_string(AccessTier tier) noexcept;

/// A discussion thread.
struct Thread {
  std::uint64_t id = 0;
  std::string title;
  std::string section;
  AccessTier tier = AccessTier::kPublic;
};

/// How the server renders post timestamps (Section V and Discussion VII).
enum class TimestampPolicy : std::uint8_t {
  kUtc,          ///< accurate timestamps already in UTC
  kServerLocal,  ///< timestamps in the server's (possibly shifted) clock
  kHidden,       ///< no timestamps shown — monitor mode required
  kRandomDelay,  ///< displayed (and shown) with a per-post random delay
};

[[nodiscard]] const char* to_string(TimestampPolicy policy) noexcept;

/// The textual format the server renders timestamps in.  Every real board
/// picks its own; the crawler's parser must auto-detect (Section V's five
/// forums span Russian, Italian and English software stacks).
enum class TimestampFormat : std::uint8_t {
  kIso,          ///< "2016-05-12 18:03:44"
  kEuropean,     ///< "12.05.2016 18:03:44"
  kUsAmPm,       ///< "05/12/2016 6:03:44 pm"
  kRelativeDay,  ///< "today 18:03:44" / "yesterday 18:03:44", else ISO
};

[[nodiscard]] const char* to_string(TimestampFormat format) noexcept;

/// Server-side configuration of a forum.
struct ForumConfig {
  std::string name;
  std::int32_t server_offset_minutes = 0;  ///< display clock minus UTC
  TimestampPolicy policy = TimestampPolicy::kServerLocal;
  TimestampFormat timestamp_format = TimestampFormat::kIso;
  std::size_t posts_per_page = 20;
  std::size_t threads_per_page = 25;  // tzgeo-lint: allow(magic-hours): pagination, not hours
  /// Maximum per-post delay for kRandomDelay, seconds.  The Discussion
  /// notes a delay must reach hours to be effective; default 6 h.
  std::int64_t max_random_delay_seconds = 6 * 3600;
  /// Deterministic salt for the per-post delays.
  std::uint64_t delay_salt = 0x9d2c5680u;
  /// Share of discussion threads gated behind the Pro / Elite tiers.
  /// Restricted threads are invisible to lower tiers (not just 403'd on
  /// read), as on the real boards.
  double pro_thread_fraction = 0.0;
  double elite_thread_fraction = 0.0;
  /// Requests allowed per rolling 60 s before the server answers 429
  /// (0 = unlimited).  Hidden services throttle scrapers aggressively;
  /// the transport backs off and retries (see TransportOptions).
  std::size_t rate_limit_per_minute = 0;
};

/// The id of the "Welcome" thread every forum starts with; the calibration
/// trick (Section V: "we sign up in the forum and write a post in the
/// Welcome or Spam thread") posts here.
inline constexpr std::uint64_t kWelcomeThreadId = 1;

}  // namespace tzgeo::forum
