// Typed crawl/monitor failures.
//
// The crawler and the monitor used to throw stringly-typed
// std::runtime_error, forcing callers (and the monitor's own degradation
// ladder) to dispatch on message text.  CrawlError carries the failure
// category and the onion/path it happened on, so recovery policy can
// branch on cause: a fetch failure quarantines one thread, a page-cap
// breach aborts the sweep, an exhausted error budget aborts the campaign.
// It derives from std::runtime_error, so existing catch sites keep
// working.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

namespace tzgeo::forum {

/// Why a crawl or monitor step failed.
enum class CrawlErrorCategory : std::uint8_t {
  kFetchFailed,      ///< transport gave up or the service answered non-200
  kUnparsable,       ///< page structure missing / destroyed
  kPageCap,          ///< safety cap on page fetches exceeded
  kBudgetExhausted,  ///< too many consecutive failed polls (monitor)
  kHalted,           ///< MonitorOptions::halt_after_polls crash hook fired
};

[[nodiscard]] const char* to_string(CrawlErrorCategory category) noexcept;

class CrawlError : public std::runtime_error {
 public:
  CrawlError(CrawlErrorCategory category, std::string onion, std::string path,
             const std::string& detail);

  [[nodiscard]] CrawlErrorCategory category() const noexcept { return category_; }
  /// The onion address the failure happened against (may be empty).
  [[nodiscard]] const std::string& onion() const noexcept { return onion_; }
  /// The request path involved, when the failure is page-scoped.
  [[nodiscard]] const std::string& path() const noexcept { return path_; }

 private:
  CrawlErrorCategory category_;
  std::string onion_;
  std::string path_;
};

}  // namespace tzgeo::forum
