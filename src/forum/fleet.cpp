#include "forum/fleet.hpp"

#include <algorithm>
#include <filesystem>
#include <set>
#include <stdexcept>
#include <utility>

#include "core/thread_pool.hpp"
#include "fault/injector.hpp"
#include "forum/error.hpp"
#include "obs/health.hpp"
#include "obs/log.hpp"
#include "obs/pipeline_metrics.hpp"
#include "obs/stopwatch.hpp"
#include "util/checkpoint.hpp"
#include "util/rng.hpp"

namespace tzgeo::forum {

namespace {

/// Fleet checkpoint payload format generation (the TZCM manifest framing
/// carries its own version on top; bump this when either the global entry
/// or the per-forum payload layout changes).
constexpr std::uint32_t kFleetCheckpointVersion = 1;

/// The manifest key of the fleet-global entry (schedule + roster); forum
/// names key everything else.  The leading underscores keep it out of any
/// plausible forum-name space.
constexpr const char* kFleetEntryKey = "__fleet__";

/// Salt folded into a forum's jitter key for its *fleet-level* re-probe
/// phase, so it decorrelates from the thread-level phases inside the same
/// forum (both are derived from the same per-forum key material).
constexpr std::uint64_t kForumReprobeSalt = 0x666c656574ull;  // "fleet"

/// Fleet scheduler liveness: one heartbeat per round; the threshold must
/// cover a whole round of parallel sweeps under simulated latency.
obs::Health::ComponentId fleet_health() {
  static const obs::Health::ComponentId id =
      obs::Health::global().component("forum.fleet", 300'000'000'000ull);
  return id;
}

/// Diagnostic sites, registered once.
struct FleetLogSites {
  obs::Log::SiteId resumed = obs::Log::kInvalidSite;
  obs::Log::SiteId forum_quarantined = obs::Log::kInvalidSite;
  obs::Log::SiteId forum_reinstated = obs::Log::kInvalidSite;
  obs::Log::SiteId forum_parked = obs::Log::kInvalidSite;
  obs::Log::SiteId sub_entry_parked = obs::Log::kInvalidSite;
  obs::Log::SiteId checkpoint_written = obs::Log::kInvalidSite;
  obs::Log::SiteId campaign_done = obs::Log::kInvalidSite;
};

const FleetLogSites& fleet_log_sites() {
  static const FleetLogSites sites = [] {
    obs::Log& log = obs::Log::global();
    FleetLogSites s;
    s.resumed = log.site("forum.fleet.resumed", obs::LogLevel::kInfo);
    s.forum_quarantined = log.site("forum.fleet.forum_quarantined", obs::LogLevel::kWarn);
    s.forum_reinstated = log.site("forum.fleet.forum_reinstated", obs::LogLevel::kInfo);
    s.forum_parked = log.site("forum.fleet.forum_parked", obs::LogLevel::kError, 0);
    s.sub_entry_parked = log.site("forum.fleet.sub_entry_parked", obs::LogLevel::kError, 0);
    s.checkpoint_written = log.site("forum.fleet.checkpoint_written", obs::LogLevel::kDebug);
    s.campaign_done = log.site("forum.fleet.campaign_done", obs::LogLevel::kInfo, 0);
    return s;
  }();
  return sites;
}

}  // namespace

const char* to_string(ForumStatus status) noexcept {
  switch (status) {
    case ForumStatus::kActive: return "active";
    case ForumStatus::kQuarantined: return "quarantined";
    case ForumStatus::kParked: return "parked";
  }
  return "unknown";
}

std::size_t fair_share(std::size_t total, std::size_t claimants, std::size_t index) noexcept {
  if (claimants == 0 || index >= claimants) return 0;
  return total / claimants + (index < total % claimants ? 1 : 0);
}

/// Everything one forum campaign owns inside the fleet.  Each forum runs
/// its own clock and transport so sweeps parallelize without sharing
/// mutable state; determinism then only needs the schedule (not the
/// worker interleaving) to be fixed.
struct Fleet::Forum {
  FleetForumSpec spec;
  std::int64_t t0 = 0;  ///< start + stagger(i)
  util::SimClock clock;
  std::unique_ptr<fault::FaultInjector> injector;
  std::unique_ptr<tor::OnionTransport> transport;
  std::string onion;
  SweepOptions sweep_options;
  SweepState state;

  ForumStatus status = ForumStatus::kActive;
  std::size_t reprobe_failures = 0;  ///< failed re-probes while quarantined
  std::size_t rounds_skipped = 0;
  std::size_t parked_at_round = 0;
  std::string park_reason;
  obs::Health::ComponentId health = obs::Health::kInvalidComponent;

  // Scratch for the round in flight (written by the worker, read by the
  // serial ladder phase).
  bool polled = false;
  SweepResult result = SweepResult::kFailed;
  std::vector<ScrapeRecord> committed;

  /// This forum's fleet-level re-probe phase key.
  [[nodiscard]] std::uint64_t reprobe_key() const noexcept {
    return sweep_options.jitter_key ^ kForumReprobeSalt;
  }
};

Fleet::Fleet(const tor::Consensus& consensus, std::vector<FleetForumSpec> specs,
             FleetOptions options)
    : options_(std::move(options)) {
  if (options_.poll_interval_seconds <= 0 || options_.duration_seconds <= 0) {
    throw std::invalid_argument("Fleet: interval and duration must be positive");
  }
  if (specs.empty()) throw std::invalid_argument("Fleet: no forums");
  {
    std::set<std::string> names;
    for (const auto& spec : specs) {
      if (spec.name.empty() || spec.name == kFleetEntryKey || !names.insert(spec.name).second) {
        throw std::invalid_argument("Fleet: forum names must be unique and non-empty");
      }
    }
  }
  rounds_total_ =
      static_cast<std::size_t>(options_.duration_seconds / options_.poll_interval_seconds) + 1;

  const std::size_t count = specs.size();
  forums_.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    auto forum = std::make_unique<Forum>();
    forum->spec = std::move(specs[i]);
    // Staggered slots: forum i polls at t0 + interval * i / N + n * interval,
    // spreading the fleet's load evenly across every interval.
    forum->t0 = options_.start_time_seconds +
                options_.poll_interval_seconds * static_cast<std::int64_t>(i) /
                    static_cast<std::int64_t>(count);
    forum->clock = util::SimClock{options_.start_time_seconds};

    // All per-forum randomness (transport RNG epochs, jitter phases) is a
    // pure function of (fleet seed, forum name) — independent of roster
    // order, sibling traffic, and worker interleaving.
    std::uint64_t mix = options_.seed ^ util::hash64(forum->spec.name);
    const std::uint64_t forum_seed = util::splitmix64(mix);
    tor::TransportOptions transport_options = options_.transport;
    if (forum->spec.fault_plan != nullptr) {
      forum->injector = std::make_unique<fault::FaultInjector>(*forum->spec.fault_plan);
      transport_options.fault_injector = forum->injector.get();
    }
    forum->transport = std::make_unique<tor::OnionTransport>(consensus, forum->clock,
                                                             forum_seed, transport_options);
    forum->onion = forum->transport->host(forum->spec.service_key, forum->spec.handler);

    forum->sweep_options.max_pages_per_poll = options_.max_pages_per_poll;
    forum->sweep_options.thread_quarantine_after = options_.thread_quarantine_after;
    forum->sweep_options.thread_quarantine_cooldown_polls =
        options_.thread_quarantine_cooldown_polls;
    forum->sweep_options.jitter_key = forum_seed;

    forum->state.dump.onion = forum->onion;
    forum->state.dump.forum_name = forum->spec.name;
    forum->state.t0 = forum->t0;
    forum->state.end_time = forum->t0 + options_.duration_seconds;

    // Past the component cap this degrades to a no-op id (beats are
    // guarded), so a 200-forum fleet is fine — the fleet-level component
    // and gauges still cover it.
    forum->health = obs::Health::global().component("fleet." + forum->spec.name,
                                                    300'000'000'000ull);
    forums_.push_back(std::move(forum));
  }

  if (!options_.checkpoint_path.empty() &&
      std::filesystem::exists(options_.checkpoint_path)) {
    resume_from_checkpoint();
  }
  refresh_gauges();
}

Fleet::~Fleet() = default;

void Fleet::resume_from_checkpoint() {
  const obs::PipelineMetrics& metrics = obs::PipelineMetrics::get();
  obs::MetricsRegistry& registry = obs::MetricsRegistry::global();
  const std::vector<util::ManifestEntryStatus> entries =
      util::read_manifest_checkpoint_file(options_.checkpoint_path, kFleetCheckpointVersion);

  // The global entry carries the schedule and the roster; without it the
  // file cannot be matched to this campaign, so it gets no per-entry
  // mercy: unreadable global = unusable checkpoint.
  const util::ManifestEntryStatus* global = nullptr;
  for (const auto& entry : entries) {
    if (entry.key == kFleetEntryKey) global = &entry;
  }
  if (global == nullptr) {
    throw util::CheckpointError(util::CheckpointErrorCode::kMalformed,
                                "fleet checkpoint has no __fleet__ entry");
  }
  if (!global->ok) {
    throw util::CheckpointError(global->error,
                                "fleet checkpoint global entry unreadable: " + global->detail);
  }
  {
    util::ByteReader reader{global->payload};
    const std::int64_t start = reader.i64();
    const std::int64_t interval = reader.i64();
    const std::int64_t duration = reader.i64();
    const std::uint64_t next_round = reader.u64();
    const std::uint64_t roster = reader.u64();
    bool matches = start == options_.start_time_seconds &&
                   interval == options_.poll_interval_seconds &&
                   duration == options_.duration_seconds && roster == forums_.size();
    if (matches) {
      for (const auto& forum : forums_) {
        if (reader.str() != forum->spec.name) {
          matches = false;
          break;
        }
      }
    }
    if (!matches || !reader.done() || next_round > rounds_total_) {
      throw util::CheckpointError(util::CheckpointErrorCode::kMalformed,
                                  "fleet checkpoint is for a different campaign");
    }
    next_round_ = static_cast<std::size_t>(next_round);
  }

  std::size_t parked_on_resume = 0;
  for (std::size_t i = 0; i < forums_.size(); ++i) {
    Forum* const forum = forums_[i].get();
    const util::ManifestEntryStatus* entry = nullptr;
    for (const auto& candidate : entries) {
      if (candidate.key == forum->spec.name) entry = &candidate;
    }
    if (entry == nullptr) continue;  // never checkpointed: starts fresh

    // Blast-radius containment: a corrupt sub-entry parks this one forum
    // (its history is gone, continuing would double-record), everything
    // else resumes byte-identically.
    std::string damage;
    if (!entry->ok) {
      damage = std::string{util::to_string(entry->error)} + ": " + entry->detail;
    } else {
      try {
        util::ByteReader reader{entry->payload};
        const std::uint8_t status = reader.u8();
        if (status > static_cast<std::uint8_t>(ForumStatus::kParked)) {
          throw util::CheckpointError(util::CheckpointErrorCode::kMalformed,
                                      "impossible forum status");
        }
        forum->status = static_cast<ForumStatus>(status);
        forum->reprobe_failures = static_cast<std::size_t>(reader.u64());
        forum->rounds_skipped = static_cast<std::size_t>(reader.u64());
        forum->parked_at_round = static_cast<std::size_t>(reader.u64());
        forum->park_reason = reader.str();
        const std::int64_t clock_millis = reader.i64();
        const std::string extra = reader.str();
        decode_sweep_state(reader, forum->state);
        if (!reader.done() || forum->state.dump.onion != forum->onion) {
          throw util::CheckpointError(util::CheckpointErrorCode::kMalformed,
                                      "sub-entry does not match its forum");
        }
        // Rejoin this forum's timeline exactly; later polls then replay
        // bit-identically (schedule-pinned time + per-poll epochs).
        forum->clock.set_millis(clock_millis);
        if (options_.restore_extra) options_.restore_extra(i, extra);
      } catch (const util::CheckpointError& error) {
        damage = error.what();
        forum->state = SweepState{};
        forum->state.dump.onion = forum->onion;
        forum->state.dump.forum_name = forum->spec.name;
        forum->state.t0 = forum->t0;
        forum->state.end_time = forum->t0 + options_.duration_seconds;
      }
    }
    if (!damage.empty()) {
      forum->status = ForumStatus::kParked;
      forum->parked_at_round = next_round_;
      forum->park_reason = "checkpoint sub-entry unreadable (" + damage + ")";
      // Keep the re-encoded state decodable: a parked forum still rides
      // in every later checkpoint frame.
      forum->state.next_poll = std::max<std::int64_t>(
          std::int64_t{1}, static_cast<std::int64_t>(next_round_));
      ++parked_on_resume;
      registry.add(metrics.fleet_sub_entries_quarantined);
      obs::Health::global().mark_failed(forum->health, "checkpoint sub-entry unreadable");
      obs::Log::global().write(fleet_log_sites().sub_entry_parked,
                               "forum parked: checkpoint sub-entry unreadable",
                               {obs::field("forum", forum->spec.name),
                                obs::field("detail", damage)});
    }
  }

  registry.add(metrics.fleet_checkpoint_resumes);
  obs::Log::global().write(fleet_log_sites().resumed, "fleet resumed from checkpoint",
                           {obs::field("next_round", next_round_),
                            obs::field("forums", forums_.size()),
                            obs::field("parked_on_resume", parked_on_resume)});
}

void Fleet::write_fleet_checkpoint() {
  const obs::Stopwatch watch;
  std::vector<util::ManifestEntry> entries;
  entries.reserve(forums_.size() + 1);
  {
    util::ByteWriter writer;
    writer.i64(options_.start_time_seconds);
    writer.i64(options_.poll_interval_seconds);
    writer.i64(options_.duration_seconds);
    writer.u64(next_round_);
    writer.u64(forums_.size());
    for (const auto& forum : forums_) writer.str(forum->spec.name);
    entries.push_back({kFleetEntryKey, writer.take()});
  }
  for (std::size_t i = 0; i < forums_.size(); ++i) {
    const Forum& forum = *forums_[i];
    util::ByteWriter writer;
    writer.u8(static_cast<std::uint8_t>(forum.status));
    writer.u64(forum.reprobe_failures);
    writer.u64(forum.rounds_skipped);
    writer.u64(forum.parked_at_round);
    writer.str(forum.park_reason);
    writer.i64(forum.clock.now_millis());
    writer.str(options_.checkpoint_extra ? options_.checkpoint_extra(i) : std::string{});
    encode_sweep_state(writer, forum.state);
    entries.push_back({forum.spec.name, writer.take()});
  }
  util::write_manifest_checkpoint_file(options_.checkpoint_path, entries,
                                       kFleetCheckpointVersion);

  const obs::PipelineMetrics& metrics = obs::PipelineMetrics::get();
  obs::MetricsRegistry& registry = obs::MetricsRegistry::global();
  registry.add(metrics.fleet_checkpoint_writes);
  registry.observe(metrics.fleet_checkpoint_write_us, watch.elapsed_us());
  obs::Log::global().write(fleet_log_sites().checkpoint_written, "fleet checkpoint persisted",
                           {obs::field("next_round", next_round_),
                            obs::field("forums", forums_.size()),
                            obs::field("write_us", watch.elapsed_us())});
}

void Fleet::refresh_gauges() const {
  std::size_t active = 0;
  std::size_t quarantined = 0;
  std::size_t parked = 0;
  for (const auto& forum : forums_) {
    switch (forum->status) {
      case ForumStatus::kActive: ++active; break;
      case ForumStatus::kQuarantined: ++quarantined; break;
      case ForumStatus::kParked: ++parked; break;
    }
  }
  const obs::PipelineMetrics& metrics = obs::PipelineMetrics::get();
  obs::MetricsRegistry& registry = obs::MetricsRegistry::global();
  registry.set(metrics.fleet_forums_active, active);
  registry.set(metrics.fleet_forums_quarantined, quarantined);
  registry.set(metrics.fleet_forums_parked, parked);
}

bool Fleet::forum_due(const Forum& forum, std::size_t round) const noexcept {
  switch (forum.status) {
    case ForumStatus::kActive:
      return true;
    case ForumStatus::kQuarantined:
      // Re-probe once per cooldown window, at this forum's jittered phase
      // — a mass quarantine does not thunder back on the same round.
      return is_reprobe_poll(round, options_.forum_quarantine_cooldown_rounds,
                             forum.reprobe_key());
    case ForumStatus::kParked:
      return false;
  }
  return false;
}

void Fleet::poll_round() {
  const std::size_t round = next_round_;
  if (round >= rounds_total_) {
    throw std::logic_error("Fleet::poll_round called after the campaign ended");
  }
  const obs::PipelineMetrics& metrics = obs::PipelineMetrics::get();
  obs::MetricsRegistry& registry = obs::MetricsRegistry::global();
  const obs::Health::WorkScope round_work(obs::Health::global(), fleet_health());
  const obs::Stopwatch round_watch;

  // Phase 1 (serial): fix this round's roster and divide the fetch
  // budget.  The remainder — and, when forums outnumber the budget, the
  // zero shares — rotate with the round index so no forum is starved by
  // its position.
  std::vector<std::size_t> due;
  due.reserve(forums_.size());
  for (std::size_t i = 0; i < forums_.size(); ++i) {
    Forum& forum = *forums_[i];
    forum.polled = false;
    forum.committed.clear();
    if (forum_due(forum, round)) {
      due.push_back(i);
    } else if (forum.status == ForumStatus::kQuarantined) {
      ++forum.rounds_skipped;
      registry.add(metrics.fleet_polls_skipped);
    }
  }
  std::vector<std::size_t> shares(due.size(), 0);
  if (options_.request_budget_per_round > 0) {
    std::vector<std::size_t> starved;
    for (std::size_t rank = 0; rank < due.size(); ++rank) {
      shares[rank] = fair_share(options_.request_budget_per_round, due.size(),
                                (rank + round) % due.size());
      if (shares[rank] == 0) starved.push_back(due[rank]);
    }
    // A zero share cannot be expressed as a transport allowance (0 means
    // unlimited), and a zero-fetch sweep would fail and strike the ladder
    // for a scheduling artifact: drop starved forums from the round.
    for (std::size_t rank = due.size(); rank-- > 0;) {
      if (shares[rank] == 0) {
        ++forums_[due[rank]]->rounds_skipped;
        registry.add(metrics.fleet_polls_skipped);
        due.erase(due.begin() + static_cast<std::ptrdiff_t>(rank));
        shares.erase(shares.begin() + static_cast<std::ptrdiff_t>(rank));
      }
    }
  }

  // Phase 2 (parallel): every due forum sweeps on its own clock and
  // transport.  Determinism needs no ordering here — each sweep is a pure
  // function of (forum seed, scheduled second, service state).
  core::ThreadPool::global().for_chunks(
      due.size(), due.size(), [&](std::size_t begin, std::size_t end) {
        for (std::size_t rank = begin; rank < end; ++rank) {
          Forum& forum = *forums_[due[rank]];
          const obs::Stopwatch poll_watch;
          // Pin the sweep to its schedule slot: latency jitter from
          // earlier rounds is erased at every boundary (set_seconds never
          // rewinds; an overrun slot just starts late, deterministically).
          const std::int64_t scheduled =
              forum.t0 +
              static_cast<std::int64_t>(round) * options_.poll_interval_seconds;
          forum.clock.set_seconds(scheduled);
          forum.transport->begin_epoch(static_cast<std::uint64_t>(scheduled));
          forum.transport->set_epoch_request_allowance(shares[rank]);
          forum.state.next_poll = static_cast<std::int64_t>(round);
          forum.result = try_sweep(*forum.transport, forum.onion, forum.state,
                                   forum.state.baseline_done, forum.sweep_options,
                                   forum.committed);
          forum.polled = true;
          obs::Health::global().beat(forum.health);
          registry.observe(metrics.fleet_forum_poll_us, poll_watch.elapsed_us());
        }
      });

  // Phase 3 (serial, spec order): advance the fleet ladder and hand the
  // committed records out.  Serial so on_commit sees a deterministic
  // order no matter how the workers interleaved.
  for (std::size_t i = 0; i < forums_.size(); ++i) {
    Forum& forum = *forums_[i];
    if (forum.status != ForumStatus::kParked) {
      forum.state.next_poll = static_cast<std::int64_t>(round) + 1;
    }
    if (!forum.polled) continue;

    if (forum.result == SweepResult::kFailed) {
      ++forum.state.consecutive_failed;
      if (forum.status == ForumStatus::kQuarantined) {
        ++forum.reprobe_failures;
        if (options_.forum_park_after > 0 &&
            forum.reprobe_failures >= options_.forum_park_after) {
          forum.status = ForumStatus::kParked;
          forum.parked_at_round = round;
          forum.park_reason = std::to_string(forum.reprobe_failures) +
                              " failed re-probes after quarantine";
          obs::Health::global().mark_failed(forum.health, "parked: re-probes exhausted");
          obs::Log::global().write(fleet_log_sites().forum_parked,
                                   "forum parked for the campaign",
                                   {obs::field("forum", forum.spec.name),
                                    obs::field("round", round),
                                    obs::field("reason", forum.park_reason)});
        }
      } else if (options_.forum_quarantine_after > 0 &&
                 forum.state.consecutive_failed >= options_.forum_quarantine_after) {
        forum.status = ForumStatus::kQuarantined;
        forum.reprobe_failures = 0;
        obs::Log::global().write(fleet_log_sites().forum_quarantined,
                                 "forum quarantined after consecutive failed sweeps",
                                 {obs::field("forum", forum.spec.name),
                                  obs::field("round", round),
                                  obs::field("consecutive_failed",
                                             forum.state.consecutive_failed)});
      }
    } else {
      if (forum.status == ForumStatus::kQuarantined) {
        obs::Log::global().write(fleet_log_sites().forum_reinstated,
                                 "quarantined forum answered its re-probe",
                                 {obs::field("forum", forum.spec.name),
                                  obs::field("round", round)});
      }
      forum.status = ForumStatus::kActive;
      forum.state.consecutive_failed = 0;
      forum.reprobe_failures = 0;
      // The baseline census must be complete before recording starts: a
      // partial baseline would mistake unseen backlog for fresh posts.
      if (!forum.state.baseline_done && forum.result == SweepResult::kFull) {
        forum.state.baseline_done = true;
      }
      if (options_.on_commit && !forum.committed.empty()) {
        options_.on_commit(i, forum.committed);
      }
    }
  }

  ++next_round_;
  ++rounds_this_run_;
  registry.add(metrics.fleet_rounds);
  registry.observe(metrics.fleet_round_us, round_watch.elapsed_us());
  refresh_gauges();

  const std::size_t cadence =
      options_.checkpoint_every_rounds > 0 ? options_.checkpoint_every_rounds : std::size_t{1};
  if (!options_.checkpoint_path.empty() && next_round_ % cadence == 0) {
    write_fleet_checkpoint();
  }
  if (options_.halt_after_rounds > 0 && rounds_this_run_ >= options_.halt_after_rounds &&
      !done()) {
    // Chaos hook: simulate the process dying right here.  Deliberately no
    // extra checkpoint write — resume sees exactly what the cadence left
    // on disk.
    throw CrawlError(CrawlErrorCategory::kHalted, "", "",
                     "halt_after_rounds chaos hook fired");
  }
}

FleetResult Fleet::finish() {
  if (!done()) throw std::logic_error("Fleet::finish called before the campaign ended");
  if (!options_.checkpoint_path.empty()) {
    // Campaign complete: the checkpoint has served its purpose, and a
    // stale file must not hijack an unrelated future run.
    std::error_code ignored;
    std::filesystem::remove(options_.checkpoint_path, ignored);
  }

  FleetResult result;
  result.rounds = rounds_total_;
  result.forums.reserve(forums_.size());
  for (auto& forum : forums_) {
    FleetForumOutcome outcome;
    outcome.name = forum->spec.name;
    outcome.onion = forum->onion;
    outcome.status = forum->status;
    outcome.rounds_polled = forum->state.dump.polls;
    outcome.rounds_skipped = forum->rounds_skipped;
    outcome.parked_at_round = forum->parked_at_round;
    outcome.park_reason = forum->park_reason;
    outcome.manifest = build_manifest(forum->state.dump);
    outcome.dump = std::move(forum->state.dump);
    switch (forum->status) {
      case ForumStatus::kActive: ++result.active; break;
      case ForumStatus::kQuarantined: ++result.quarantined; break;
      case ForumStatus::kParked: ++result.parked; break;
    }
    result.forums.push_back(std::move(outcome));
  }
  obs::Log::global().write(fleet_log_sites().campaign_done, "fleet campaign complete",
                           {obs::field("rounds", rounds_total_),
                            obs::field("active", result.active),
                            obs::field("quarantined", result.quarantined),
                            obs::field("parked", result.parked)});
  return result;
}

FleetResult Fleet::run() {
  while (!done()) poll_round();
  return finish();
}

std::vector<Fleet::ForumSnapshot> Fleet::snapshot() const {
  std::vector<ForumSnapshot> out;
  out.reserve(forums_.size());
  for (const auto& forum : forums_) {
    ForumSnapshot snap;
    snap.name = forum->spec.name;
    snap.status = forum->status;
    snap.polls = forum->state.dump.polls;
    snap.polls_failed = forum->state.dump.polls_failed;
    snap.records = forum->state.dump.records.size();
    snap.rounds_skipped = forum->rounds_skipped;
    snap.park_reason = forum->park_reason;
    out.push_back(std::move(snap));
  }
  return out;
}

}  // namespace tzgeo::forum
