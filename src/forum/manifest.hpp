// Scrape manifests and redundant-crawler convergence.
//
// A fleet campaign may point two independent crawlers at the same onion
// (redundancy against long outages on either side).  In the spirit of
// Gridcoin's scraper (ScraperFileManifest / ConvergedManifest:
// independent scrapers publish hashed part-manifests and converge on
// agreed state), each crawler's dump is summarized as a ScrapeManifest —
// one content-hashed part per post — and converge() reconciles two dumps
// into one agreed post set.
//
// The content hash deliberately covers only the *durable* fields of a
// post (post id, thread id, author, displayed time): observed_utc is the
// observer's own stamp and legitimately differs between two crawlers of
// the same board, so it must not make identical content look divergent.
// Two faulted crawlers therefore converge to the same manifest as one
// fault-free crawler as long as each post survived on at least one side.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "forum/crawler.hpp"

namespace tzgeo::forum {

/// Stable 64-bit hash of a post's durable fields (everything except
/// observed_utc).  The manifest key for dedup and conflict detection.
[[nodiscard]] std::uint64_t record_content_hash(const ScrapeRecord& record) noexcept;

/// One post's entry in a manifest.
struct ManifestPart {
  std::uint64_t post_id = 0;
  std::uint64_t content_hash = 0;

  [[nodiscard]] bool operator==(const ManifestPart& other) const = default;
};

/// The hashed summary of one crawler's dump: parts sorted by post id
/// plus an order-sensitive combined hash over all of them.  Two
/// manifests are "converged" when their combined hashes agree.
struct ScrapeManifest {
  std::string onion;
  std::string forum_name;
  std::vector<ManifestPart> parts;
  std::uint64_t combined_hash = 0;

  [[nodiscard]] bool operator==(const ScrapeManifest& other) const = default;
};

/// Builds the manifest of `dump` (sorts parts by post id; duplicate post
/// ids keep the smaller content hash, mirroring converge()).
[[nodiscard]] ScrapeManifest build_manifest(const ScrapeDump& dump);

/// Reconciles two redundant crawls of the same onion into one agreed
/// dump: the union of both post sets, deduplicated by post id.  A post
/// seen by both sides with the same content keeps the earlier
/// observed_utc (the better stamp); a content conflict (a garbled page
/// that parsed) resolves deterministically to the smaller content hash.
/// Records come back sorted by post id; page/poll counters are summed
/// (both crawlers really did that work).  Throws std::invalid_argument
/// when the dumps are for different onions.
[[nodiscard]] ScrapeDump converge(const ScrapeDump& a, const ScrapeDump& b);

}  // namespace tzgeo::forum
