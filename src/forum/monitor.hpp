// Monitor mode for forums that hide timestamps.
//
// Discussion Section VII: "it is enough to monitor the forum, see when
// posts are made and timestamp them ourselves. [...] One might need to
// monitor a sufficiently large number of days [...] in order to collect 30
// posts per user or more."  The monitor polls the board on an interval,
// detects posts that appeared since the previous poll, and stamps them
// with the observer's own clock.
#pragma once

#include <cstdint>
#include <set>
#include <string>

#include "forum/crawler.hpp"
#include "tor/transport.hpp"

namespace tzgeo::forum {

/// Monitoring schedule.
struct MonitorOptions {
  std::int64_t poll_interval_seconds = 1800;
  std::int64_t duration_seconds = 30 * 86400;
  std::size_t max_pages_per_poll = 50'000;
};

/// Runs the monitoring loop and returns the dump of *newly observed* posts
/// (the pre-existing backlog has no observable time and is skipped).
/// The stamping error is bounded by the poll interval.
///
/// A sweep that fails mid-flight (circuit drop, unparsable page, page cap)
/// is abandoned without side effects and counted in ScrapeDump::polls_failed;
/// the affected posts are picked up by the next successful sweep with a
/// stamping error grown by one interval per failure.  polls/polls_failed in
/// the returned dump summarize the loop's reliability.
[[nodiscard]] ScrapeDump monitor_forum(tor::OnionTransport& transport, const std::string& onion,
                                       const MonitorOptions& options = {});

}  // namespace tzgeo::forum
