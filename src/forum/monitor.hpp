// Monitor mode for forums that hide timestamps.
//
// Discussion Section VII: "it is enough to monitor the forum, see when
// posts are made and timestamp them ourselves. [...] One might need to
// monitor a sufficiently large number of days [...] in order to collect 30
// posts per user or more."  The monitor polls the board on an interval,
// detects posts that appeared since the previous poll, and stamps them
// with the observer's own clock.
//
// A months-long campaign must survive both the forum misbehaving and the
// observer crashing, so the monitor layers three robustness mechanisms:
//
//  * Degradation ladder.  A thread whose pages cannot be fetched or parsed
//    is skipped for this sweep (the rest of the sweep still commits, the
//    sweep counts as *partial*); a thread that keeps failing is
//    quarantined and only re-probed on cooldown polls; only a sweep that
//    cannot even read the index — or a run of consecutive failed sweeps
//    past the error budget — aborts.
//
//  * Crash-safe checkpoints.  With MonitorOptions::checkpoint_path set,
//    the monitor persists its full state (seen-post set, sweep cursor,
//    clock, quarantine, the dump so far, plus caller state via
//    checkpoint_extra) through util::write_checkpoint_file after every
//    checkpoint_every_polls-th poll.  A rerun with the same options
//    resumes from the file and — because every poll runs at its scheduled
//    time under a per-poll RNG epoch (tor::OnionTransport::begin_epoch) —
//    produces a dump byte-identical to the uninterrupted run.
//
//  * Deterministic replay.  Poll n is pinned to t0 + n * interval and its
//    transport/fault randomness is a pure function of (seed, schedule
//    time), never of how many requests earlier polls made.  This is what
//    makes kill/resume equivalence testable, and it assumes the poll
//    interval exceeds the forum's rate-limit window (DESIGN.md §11).
#pragma once

#include <cstdint>
#include <functional>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "forum/crawler.hpp"
#include "tor/transport.hpp"

namespace tzgeo::forum {

/// Monitoring schedule, robustness policy, and checkpoint wiring.
struct MonitorOptions {
  std::int64_t poll_interval_seconds = 1800;
  std::int64_t duration_seconds = 30 * 86400;
  std::size_t max_pages_per_poll = 50'000;

  /// Checkpoint file; empty disables checkpointing.  When the file already
  /// exists, monitor_forum resumes the campaign recorded in it (the file
  /// must be for the same onion).  Removed on successful completion.
  std::string checkpoint_path;
  /// Persist state every N-th poll (1 = after every poll).
  std::size_t checkpoint_every_polls = 1;

  /// Degradation ladder: quarantine a thread after this many consecutive
  /// failed walks (0 disables quarantine)...
  std::size_t thread_quarantine_after = 3;
  /// ...and re-probe each quarantined thread once per N-poll cooldown
  /// window (0 = never), at a per-thread deterministic phase (jittered so
  /// many quarantined threads spread their re-probes across the window
  /// instead of herding onto the same poll; see forum/sweep.hpp).
  std::size_t thread_quarantine_cooldown_polls = 8;
  /// Error budget: abort the campaign (CrawlError kBudgetExhausted) after
  /// this many *consecutive* failed sweeps.  0 = never abort, keep polling.
  std::size_t max_consecutive_failed_polls = 0;

  /// Crash hook for chaos tests: throw CrawlError{kHalted} after this many
  /// poll attempts *in this process run* (0 disables).  The throw happens
  /// after the poll's cadence-driven checkpoint (if any), with no extra
  /// out-of-cadence write — exactly what kill -9 after that poll leaves.
  std::size_t halt_after_polls = 0;

  /// Called after every committed sweep with the records committed by that
  /// sweep (empty while the baseline is being established).  Lets callers
  /// stream observations into e.g. core::IncrementalGeolocator.
  std::function<void(const std::vector<ScrapeRecord>&)> on_commit;
  /// Caller state rides inside the monitor's checkpoint so the pair
  /// commits atomically: checkpoint_extra() is serialized into every
  /// checkpoint write, restore_extra() replays it on resume.
  std::function<std::string()> checkpoint_extra;
  std::function<void(std::string_view)> restore_extra;
};

/// Runs the monitoring loop and returns the dump of *newly observed* posts
/// (the pre-existing backlog has no observable time and is skipped).
/// The stamping error is bounded by the poll interval.
///
/// Sweep outcomes: a *full* sweep commits everything; a *partial* sweep
/// commits every thread it could walk and skips the rest (counted in
/// polls_partial / threads_quarantined); a *failed* sweep (index
/// unreachable or page cap) commits nothing new and is counted in
/// polls_failed — affected posts are picked up by the next successful
/// sweep with a stamping error grown by one interval per failure.
///
/// Throws std::invalid_argument on bad options, CrawlError
/// {kBudgetExhausted} when max_consecutive_failed_polls is exceeded (state
/// is checkpointed first when checkpointing is on), CrawlError{kHalted}
/// from the halt_after_polls chaos hook, and util::CheckpointError when an
/// existing checkpoint file is corrupt or for a different campaign.
[[nodiscard]] ScrapeDump monitor_forum(tor::OnionTransport& transport, const std::string& onion,
                                       const MonitorOptions& options = {});

}  // namespace tzgeo::forum
