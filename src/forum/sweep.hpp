// One polling sweep of one forum, plus its serializable state.
//
// Extracted from the monitor so the same degradation ladder, per-thread
// commit granularity, and checkpoint codec serve both the single-forum
// campaign loop (monitor.cpp) and the fleet scheduler (fleet.cpp).  A
// sweep walks the index and every thread tail-first, commits thread by
// thread (a post marked seen is always either backlog or recorded, no
// matter where the sweep stops), and reports one of three outcomes:
// full, partial (threads skipped under quarantine), or failed (index
// unreachable or page cap — nothing new committed).
//
// Quarantine re-probes are jittered: a quarantined thread is re-probed
// on the poll where `poll % cooldown` equals a phase derived from
// (jitter_key, thread id) — a pure function of the seed material, so
// replay and kill/resume stay bit-identical, but a fleet of quarantined
// threads spreads its re-probes across the cooldown window instead of
// thundering back on the same poll.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "forum/crawler.hpp"
#include "tor/transport.hpp"
#include "util/checkpoint.hpp"

namespace tzgeo::forum {

/// Sweep-level policy (a strict subset of MonitorOptions; the monitor and
/// the fleet both project their options down to this).
struct SweepOptions {
  std::size_t max_pages_per_poll = 50'000;
  /// Quarantine a thread after this many consecutive failed walks
  /// (0 disables quarantine)...
  std::size_t thread_quarantine_after = 3;
  /// ...and re-probe quarantined threads once per N-poll cooldown window
  /// (0 = never), at a per-thread jittered phase.
  std::size_t thread_quarantine_cooldown_polls = 8;
  /// Seed material for the re-probe jitter; the monitor passes
  /// hash64(onion), the fleet mixes its own seed in.
  std::uint64_t jitter_key = 0;
};

/// Everything one forum campaign needs to continue after a crash.
struct SweepState {
  std::int64_t t0 = 0;         ///< campaign start (schedule origin)
  std::int64_t end_time = 0;   ///< t0 + duration
  std::int64_t next_poll = 0;  ///< index of the next scheduled poll
  bool baseline_done = false;
  std::size_t consecutive_failed = 0;
  std::set<std::uint64_t> seen;
  /// thread id -> consecutive failed walks (degradation ladder).
  std::map<std::uint64_t, std::uint32_t> quarantine;
  ScrapeDump dump;
};

enum class SweepResult {
  kFull,     ///< every thread walked and committed
  kPartial,  ///< some threads skipped/failed; the rest committed
  kFailed,   ///< index unreachable or page cap: nothing new committed
};

/// The jittered re-probe phase for `key` within a cooldown window: a
/// deterministic value in [0, cooldown).  Requires cooldown > 0.
[[nodiscard]] std::uint64_t cooldown_phase(std::uint64_t key, std::uint64_t cooldown) noexcept;

/// True when poll `poll` is the re-probe slot for `key` under an
/// N-poll cooldown (false when cooldown is 0).
[[nodiscard]] bool is_reprobe_poll(std::uint64_t poll, std::uint64_t cooldown,
                                   std::uint64_t key) noexcept;

/// Runs one sweep at the transport's current clock, committing into
/// `state` and appending this sweep's newly committed records to
/// `committed` (empty while `record` is false — the baseline census).
/// Does the poll-level metrics accounting; never throws for per-thread
/// failures (that is the ladder's job).
[[nodiscard]] SweepResult try_sweep(tor::OnionTransport& transport, const std::string& onion,
                                    SweepState& state, bool record, const SweepOptions& options,
                                    std::vector<ScrapeRecord>& committed);

/// Serializes `state` (including the dump) into `writer`; the inverse of
/// decode_sweep_state.  Field-for-field, so the monitor and the fleet
/// share one codec and one set of corruption tests.
void encode_sweep_state(util::ByteWriter& writer, const SweepState& state);

/// Decodes a sweep state; throws util::CheckpointError{kTruncated/
/// kMalformed} on anything off (impossible counters included).  The
/// caller checks campaign identity (onion) on top.
void decode_sweep_state(util::ByteReader& reader, SweepState& state);

}  // namespace tzgeo::forum
