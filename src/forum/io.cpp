#include "forum/io.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "forum/render.hpp"
#include "util/csv.hpp"
#include "util/strings.hpp"

namespace tzgeo::forum {

namespace {

constexpr std::string_view kHeaderLine = "post_id,thread_id,author,display_time,observed_utc";

}  // namespace

std::string dump_to_csv(const ScrapeDump& dump) {
  // forum= comes last and runs to end of line (names may contain spaces).
  std::string out = "# onion=" + dump.onion + " forum=" + dump.forum_name + "\n";
  out += std::string{kHeaderLine} + "\n";
  std::ostringstream body;
  util::CsvWriter writer{body};
  for (const auto& record : dump.records) {
    writer.write_row({std::to_string(record.post_id), std::to_string(record.thread_id),
                      record.author,
                      record.display_time ? format_timestamp(*record.display_time)
                                          : std::string{},
                      std::to_string(record.observed_utc)});
  }
  out += body.str();
  return out;
}

ScrapeDump dump_from_csv(std::string_view csv_text) {
  ScrapeDump dump;

  // Optional metadata comment line.
  if (util::starts_with(csv_text, "#")) {
    const std::size_t eol = csv_text.find('\n');
    const std::string_view comment = util::trim(
        csv_text.substr(1, eol == std::string_view::npos ? csv_text.size() - 1 : eol - 1));
    if (const auto forum_at = comment.find("forum="); forum_at != std::string_view::npos) {
      dump.forum_name = std::string{util::trim(comment.substr(forum_at + 6))};
    }
    for (const auto field : util::split(comment, ' ')) {
      if (util::starts_with(field, "onion=")) dump.onion = std::string{field.substr(6)};
    }
    csv_text = eol == std::string_view::npos ? std::string_view{} : csv_text.substr(eol + 1);
  }

  const util::CsvTable table = util::parse_csv(csv_text);
  if (table.header.empty() && table.rows.empty()) return dump;
  if (table.header.size() != 5) {
    throw std::invalid_argument("dump_from_csv: expected 5 columns");
  }

  for (const auto& row : table.rows) {
    const auto post_id = util::parse_int(row[0]);
    const auto thread_id = util::parse_int(row[1]);
    const std::string_view author = util::trim(row[2]);
    const auto observed = util::parse_int(row[4]);
    if (!post_id || *post_id < 0 || !thread_id || *thread_id < 0 || author.empty() ||
        !observed) {
      ++dump.malformed_posts;
      continue;
    }
    ScrapeRecord record;
    record.post_id = static_cast<std::uint64_t>(*post_id);
    record.thread_id = static_cast<std::uint64_t>(*thread_id);
    record.author = std::string{author};
    record.observed_utc = *observed;
    if (!row[3].empty()) {
      record.display_time = parse_timestamp(row[3]);
      if (!record.display_time) {
        ++dump.malformed_posts;
        continue;
      }
    }
    dump.records.push_back(std::move(record));
  }
  return dump;
}

void dump_to_csv_file(const ScrapeDump& dump, const std::string& path) {
  std::ofstream out{path, std::ios::binary};
  if (!out) throw std::runtime_error("dump_to_csv_file: cannot open " + path);
  out << dump_to_csv(dump);
  if (!out) throw std::runtime_error("dump_to_csv_file: write failed for " + path);
}

ScrapeDump dump_from_csv_file(const std::string& path) {
  std::ifstream in{path, std::ios::binary};
  if (!in) throw std::runtime_error("dump_from_csv_file: cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return dump_from_csv(buffer.str());
}

}  // namespace tzgeo::forum
