#include "forum/engine.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/rng.hpp"
#include "util/strings.hpp"

namespace tzgeo::forum {

namespace {

/// Section names a typical board of the paper's corpus would carry.
constexpr const char* kSections[] = {"Main", "Market", "Reception", "Bad Stuff", "Tech"};

/// Parses "a=1&b=two" into key/value pairs.
[[nodiscard]] std::map<std::string, std::string> parse_form(std::string_view body) {
  std::map<std::string, std::string> form;
  for (const auto field : util::split(body, '&')) {
    const auto eq = field.find('=');
    if (eq == std::string_view::npos) continue;
    form[std::string{field.substr(0, eq)}] = std::string{field.substr(eq + 1)};
  }
  return form;
}

/// Splits "/thread/7?page=2&as=probe" into segments, page, requester.
struct RoutedPath {
  std::vector<std::string> segments;
  std::size_t page = 1;
  std::string as_handle;  ///< empty = anonymous (public tier)
};

[[nodiscard]] RoutedPath route(std::string_view path) {
  RoutedPath routed;
  std::string_view base = path;
  if (const auto q = path.find('?'); q != std::string_view::npos) {
    base = path.substr(0, q);
    for (const auto param : util::split(path.substr(q + 1), '&')) {
      if (util::starts_with(param, "page=")) {
        if (const auto value = util::parse_int(param.substr(5)); value && *value >= 1) {
          routed.page = static_cast<std::size_t>(*value);
        }
      } else if (util::starts_with(param, "as=")) {
        routed.as_handle = std::string{param.substr(3)};
      }
    }
  }
  for (const auto segment : util::split(base, '/')) {
    if (!segment.empty()) routed.segments.emplace_back(segment);
  }
  return routed;
}

[[nodiscard]] tor::Response error_response(int status, std::string message) {
  return tor::Response{status, "<error>" + std::move(message) + "</error>\n"};
}

}  // namespace

ForumEngine::ForumEngine(ForumConfig config, const synth::Dataset& crowd)
    : config_(std::move(config)) {
  if (config_.posts_per_page == 0 || config_.threads_per_page == 0) {
    throw std::invalid_argument("ForumEngine: page sizes must be positive");
  }

  threads_.push_back(Thread{kWelcomeThreadId, "Welcome", "Reception", AccessTier::kPublic});
  const std::size_t discussion_threads =
      std::max<std::size_t>(3, crowd.users.size() / 4);
  const auto elite_pct = static_cast<std::uint64_t>(config_.elite_thread_fraction * 100.0);
  const auto pro_pct = static_cast<std::uint64_t>(config_.pro_thread_fraction * 100.0);
  for (std::size_t i = 0; i < discussion_threads; ++i) {
    Thread thread;
    thread.id = kWelcomeThreadId + 1 + i;
    thread.title = "discussion-" + std::to_string(i + 1);
    thread.section = kSections[i % std::size(kSections)];
    const std::uint64_t roll = util::hash64(config_.name + std::to_string(i)) % 100;
    if (roll < elite_pct) {
      thread.tier = AccessTier::kElite;
      thread.section = "Elite";
    } else if (roll < elite_pct + pro_pct) {
      thread.tier = AccessTier::kPro;
      thread.section = "Market";
    }
    threads_.push_back(std::move(thread));
  }

  for (const auto& persona : crowd.users) {
    const std::uint64_t user_id = next_user_id_++;
    const std::string handle = "member" + std::to_string(user_id);
    users_[user_id] = ForumUser{user_id, handle};
    by_handle_[handle] = user_id;
    persona_handles_[persona.id] = handle;
  }

  posts_.reserve(crowd.events.size());
  for (const auto& event : crowd.events) {
    const auto handle_it = persona_handles_.find(event.user);
    if (handle_it == persona_handles_.end()) continue;
    Post post;
    post.id = next_post_id_++;
    post.author_id = by_handle_.at(handle_it->second);
    post.utc_time = event.time;
    // Spread posts across discussion threads; a sliver lands in Welcome.
    const std::uint64_t pick = util::hash64(handle_it->second) ^ post.id * 0x9e37u;
    post.thread_id = (pick % 100 < 2)
                         ? kWelcomeThreadId
                         : kWelcomeThreadId + 1 + pick % discussion_threads;
    post.body = "post body " + std::to_string(post.id);
    posts_.push_back(std::move(post));
  }
  std::sort(posts_.begin(), posts_.end(), [this](const Post& a, const Post& b) {
    return visible_at(a) < visible_at(b);
  });
}

std::string ForumEngine::signup(const std::string& handle) {
  if (by_handle_.contains(handle)) {
    throw std::invalid_argument("ForumEngine: handle already taken: " + handle);
  }
  const std::uint64_t user_id = next_user_id_++;
  users_[user_id] = ForumUser{user_id, handle};
  by_handle_[handle] = user_id;
  return handle;
}

void ForumEngine::grant_tier(const std::string& handle, AccessTier tier) {
  if (!by_handle_.contains(handle)) {
    throw std::out_of_range("ForumEngine: unknown member: " + handle);
  }
  tiers_[handle] = tier;
}

AccessTier ForumEngine::tier_of_handle(const std::string& handle) const noexcept {
  const auto it = tiers_.find(handle);
  return it == tiers_.end() ? AccessTier::kPublic : it->second;
}

std::size_t ForumEngine::post_count_visible_to(AccessTier tier) const noexcept {
  std::size_t count = 0;
  for (const auto& post : posts_) {
    for (const auto& thread : threads_) {
      if (thread.id == post.thread_id) {
        if (thread.tier <= tier) ++count;
        break;
      }
    }
  }
  return count;
}

std::int64_t ForumEngine::random_delay_of(std::uint64_t post_id) const noexcept {
  if (config_.max_random_delay_seconds <= 0) return 0;
  std::uint64_t state = post_id ^ config_.delay_salt;
  return static_cast<std::int64_t>(util::splitmix64(state) %
                                   static_cast<std::uint64_t>(config_.max_random_delay_seconds));
}

tz::UtcSeconds ForumEngine::visible_at(const Post& post) const noexcept {
  if (config_.policy == TimestampPolicy::kRandomDelay) {
    return post.utc_time + random_delay_of(post.id);
  }
  return post.utc_time;
}

std::optional<tz::CivilDateTime> ForumEngine::display_time(const Post& post) const {
  const std::int64_t offset =
      static_cast<std::int64_t>(config_.server_offset_minutes) * tz::kSecondsPerMinute;
  switch (config_.policy) {
    case TimestampPolicy::kUtc:
      return tz::from_utc_seconds(post.utc_time);
    case TimestampPolicy::kServerLocal:
      return tz::from_utc_seconds(post.utc_time + offset);
    case TimestampPolicy::kHidden:
      return std::nullopt;
    case TimestampPolicy::kRandomDelay:
      return tz::from_utc_seconds(visible_at(post) + offset);
  }
  return std::nullopt;
}

std::vector<const Post*> ForumEngine::visible_posts(std::uint64_t thread_id,
                                                    std::int64_t now_utc) const {
  std::vector<const Post*> result;
  for (const auto& post : posts_) {
    if (visible_at(post) > now_utc) break;  // posts_ sorted by visible-at
    if (post.thread_id == thread_id) result.push_back(&post);
  }
  return result;
}

bool ForumEngine::rate_limited(std::int64_t now_utc) {
  if (config_.rate_limit_per_minute == 0) return false;
  // Trim the rolling window, then record this request (attempts count
  // against the limit, as real throttlers do).
  const std::int64_t cutoff = now_utc - 60;
  recent_requests_.erase(
      std::remove_if(recent_requests_.begin(), recent_requests_.end(),
                     [cutoff](std::int64_t t) { return t <= cutoff; }),
      recent_requests_.end());
  recent_requests_.push_back(now_utc);
  return recent_requests_.size() > config_.rate_limit_per_minute;
}

tor::Response ForumEngine::handle(const tor::Request& request, std::int64_t now_utc) {
  if (rate_limited(now_utc)) {
    return tor::Response{429, "<error>rate limited, slow down</error>\n"};
  }
  const RoutedPath routed = route(request.path);
  if (request.method == "POST") {
    if (routed.segments.size() == 1 && routed.segments[0] == "post") {
      return accept_post(request.body, now_utc);
    }
    if (routed.segments.size() == 1 && routed.segments[0] == "signup") {
      const auto form = parse_form(request.body);
      const auto handle_field = form.find("handle");
      if (handle_field == form.end() || handle_field->second.empty()) {
        return error_response(400, "missing handle");
      }
      if (by_handle_.contains(handle_field->second)) {
        return error_response(409, "handle taken");
      }
      signup(handle_field->second);
      return tor::Response{200, "<registered handle=\"" + escape_markup(handle_field->second) +
                                    "\"/>\n"};
    }
    return error_response(404, "no such action");
  }
  const AccessTier tier = tier_of_handle(routed.as_handle);
  if (routed.segments.empty() || routed.segments[0] == "index") {
    return serve_index(routed.page, now_utc, tier);
  }
  if (routed.segments.size() == 2 && routed.segments[0] == "thread") {
    const auto id = util::parse_int(routed.segments[1]);
    if (!id || *id < 1) return error_response(400, "bad thread id");
    return serve_thread(static_cast<std::uint64_t>(*id), routed.page, now_utc, tier);
  }
  return error_response(404, "no such page");
}

tor::Response ForumEngine::serve_index(std::size_t page, std::int64_t now_utc,
                                       AccessTier tier) const {
  std::vector<ThreadRef> refs;
  refs.reserve(threads_.size());
  for (const auto& thread : threads_) {
    if (thread.tier > tier) continue;  // hidden sections stay invisible
    const std::size_t visible = visible_posts(thread.id, now_utc).size();
    ThreadRef ref;
    ref.id = thread.id;
    ref.title = thread.title;
    ref.pages = std::max<std::size_t>(1, (visible + config_.posts_per_page - 1) /
                                             config_.posts_per_page);
    refs.push_back(std::move(ref));
  }
  const std::size_t pages =
      std::max<std::size_t>(1, (refs.size() + config_.threads_per_page - 1) /
                                   config_.threads_per_page);
  if (page > pages) return error_response(404, "index page out of range");
  const std::size_t begin = (page - 1) * config_.threads_per_page;
  const std::size_t end = std::min(begin + config_.threads_per_page, refs.size());
  const std::vector<ThreadRef> slice(refs.begin() + static_cast<std::ptrdiff_t>(begin),
                                     refs.begin() + static_cast<std::ptrdiff_t>(end));
  return tor::Response{200, render_index_page(config_.name, slice, page, pages)};
}

tor::Response ForumEngine::serve_thread(std::uint64_t thread_id, std::size_t page,
                                        std::int64_t now_utc, AccessTier tier) const {
  const auto thread_it =
      std::find_if(threads_.begin(), threads_.end(),
                   [thread_id](const Thread& t) { return t.id == thread_id; });
  if (thread_it == threads_.end()) return error_response(404, "no such thread");
  // Restricted threads are indistinguishable from nonexistent ones.
  if (thread_it->tier > tier) return error_response(404, "no such thread");

  const std::vector<const Post*> visible = visible_posts(thread_id, now_utc);
  const std::size_t pages = std::max<std::size_t>(
      1, (visible.size() + config_.posts_per_page - 1) / config_.posts_per_page);
  if (page > pages) return error_response(404, "thread page out of range");

  std::vector<RenderedPost> rendered;
  const std::size_t begin = (page - 1) * config_.posts_per_page;
  const std::size_t end = std::min(begin + config_.posts_per_page, visible.size());
  rendered.reserve(end - begin);
  for (std::size_t i = begin; i < end; ++i) {
    const Post& post = *visible[i];
    RenderedPost out;
    out.id = post.id;
    out.author = users_.at(post.author_id).handle;
    out.display_time = display_time(post);
    out.body = post.body;
    rendered.push_back(std::move(out));
  }
  // The server's "today" in its display clock (for relative timestamps).
  const tz::CivilDate server_today =
      tz::from_utc_seconds(now_utc + static_cast<std::int64_t>(config_.server_offset_minutes) *
                                         tz::kSecondsPerMinute)
          .date;
  return tor::Response{200, render_thread_page(config_.name, *thread_it, rendered, page, pages,
                                               config_.timestamp_format, server_today)};
}

tor::Response ForumEngine::accept_post(const std::string& body, std::int64_t now_utc) {
  const auto form = parse_form(body);
  const auto thread_field = form.find("thread");
  const auto author_field = form.find("author");
  const auto text_field = form.find("text");
  if (thread_field == form.end() || author_field == form.end() || text_field == form.end()) {
    return error_response(400, "missing form fields");
  }
  const auto thread_id = util::parse_int(thread_field->second);
  if (!thread_id || *thread_id < 1) return error_response(400, "bad thread id");
  const auto user_it = by_handle_.find(author_field->second);
  if (user_it == by_handle_.end()) return error_response(403, "unknown member");
  const auto target = std::find_if(threads_.begin(), threads_.end(), [&](const Thread& t) {
    return t.id == static_cast<std::uint64_t>(*thread_id);
  });
  if (target == threads_.end()) return error_response(404, "no such thread");
  if (target->tier > tier_of_handle(author_field->second)) {
    return error_response(404, "no such thread");  // restricted = invisible
  }

  Post post;
  post.id = next_post_id_++;
  post.thread_id = static_cast<std::uint64_t>(*thread_id);
  post.author_id = user_it->second;
  post.utc_time = now_utc;
  post.body = text_field->second;
  const std::uint64_t id = post.id;

  // Keep posts_ sorted by visible-at.
  const tz::UtcSeconds when = visible_at(post);
  const auto insert_at = std::upper_bound(
      posts_.begin(), posts_.end(), when,
      [this](tz::UtcSeconds t, const Post& p) { return t < visible_at(p); });
  posts_.insert(insert_at, std::move(post));
  return tor::Response{200, "<posted id=\"" + std::to_string(id) + "\"/>\n"};
}

tz::UtcSeconds ForumEngine::true_time_of(std::uint64_t post_id) const {
  for (const auto& post : posts_) {
    if (post.id == post_id) return post.utc_time;
  }
  throw std::out_of_range("ForumEngine: unknown post id");
}

const std::string& ForumEngine::handle_of(std::uint64_t persona_id) const {
  return persona_handles_.at(persona_id);
}

}  // namespace tzgeo::forum
