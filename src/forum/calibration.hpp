// Server-clock offset calibration.
//
// "First, we sign up in the forum and write a post in the Welcome or Spam
// thread to calculate the offset between the server time (the one on the
// post) and UTC."  (Section V.)  The calibrator does exactly that: it
// registers an account, posts a marker, reads its own post back, and
// compares the displayed timestamp against the known (own-clock) posting
// time.  Posting twice guards against forums that randomize displayed
// times (Discussion VII): an unstable offset is reported as such.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "forum/crawler.hpp"
#include "tor/transport.hpp"

namespace tzgeo::forum {

/// Outcome of a calibration attempt.
struct CalibrationResult {
  std::int64_t offset_seconds = 0;  ///< server display clock minus UTC
  bool stable = true;               ///< false when repeated probes disagree
  std::int64_t probe_spread_seconds = 0;  ///< disagreement between probes
};

/// Calibration tuning.
struct CalibrationOptions {
  std::string handle = "tzgeo_probe";
  int probes = 2;                      ///< marker posts to submit
  std::int64_t stability_tolerance_seconds = 90;
  std::int64_t round_to_seconds = 60;  ///< round the offset (RTT noise)
  /// A forum applying a random display delay publishes the marker late;
  /// the calibrator polls for it until this deadline before giving up.
  std::int64_t marker_wait_seconds = tz::kSecondsPerDay;
  std::int64_t marker_poll_seconds = 600;
};

/// Runs the calibration protocol.  Returns std::nullopt when the forum
/// displays no timestamps at all (monitor mode is needed instead).
/// Throws tor::TransportError on unrecoverable network failure.
[[nodiscard]] std::optional<CalibrationResult> calibrate_server_clock(
    tor::OnionTransport& transport, const std::string& onion,
    const CalibrationOptions& options = {});

/// A post record reduced to what the methodology consumes.
struct TimedPost {
  std::string author;
  tz::UtcSeconds utc_time = 0;
};

/// Converts a scrape dump to UTC-timed posts using a calibrated offset.
/// Records without a display time fall back to the observation stamp.
[[nodiscard]] std::vector<TimedPost> to_utc_posts(const ScrapeDump& dump,
                                                  std::int64_t offset_seconds);

/// Converts a monitor-mode dump (no display times): every record uses its
/// observation stamp.
[[nodiscard]] std::vector<TimedPost> to_utc_posts_observed(const ScrapeDump& dump);

}  // namespace tzgeo::forum
