# Sanitizer wiring for the analysis presets (asan-ubsan, tsan).
#
# TZGEO_SANITIZE is a semicolon-separated list of sanitizers to enable for
# the whole tree: "address;undefined" or "thread".  Address and thread are
# mutually exclusive (the runtimes cannot coexist in one process).  Empty
# (the default) builds without instrumentation.
#
# The flags are applied directory-wide rather than per-target because a
# sanitized static library is only usable if every translation unit that
# ends up in the final link — tests, benches, examples, the CLI — carries
# the same instrumentation and the link line pulls in the runtime.
#
# `tzgeo::sanitizers` is also provided as an interface target so external
# consumers embedding the tree can attach the same flags to their own
# targets explicitly.

set(TZGEO_SANITIZE "" CACHE STRING
    "Sanitizers to enable for the whole build: 'address;undefined' or 'thread'")

set(_tzgeo_sanitizer_flags "")
if(TZGEO_SANITIZE)
  if(NOT CMAKE_CXX_COMPILER_ID MATCHES "GNU|Clang")
    message(FATAL_ERROR "TZGEO_SANITIZE requires GCC or Clang (got ${CMAKE_CXX_COMPILER_ID})")
  endif()

  set(_tzgeo_known_sanitizers address undefined thread leak)
  foreach(_san IN LISTS TZGEO_SANITIZE)
    if(NOT _san IN_LIST _tzgeo_known_sanitizers)
      message(FATAL_ERROR "Unknown sanitizer '${_san}' in TZGEO_SANITIZE "
                          "(known: ${_tzgeo_known_sanitizers})")
    endif()
  endforeach()
  if("thread" IN_LIST TZGEO_SANITIZE AND "address" IN_LIST TZGEO_SANITIZE)
    message(FATAL_ERROR "TZGEO_SANITIZE: 'thread' and 'address' cannot be combined")
  endif()

  string(REPLACE ";" "," _tzgeo_sanitize_csv "${TZGEO_SANITIZE}")
  list(APPEND _tzgeo_sanitizer_flags
       "-fsanitize=${_tzgeo_sanitize_csv}" -fno-omit-frame-pointer -g)
  if("undefined" IN_LIST TZGEO_SANITIZE)
    # Abort on the first UB report so CTest turns findings into failures.
    list(APPEND _tzgeo_sanitizer_flags -fno-sanitize-recover=all)
  endif()

  add_compile_options(${_tzgeo_sanitizer_flags})
  add_link_options(${_tzgeo_sanitizer_flags})
  message(STATUS "tzgeo: sanitizers enabled: ${TZGEO_SANITIZE}")
endif()

add_library(tzgeo_sanitizers INTERFACE)
add_library(tzgeo::sanitizers ALIAS tzgeo_sanitizers)
if(_tzgeo_sanitizer_flags)
  target_compile_options(tzgeo_sanitizers INTERFACE ${_tzgeo_sanitizer_flags})
  target_link_options(tzgeo_sanitizers INTERFACE ${_tzgeo_sanitizer_flags})
endif()
unset(_tzgeo_sanitizer_flags)
