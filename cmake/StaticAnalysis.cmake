# clang-tidy wiring for the `tidy` preset.
#
# TZGEO_ENABLE_CLANG_TIDY=ON runs clang-tidy (configured by the top-level
# .clang-tidy) over every translation unit as it compiles, via
# CMAKE_CXX_CLANG_TIDY.  The checker binary is an optional dependency: when
# it is not installed the option degrades to a warning instead of failing
# the configure, so the same preset works on minimal containers.

option(TZGEO_ENABLE_CLANG_TIDY "Run clang-tidy on every compiled source" OFF)

if(TZGEO_ENABLE_CLANG_TIDY)
  find_program(TZGEO_CLANG_TIDY_EXE NAMES clang-tidy clang-tidy-19 clang-tidy-18
                                          clang-tidy-17 clang-tidy-16 clang-tidy-15)
  if(TZGEO_CLANG_TIDY_EXE)
    # .clang-tidy at the repo root supplies the check list; findings are
    # promoted to errors there (WarningsAsErrors) so the build fails on any.
    set(CMAKE_CXX_CLANG_TIDY "${TZGEO_CLANG_TIDY_EXE}")
    message(STATUS "tzgeo: clang-tidy enabled: ${TZGEO_CLANG_TIDY_EXE}")
  else()
    message(WARNING "TZGEO_ENABLE_CLANG_TIDY=ON but no clang-tidy binary found; "
                    "building without it")
  endif()
endif()
