// tzgeo-lint — repo-specific invariant checker, run as a ctest.
//
// Generic linters cannot know that a tzgeo profile is *exactly* 24 hourly
// bins, that determinism depends on every random draw flowing through
// util::Rng, or that the libraries must never write to stdout (the CLI owns
// the terminal).  Those invariants live as the ten line rules of
// tools/tzgeo_analyze/lint_rules.cpp (magic-hours, rng-source, stdout-io,
// stderr-log, sscanf-parse, obs-clock, float-stats, simd-shim, catch-style,
// pragma-once); this binary is the thin CLI wrapper that preserves the
// historical interface:
//
//   tzgeo_lint [REPO_ROOT] [--self-test]
//
// Comments and string literals are stripped once by the shared tokenizer
// (tools/tzgeo_analyze/tokenizer.cpp), so prose like "24-bin profile"
// never trips a rule, and a rule can still be waived for one line with a
// trailing `// tzgeo-lint: allow(<rule>)` comment naming the rule.
//
// The full analyzer (tzgeo_analyze) runs these same rules plus the
// whole-program passes (layering, lock-order, hot-alloc, determinism);
// keep using this entry point where only the fast line rules are wanted.
#include <iostream>
#include <string>
#include <string_view>

#include "tzgeo_analyze/driver.hpp"
#include "tzgeo_analyze/lint_rules.hpp"
#include "tzgeo_analyze/tokenizer.hpp"

namespace {

/// Sanity checks on the matching helpers: run with --self-test.  These
/// are the original tzgeo-lint checks, now exercising the shared
/// tzgeo_analyze implementations.
[[nodiscard]] int self_test() {
  using tzgeo::analyze::contains_call;
  using tzgeo::analyze::contains_prefix_token;
  using tzgeo::analyze::contains_token;
  using tzgeo::analyze::has_bad_catch;
  using tzgeo::analyze::has_magic_hours_literal;

  int failures = 0;
  const auto expect = [&failures](bool condition, const char* what) {
    if (!condition) {
      std::cout << "self-test FAILED: " << what << "\n";
      ++failures;
    }
  };

  expect(has_magic_hours_literal("int x = 24;"), "bare 24 flagged");
  expect(has_magic_hours_literal("double d = 24.0;"), "24.0 flagged");
  expect(has_magic_hours_literal("f(23u)"), "suffixed 23u flagged");
  expect(!has_magic_hours_literal("double d = 0.25;"), "0.25 not flagged");
  expect(!has_magic_hours_literal("int x = 245;"), "245 not flagged");
  expect(!has_magic_hours_literal("int x = 124;"), "124 not flagged");
  expect(!has_magic_hours_literal("x24 = 1"), "identifier x24 not flagged");
  expect(!has_magic_hours_literal("0x24"), "hex 0x24 not flagged");
  expect(!has_magic_hours_literal("1e24"), "exponent 1e24 not flagged");
  expect(!has_magic_hours_literal("d = 24.5;"), "24.5 not flagged");

  expect(contains_call("x = rand();", "rand"), "rand() flagged");
  expect(!contains_call("x = srand(1);", "rand"), "srand not matched by rand");
  expect(contains_call("srand(1);", "srand"), "srand() flagged");
  expect(!contains_call("rng.uniform_int(0, 3)", "int"), "uniform_int not matched by int");
  expect(contains_call("std::printf(\"x\")", "printf"), "std::printf flagged");
  expect(!contains_call("std::snprintf(b, n, \"x\")", "printf"), "snprintf not matched");
  // The stdout-io/stderr-log split hinges on the stderr token: fprintf to
  // stderr belongs to stderr-log, fprintf to any other FILE* to stdout-io.
  expect(contains_call("std::fprintf(stderr, \"x\")", "fprintf") &&
             contains_token("std::fprintf(stderr, \"x\")", "stderr"),
         "fprintf(stderr, ...) classified as stderr diagnostic");
  expect(!contains_token("std::fprintf(sink, \"x\")", "stderr"),
         "fprintf to another FILE* not classified as stderr");
  expect(!contains_token("g_stderr_like(x)", "stderr"),
         "identifier containing stderr not matched");
  expect(contains_call("perror(\"open\")", "perror"), "perror flagged");
  expect(contains_call("std::sscanf(s, \"%d\", &x)", "sscanf"), "std::sscanf flagged");
  expect(contains_call("sscanf (s, \"%d\", &x)", "sscanf"), "sscanf with space flagged");
  expect(!contains_call("vsscanf(s, f, ap)", "sscanf"), "vsscanf not matched by sscanf");

  expect(has_bad_catch("} catch (...) {"), "catch (...) flagged");
  expect(has_bad_catch("catch(std::exception e) {"), "catch-by-value flagged");
  expect(has_bad_catch("} catch ( ... ) {"), "spaced catch (...) flagged");
  expect(!has_bad_catch("} catch (const std::exception& e) {"),
         "catch by const reference not flagged");
  expect(!has_bad_catch("catch (const CrawlError& error) {"),
         "catch by reference not flagged");
  expect(!has_bad_catch("} catch (std::exception* e) {"),
         "catch by pointer not flagged");
  expect(!has_bad_catch("dispatch_catch(x)"), "identifier containing catch not flagged");
  expect(!has_bad_catch("int catchall = 0;"), "catchall identifier not flagged");

  expect(contains_prefix_token("__m256d acc = _mm256_setzero_pd();", "__m256"),
         "suffixed __m256d flagged by prefix match");
  expect(contains_prefix_token("_mm512_add_pd(a, b)", "_mm512_"),
         "_mm512_ intrinsic flagged");
  expect(contains_prefix_token("vld1q_f64(p)", "vld1q"), "vld1q_f64 flagged");
  expect(contains_prefix_token("float64x2_t q;", "float64x"), "float64x2_t flagged");
  expect(!contains_prefix_token("x__m256 = 1;", "__m256"),
         "identifier ending in __m256 not flagged (left boundary)");
  expect(!contains_prefix_token("register_mm_handler()", "_mm_"),
         "_mm_ inside an identifier not flagged");

  expect(contains_token("std::chrono::steady_clock::now()", "steady_clock"),
         "steady_clock flagged");
  expect(contains_token("chrono::high_resolution_clock::now()", "high_resolution_clock"),
         "high_resolution_clock flagged");
  expect(!contains_token("my_steady_clock_wrapper()", "steady_clock"),
         "identifier containing steady_clock not flagged");

  const std::string stripped =
      tzgeo::analyze::tokenize(
          "int a = 1; // 24 bins\nconst char* s = \"24\";\n/* 24 */ int b = 24;\n")
          .stripped;
  expect(stripped.find("24") != std::string::npos, "code literal survives stripping");
  expect(stripped.rfind("24") == stripped.find("24"),
         "comment and string literals stripped");

  if (failures == 0) std::cout << "tzgeo-lint self-test: all checks passed\n";
  return failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::string root = ".";
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--self-test") return self_test();
    if (arg == "--help" || arg == "-h") {
      std::cout << "usage: tzgeo_lint [REPO_ROOT] [--self-test]\n"
                   "Checks tzgeo source invariants; exits non-zero on findings.\n";
      return 0;
    }
    root = arg;
  }

  tzgeo::analyze::AnalyzeResult result;
  std::string error;
  if (!tzgeo::analyze::analyze_repo(root, "", "", /*lint_only=*/true, result, error)) {
    std::cout << "tzgeo-lint: " << error << "\n";
    return 2;
  }
  for (const tzgeo::analyze::Finding& finding : result.findings) {
    std::cout << finding.file << ":" << finding.line << ": [" << finding.rule << "] "
              << finding.message << "\n";
  }
  std::cout << "tzgeo-lint: " << result.files_scanned << " files, "
            << result.findings.size() << " finding(s)\n";
  return result.findings.empty() ? 0 : 1;
}
