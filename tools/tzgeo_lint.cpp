// tzgeo-lint — repo-specific invariant checker, run as a ctest.
//
// Generic linters cannot know that a tzgeo profile is *exactly* 24 hourly
// bins, that determinism depends on every random draw flowing through
// util::Rng, or that the libraries must never write to stdout (the CLI owns
// the terminal).  This tool encodes those invariants as mechanical rules
// over the source tree and fails the suite on any violation:
//
//   pragma-once   every header under src/, tools/, tests/, bench/,
//                 examples/ carries `#pragma once`
//   magic-hours   integer literals 23/24/25 (and their `.0` float forms)
//                 appear in src/ only inside core/constants.hpp — profile
//                 widths and zone counts must come from the named constants
//   rng-source    no rand()/srand()/std::time()/time(NULL)/
//                 std::random_device outside src/util/rng.* — every other
//                 source of randomness or wall-clock time breaks replay
//   stdout-io     no std::cout / printf / puts in library code under src/
//                 (snprintf into buffers is fine; the terminal belongs to
//                 the tools)
//   sscanf-parse  no sscanf in library code under src/ — timestamp and
//                 integer parsing must go through tz::parse_civil_datetime
//                 / util::parse_int (sscanf re-scans its format string per
//                 call and has undefined behavior on numeric overflow)
//   float-stats   no `float` in src/stats — the statistical kernels are
//                 double-only (Eq. 1/2 profiles lose precision in float)
//   catch-style   no `catch (...)` and no catch-by-value in src/ — a
//                 bare ellipsis swallows typed recovery signals (the
//                 monitor's degradation ladder dispatches on
//                 forum::CrawlError categories) and catching by value
//                 slices the exception object; catch by reference to a
//                 concrete type instead
//   simd-shim     no <immintrin.h>/<arm_neon.h> includes or raw vector
//                 intrinsic tokens (__m256d, _mm512_*, vld1q_f64, ...)
//                 outside src/core/simd/ — all ISA-specific code lives
//                 behind the dispatch shim so the scalar reference path
//                 and the bit-identity guarantee cannot rot
//
// Comments and string literals are stripped before matching, so prose like
// "24-bin profile" never trips a rule.  A rule can be waived for one line
// with a trailing `// tzgeo-lint: allow(<rule>)` comment naming the rule.
//
// Adding a rule: append a Rule{} entry to rules() with a match function
// over the stripped line, document it in the block above and in DESIGN.md
// ("Verification matrix"), and add a case to tests if the rule has subtle
// tokenization (see the self-checks at the bottom of main()).
#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <functional>
#include <iostream>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace fs = std::filesystem;

namespace {

struct Finding {
  std::string file;
  std::size_t line = 0;
  std::string rule;
  std::string message;
};

/// Replaces comments, string literals, and char literals with spaces,
/// preserving newlines (so line numbers survive).  Handles escapes and raw
/// strings; good enough for a codebase that compiles.
std::string strip_comments_and_strings(std::string_view text) {
  std::string out(text);
  enum class State { kCode, kLineComment, kBlockComment, kString, kChar, kRawString };
  State state = State::kCode;
  std::string raw_terminator;  // ")delim\"" for the active raw string
  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    const char next = i + 1 < text.size() ? text[i + 1] : '\0';
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLineComment;
          out[i] = ' ';
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          out[i] = ' ';
        } else if (c == 'R' && next == '"' &&
                   (i == 0 || (!std::isalnum(static_cast<unsigned char>(text[i - 1])) &&
                               text[i - 1] != '_'))) {
          // R"delim( ... )delim"
          std::size_t open = text.find('(', i + 2);
          if (open != std::string_view::npos) {
            raw_terminator.assign(1, ')');
            raw_terminator.append(text.substr(i + 2, open - (i + 2)));
            raw_terminator.push_back('"');
            state = State::kRawString;
            for (std::size_t j = i; j <= open; ++j) {
              if (out[j] != '\n') out[j] = ' ';
            }
            i = open;
          }
        } else if (c == '"') {
          state = State::kString;
          out[i] = ' ';
        } else if (c == '\'') {
          state = State::kChar;
          out[i] = ' ';
        }
        break;
      case State::kLineComment:
        if (c == '\n') {
          state = State::kCode;
        } else {
          out[i] = ' ';
        }
        break;
      case State::kBlockComment:
        if (c == '*' && next == '/') {
          out[i] = ' ';
          out[i + 1] = ' ';
          ++i;
          state = State::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case State::kString:
      case State::kChar:
        if (c == '\\') {
          out[i] = ' ';
          if (next != '\0' && next != '\n') {
            out[i + 1] = ' ';
            ++i;
          }
        } else if ((state == State::kString && c == '"') ||
                   (state == State::kChar && c == '\'')) {
          out[i] = ' ';
          state = State::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case State::kRawString:
        if (text.compare(i, raw_terminator.size(), raw_terminator) == 0) {
          for (std::size_t j = 0; j < raw_terminator.size(); ++j) out[i + j] = ' ';
          i += raw_terminator.size() - 1;
          state = State::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
    }
  }
  return out;
}

[[nodiscard]] bool is_word_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/// True when `token` occurs in `line` with non-word characters (or line
/// edges) on both sides.  `token` itself may contain punctuation (e.g.
/// "std::cout"); only its boundary characters are checked.
[[nodiscard]] bool contains_token(std::string_view line, std::string_view token) {
  std::size_t pos = 0;
  while ((pos = line.find(token, pos)) != std::string_view::npos) {
    const bool left_ok = pos == 0 || !is_word_char(line[pos - 1]);
    const std::size_t end = pos + token.size();
    const bool right_ok = end >= line.size() || !is_word_char(line[end]);
    if (left_ok && right_ok) return true;
    ++pos;
  }
  return false;
}

/// True when `prefix` occurs in `line` with a non-word character (or the
/// line start) on its LEFT only.  Vector-register families share prefixes
/// across many suffixed spellings (__m256 vs __m256d vs __m256i,
/// _mm512_add_pd, vld1q_f64), so unlike contains_token the right side is
/// deliberately unconstrained.
[[nodiscard]] bool contains_prefix_token(std::string_view line, std::string_view prefix) {
  std::size_t pos = 0;
  while ((pos = line.find(prefix, pos)) != std::string_view::npos) {
    if (pos == 0 || !is_word_char(line[pos - 1])) return true;
    ++pos;
  }
  return false;
}

/// True when `line` calls `name(` as a free token (so `snprintf(` does not
/// match `printf(`, and `uniform_int(` does not match `int(`).
[[nodiscard]] bool contains_call(std::string_view line, std::string_view name) {
  std::size_t pos = 0;
  while ((pos = line.find(name, pos)) != std::string_view::npos) {
    const bool left_ok = pos == 0 || !is_word_char(line[pos - 1]);
    std::size_t end = pos + name.size();
    while (end < line.size() && (line[end] == ' ' || line[end] == '\t')) ++end;
    if (left_ok && end < line.size() && line[end] == '(') return true;
    ++pos;
  }
  return false;
}

/// Finds a bare 23/24/25 integer literal (or 23.0/24.0/25.0) in the line.
/// Literals embedded in identifiers (x24), larger numbers (124, 245),
/// decimals (0.25), hex (0x24), and exponents (1e24) do not count.
[[nodiscard]] bool has_magic_hours_literal(std::string_view line) {
  for (std::size_t i = 0; i + 1 < line.size(); ++i) {
    if (line[i] != '2') continue;
    const char second = line[i + 1];
    if (second != '3' && second != '4' && second != '5') continue;
    if (i > 0 && (is_word_char(line[i - 1]) || line[i - 1] == '.')) continue;
    std::size_t end = i + 2;
    if (end < line.size() && std::isdigit(static_cast<unsigned char>(line[end])) != 0) {
      continue;  // longer number (230, 245, ...)
    }
    if (end < line.size() && line[end] == '.') {
      // Accept only the `.0`, `.00`, ... float forms as hour literals.
      std::size_t digits = end + 1;
      while (digits < line.size() && line[digits] == '0') ++digits;
      if (digits == end + 1) continue;                   // 24.5, 24. — not an hour literal
      if (digits < line.size() &&
          std::isdigit(static_cast<unsigned char>(line[digits])) != 0) {
        continue;  // 24.05 — not an hour literal
      }
    }
    return true;
  }
  return false;
}

/// Finds a `catch (...)` or a catch-by-value clause.  The contents of each
/// `catch (` ... `)` on the line are inspected: `...` matches everything
/// (losing the type the recovery policy needs), and a clause without `&`
/// or `*` binds the exception by value (slicing derived types).  A clause
/// split across lines is judged by the part on the `catch` line.
[[nodiscard]] bool has_bad_catch(std::string_view line) {
  std::size_t pos = 0;
  while ((pos = line.find("catch", pos)) != std::string_view::npos) {
    const bool left_ok = pos == 0 || !is_word_char(line[pos - 1]);
    std::size_t open = pos + 5;
    while (open < line.size() && (line[open] == ' ' || line[open] == '\t')) ++open;
    if (!left_ok || open >= line.size() || line[open] != '(') {
      ++pos;
      continue;
    }
    const std::size_t close = line.find(')', open + 1);
    const std::size_t stop = close == std::string_view::npos ? line.size() : close;
    const std::string_view contents = line.substr(open + 1, stop - open - 1);
    if (contents.find("...") != std::string_view::npos) return true;
    if (contents.find('&') == std::string_view::npos &&
        contents.find('*') == std::string_view::npos) {
      return true;
    }
    pos = stop;
  }
  return false;
}

struct Rule {
  std::string name;
  std::string message;
  /// Whether the rule applies to this file at all.
  std::function<bool(const fs::path& relative)> applies;
  /// Line-level matcher over the stripped source line.
  std::function<bool(std::string_view stripped_line)> match;
};

[[nodiscard]] bool under(const fs::path& relative, std::string_view top) {
  return !relative.empty() && relative.begin()->string() == top;
}

[[nodiscard]] std::vector<Rule> rules() {
  std::vector<Rule> out;

  out.push_back(Rule{
      "magic-hours",
      "bare 23/24/25 literal; use the named constants from core/constants.hpp "
      "(kProfileBins, kZoneCount, kHoursPerDay, kMaxHourOfDay)",
      [](const fs::path& rel) {
        return under(rel, "src") && rel != fs::path("src") / "core" / "constants.hpp";
      },
      has_magic_hours_literal});

  out.push_back(Rule{
      "rng-source",
      "raw randomness/clock source; route randomness through util::Rng and time "
      "through explicit UtcSeconds parameters",
      [](const fs::path& rel) {
        return rel != fs::path("src") / "util" / "rng.hpp" &&
               rel != fs::path("src") / "util" / "rng.cpp";
      },
      [](std::string_view line) {
        return contains_token(line, "std::random_device") ||
               contains_token(line, "random_device") || contains_call(line, "rand") ||
               contains_call(line, "srand") || contains_token(line, "std::time") ||
               contains_call(line, "time");
      }});

  out.push_back(Rule{
      "stdout-io",
      "stdout/stderr write in library code; return strings and let the tools print",
      [](const fs::path& rel) { return under(rel, "src"); },
      [](std::string_view line) {
        return contains_token(line, "std::cout") || contains_token(line, "std::cerr") ||
               contains_call(line, "printf") || contains_call(line, "fprintf") ||
               contains_call(line, "puts") || contains_call(line, "putchar");
      }});

  out.push_back(Rule{
      "sscanf-parse",
      "sscanf in library code; use the fixed-format parsers "
      "(tz::parse_civil_datetime, util::parse_int) — sscanf re-scans the format "
      "string per call and has undefined behavior on overflow",
      [](const fs::path& rel) { return under(rel, "src"); },
      [](std::string_view line) { return contains_call(line, "sscanf"); }});

  out.push_back(Rule{
      "obs-clock",
      "ad-hoc std::chrono clock read in library code; obs::Stopwatch "
      "(src/obs/stopwatch.hpp) is the one sanctioned monotonic clock — shared "
      "timing keeps benchmarks, metrics, and traces on the same timebase",
      [](const fs::path& rel) {
        if (!under(rel, "src")) return false;
        auto it = rel.begin();
        ++it;  // skip the "src" component
        return it == rel.end() || it->string() != "obs";
      },
      [](std::string_view line) {
        return contains_token(line, "steady_clock") ||
               contains_token(line, "high_resolution_clock") ||
               contains_token(line, "system_clock");
      }});

  out.push_back(Rule{
      "float-stats",
      "float in a statistical kernel; the stats module is double-only",
      [](const fs::path& rel) { return under(rel, "src") && rel.string().find("stats") != std::string::npos; },
      [](std::string_view line) { return contains_token(line, "float"); }});

  out.push_back(Rule{
      "simd-shim",
      "raw SIMD include or vector-register token outside src/core/simd/; all "
      "ISA-specific code lives behind the dispatch shim (core/simd/simd.hpp) so "
      "the scalar reference path stays the single source of truth",
      [](const fs::path& rel) {
        const std::string shim = (fs::path("src") / "core" / "simd").generic_string();
        return rel.generic_string().rfind(shim, 0) != 0;
      },
      [](std::string_view line) {
        return line.find("immintrin.h") != std::string_view::npos ||
               line.find("arm_neon.h") != std::string_view::npos ||
               contains_prefix_token(line, "__m128") ||
               contains_prefix_token(line, "__m256") ||
               contains_prefix_token(line, "__m512") ||
               contains_prefix_token(line, "__mmask") ||
               contains_prefix_token(line, "_mm_") ||
               contains_prefix_token(line, "_mm256_") ||
               contains_prefix_token(line, "_mm512_") ||
               contains_prefix_token(line, "vld1q") ||
               contains_prefix_token(line, "vst1q") ||
               contains_prefix_token(line, "float64x") ||
               contains_prefix_token(line, "uint64x");
      }});

  out.push_back(Rule{
      "catch-style",
      "catch (...) or catch-by-value in library code; catch a concrete exception "
      "type by (const) reference so recovery can dispatch on it (typed "
      "forum::CrawlError categories drive the monitor's degradation ladder)",
      [](const fs::path& rel) { return under(rel, "src"); },
      has_bad_catch});

  return out;
}

/// The directories scanned, relative to the repo root.
constexpr const char* kScanRoots[] = {"src", "tools", "tests", "bench", "examples"};

void scan_file(const fs::path& root, const fs::path& path, const std::vector<Rule>& active,
               std::vector<Finding>& findings) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();
  const std::string stripped = strip_comments_and_strings(text);
  const fs::path relative = fs::relative(path, root);

  // pragma-once is file-scoped, not line-scoped.
  if (path.extension() == ".hpp" &&
      stripped.find("#pragma once") == std::string::npos) {
    findings.push_back(Finding{relative.generic_string(), 1, "pragma-once",
                               "header missing #pragma once"});
  }

  std::vector<const Rule*> applicable;
  for (const Rule& rule : active) {
    if (rule.applies(relative)) applicable.push_back(&rule);
  }
  if (applicable.empty()) return;

  std::istringstream raw_lines(text);
  std::istringstream stripped_lines(stripped);
  std::string raw_line;
  std::string stripped_line;
  std::size_t number = 0;
  while (std::getline(raw_lines, raw_line) && std::getline(stripped_lines, stripped_line)) {
    ++number;
    for (const Rule* rule : applicable) {
      if (!rule->match(stripped_line)) continue;
      if (raw_line.find("tzgeo-lint: allow(" + rule->name + ")") != std::string::npos) {
        continue;
      }
      findings.push_back(
          Finding{relative.generic_string(), number, rule->name, rule->message});
    }
  }
}

/// Sanity checks on the tokenizer itself: run with --self-test.  Keeps the
/// checker honest without needing a second build target.
[[nodiscard]] int self_test() {
  int failures = 0;
  const auto expect = [&failures](bool condition, const char* what) {
    if (!condition) {
      std::cout << "self-test FAILED: " << what << "\n";
      ++failures;
    }
  };

  expect(has_magic_hours_literal("int x = 24;"), "bare 24 flagged");
  expect(has_magic_hours_literal("double d = 24.0;"), "24.0 flagged");
  expect(has_magic_hours_literal("f(23u)"), "suffixed 23u flagged");
  expect(!has_magic_hours_literal("double d = 0.25;"), "0.25 not flagged");
  expect(!has_magic_hours_literal("int x = 245;"), "245 not flagged");
  expect(!has_magic_hours_literal("int x = 124;"), "124 not flagged");
  expect(!has_magic_hours_literal("x24 = 1"), "identifier x24 not flagged");
  expect(!has_magic_hours_literal("0x24"), "hex 0x24 not flagged");
  expect(!has_magic_hours_literal("1e24"), "exponent 1e24 not flagged");
  expect(!has_magic_hours_literal("d = 24.5;"), "24.5 not flagged");

  expect(contains_call("x = rand();", "rand"), "rand() flagged");
  expect(!contains_call("x = srand(1);", "rand"), "srand not matched by rand");
  expect(contains_call("srand(1);", "srand"), "srand() flagged");
  expect(!contains_call("rng.uniform_int(0, 3)", "int"), "uniform_int not matched by int");
  expect(contains_call("std::printf(\"x\")", "printf"), "std::printf flagged");
  expect(!contains_call("std::snprintf(b, n, \"x\")", "printf"), "snprintf not matched");
  expect(contains_call("std::sscanf(s, \"%d\", &x)", "sscanf"), "std::sscanf flagged");
  expect(contains_call("sscanf (s, \"%d\", &x)", "sscanf"), "sscanf with space flagged");
  expect(!contains_call("vsscanf(s, f, ap)", "sscanf"), "vsscanf not matched by sscanf");

  expect(has_bad_catch("} catch (...) {"), "catch (...) flagged");
  expect(has_bad_catch("catch(std::exception e) {"), "catch-by-value flagged");
  expect(has_bad_catch("} catch ( ... ) {"), "spaced catch (...) flagged");
  expect(!has_bad_catch("} catch (const std::exception& e) {"),
         "catch by const reference not flagged");
  expect(!has_bad_catch("catch (const CrawlError& error) {"),
         "catch by reference not flagged");
  expect(!has_bad_catch("} catch (std::exception* e) {"),
         "catch by pointer not flagged");
  expect(!has_bad_catch("dispatch_catch(x)"), "identifier containing catch not flagged");
  expect(!has_bad_catch("int catchall = 0;"), "catchall identifier not flagged");

  expect(contains_prefix_token("__m256d acc = _mm256_setzero_pd();", "__m256"),
         "suffixed __m256d flagged by prefix match");
  expect(contains_prefix_token("_mm512_add_pd(a, b)", "_mm512_"),
         "_mm512_ intrinsic flagged");
  expect(contains_prefix_token("vld1q_f64(p)", "vld1q"), "vld1q_f64 flagged");
  expect(contains_prefix_token("float64x2_t q;", "float64x"), "float64x2_t flagged");
  expect(!contains_prefix_token("x__m256 = 1;", "__m256"),
         "identifier ending in __m256 not flagged (left boundary)");
  expect(!contains_prefix_token("register_mm_handler()", "_mm_"),
         "_mm_ inside an identifier not flagged");

  expect(contains_token("std::chrono::steady_clock::now()", "steady_clock"),
         "steady_clock flagged");
  expect(contains_token("chrono::high_resolution_clock::now()", "high_resolution_clock"),
         "high_resolution_clock flagged");
  expect(!contains_token("my_steady_clock_wrapper()", "steady_clock"),
         "identifier containing steady_clock not flagged");

  const std::string stripped = strip_comments_and_strings(
      "int a = 1; // 24 bins\nconst char* s = \"24\";\n/* 24 */ int b = 24;\n");
  expect(stripped.find("24") != std::string::npos, "code literal survives stripping");
  expect(stripped.rfind("24") == stripped.find("24"),
         "comment and string literals stripped");

  if (failures == 0) std::cout << "tzgeo-lint self-test: all checks passed\n";
  return failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  fs::path root = ".";
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--self-test") return self_test();
    if (arg == "--help" || arg == "-h") {
      std::cout << "usage: tzgeo_lint [REPO_ROOT] [--self-test]\n"
                   "Checks tzgeo source invariants; exits non-zero on findings.\n";
      return 0;
    }
    root = arg;
  }
  if (!fs::exists(root / fs::path("src"))) {
    std::cout << "tzgeo-lint: no src/ under " << root << " — wrong root?\n";
    return 2;
  }

  const std::vector<Rule> active = rules();
  std::vector<Finding> findings;
  std::vector<fs::path> files;
  for (const char* top : kScanRoots) {
    const fs::path dir = root / top;
    if (!fs::exists(dir)) continue;
    for (const auto& entry : fs::recursive_directory_iterator(dir)) {
      if (!entry.is_regular_file()) continue;
      const fs::path& path = entry.path();
      if (path.extension() == ".hpp" || path.extension() == ".cpp") {
        files.push_back(path);
      }
    }
  }
  std::sort(files.begin(), files.end());
  for (const fs::path& path : files) scan_file(root, path, active, findings);

  for (const Finding& finding : findings) {
    std::cout << finding.file << ":" << finding.line << ": [" << finding.rule << "] "
              << finding.message << "\n";
  }
  std::cout << "tzgeo-lint: " << files.size() << " files, " << findings.size()
            << " finding(s)\n";
  return findings.empty() ? 0 : 1;
}
