// tzgeo_top: live terminal dashboard over the obs time-series recorder.
//
// Drives a self-contained monitoring workload (synthetic forum behind
// the simulated tor transport, same shape as examples/live_monitor) and
// renders one dashboard frame per monitoring round:
//
//   - the healthz verdict line (obs::Health),
//   - windowed rates and rolling-window latency quantiles derived from
//     TimeSeriesRecorder samples (not lifetime counters),
//   - an ascii chart of the page-fetch rate series,
//   - the tail of the structured log ring.
//
// The recorder is sampled on the *simulated* clock, so rates read as
// per-second-of-campaign-time and the whole run is deterministic —
// `--frames 2` in CI exercises every render path byte-stably.
//
// With `--fleet N` the workload is a forum::Fleet of N staggered forums
// instead of a single monitor, and each frame adds a fleet table view:
// one row per forum (status, polls, failures, records, skips — from
// Fleet::snapshot()) plus the fleet gauges and round/poll latency
// quantiles.  One forum is scripted through a circuit-drop window so the
// quarantine ladder is visible on screen.
//
// Flags:
//   --frames N           dashboard frames to render (default 6)
//   --polls-per-frame N  monitor polls/fleet rounds between samples (default 48)
//   --interval S         simulated seconds between polls (default 1800)
//   --fleet N            drive a fleet of N forums instead of one monitor
//   --ansi               clear the screen between frames (live top feel)
//   --series-out FILE    write the recorder's JSON series on exit
//   --prom-out FILE      write the timestamped Prometheus exposition
//   --jsonl-out FILE     stream structured log records to FILE
//   --healthz-out FILE   write the final healthz JSON body (includes the
//                        per-forum fleet.<name> components)
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "fault/injector.hpp"
#include "fault/plan.hpp"
#include "forum/engine.hpp"
#include "forum/error.hpp"
#include "forum/fleet.hpp"
#include "forum/monitor.hpp"
#include "obs/health.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/pipeline_metrics.hpp"
#include "obs/timeseries.hpp"
#include "synth/dataset.hpp"
#include "synth/region_presets.hpp"
#include "tor/transport.hpp"
#include "util/ascii_chart.hpp"
#include "util/strings.hpp"

using namespace tzgeo;

namespace {

struct Options {
  int frames = 6;
  int polls_per_frame = 48;
  std::int64_t interval_seconds = 1800;
  int fleet = 0;  ///< 0 = single-forum monitor workload
  bool ansi = false;
  std::string series_out;
  std::string prom_out;
  std::string jsonl_out;
  std::string healthz_out;
};

void print_usage() {
  std::printf(
      "usage: tzgeo_top [--frames N] [--polls-per-frame N] [--interval S] [--fleet N]\n"
      "                 [--ansi] [--series-out FILE] [--prom-out FILE]\n"
      "                 [--jsonl-out FILE] [--healthz-out FILE]\n");
}

[[nodiscard]] bool parse_args(int argc, char** argv, Options& options) {
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    const auto value = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--frames") {
      const char* v = value();
      if (v == nullptr) return false;
      options.frames = std::atoi(v);
    } else if (arg == "--polls-per-frame") {
      const char* v = value();
      if (v == nullptr) return false;
      options.polls_per_frame = std::atoi(v);
    } else if (arg == "--interval") {
      const char* v = value();
      if (v == nullptr) return false;
      options.interval_seconds = std::atoll(v);
    } else if (arg == "--ansi") {
      options.ansi = true;
    } else if (arg == "--series-out") {
      const char* v = value();
      if (v == nullptr) return false;
      options.series_out = v;
    } else if (arg == "--prom-out") {
      const char* v = value();
      if (v == nullptr) return false;
      options.prom_out = v;
    } else if (arg == "--jsonl-out") {
      const char* v = value();
      if (v == nullptr) return false;
      options.jsonl_out = v;
    } else if (arg == "--fleet") {
      const char* v = value();
      if (v == nullptr) return false;
      options.fleet = std::atoi(v);
      if (options.fleet <= 0) return false;
    } else if (arg == "--healthz-out") {
      const char* v = value();
      if (v == nullptr) return false;
      options.healthz_out = v;
    } else if (arg == "--help" || arg == "-h") {
      print_usage();
      std::exit(0);
    } else {
      std::fprintf(stderr, "tzgeo_top: unknown flag %s\n", std::string{arg}.c_str());
      return false;
    }
  }
  return options.frames > 0 && options.polls_per_frame > 0 &&
         options.interval_seconds > 0;
}

[[nodiscard]] std::string format_rate(double value) {
  return util::format_fixed(value, value < 10 ? 3 : 1);
}

void render_frame(int frame, int frames, const obs::TimeSeriesRecorder& recorder,
                  std::uint64_t elapsed_ns, bool ansi) {
  if (ansi) std::printf("\x1b[2J\x1b[H");
  std::printf("tzgeo_top — frame %d/%d (%llu h of campaign time)\n", frame, frames,
              static_cast<unsigned long long>(elapsed_ns / 3'600'000'000'000ull));

  // Health verdict straight from the registry the pipeline beats into.
  const obs::Health::Report health = obs::Health::global().report();
  std::string health_line = "health: ";
  health_line += obs::health_state_name(health.overall);
  for (const auto& component : health.components) {
    health_line += "  [";
    health_line += component.name;
    health_line += ' ';
    health_line += obs::health_state_name(component.state);
    health_line += ']';
  }
  std::printf("%s\n\n", health_line.c_str());

  // Windowed derivation off the recorder ring.  Rates are shown per
  // simulated *hour*: a polite monitor polls every half-hour, so
  // per-second figures would be all leading zeros.
  const std::uint64_t window_ns = 0;  // everything retained in the ring
  const auto hourly = [&recorder](const char* name) {
    return format_rate(recorder.rate_per_second(name, 0) * 3600.0);
  };
  const std::vector<std::string> header = {"metric", "rate/h (sim)", "window p50us",
                                           "window p99us"};
  std::vector<std::vector<std::string>> rows;
  rows.push_back({"forum pages fetched", hourly("tzgeo_forum_pages_fetched_total"), "-", "-"});
  rows.push_back({"forum polls", hourly("tzgeo_forum_polls_total"), "-", "-"});
  rows.push_back({"tor requests", hourly("tzgeo_tor_requests_total"), "-", "-"});
  rows.push_back(
      {"poll sweep latency", "-",
       std::to_string(recorder.window_quantile("tzgeo_forum_poll_us", 0.5, window_ns)),
       std::to_string(recorder.window_quantile("tzgeo_forum_poll_us", 0.99, window_ns))});
  std::printf("%s\n", util::text_table(header, rows).c_str());

  // Rate series chart: page fetches per simulated hour, one bar per
  // sampling interval.
  std::vector<double> rates = recorder.rate_series("tzgeo_forum_pages_fetched_total");
  for (double& rate : rates) rate *= 3600.0;
  if (!rates.empty()) {
    std::vector<std::string> labels;
    labels.reserve(rates.size());
    for (std::size_t i = 0; i < rates.size(); ++i) labels.push_back(std::to_string(i + 1));
    util::ChartOptions chart;
    chart.title = "page fetch rate per sampling interval (pages/sim-h)";
    chart.height = 8;
    chart.precision = 2;
    std::printf("%s\n", util::bar_chart(labels, rates, chart).c_str());
  }

  // Structured log tail: the last few records in the global ring.
  const std::vector<obs::Log::RecordView> records = obs::Log::global().snapshot();
  const std::size_t tail = records.size() < 5 ? records.size() : 5;
  std::printf("log tail (%zu retained, %llu emitted, %llu suppressed):\n", records.size(),
              static_cast<unsigned long long>(obs::Log::global().emitted()),
              static_cast<unsigned long long>(obs::Log::global().suppressed_level() +
                                              obs::Log::global().suppressed_rate()));
  for (std::size_t i = records.size() - tail; i < records.size(); ++i) {
    const auto& r = records[i];
    std::printf("  %-5s %-34s %s\n", obs::log_level_name(r.level), r.site.c_str(),
                r.message.c_str());
  }
  std::printf("\n");
}

/// The fleet table view: one row per forum plus the fleet counters and
/// the round/poll latency quantiles.
void render_fleet_frame(int frame, int frames, const forum::Fleet& fleet,
                        const obs::TimeSeriesRecorder& recorder, std::uint64_t elapsed_ns,
                        bool ansi) {
  if (ansi) std::printf("\x1b[2J\x1b[H");
  std::printf("tzgeo_top — fleet frame %d/%d (%llu h of campaign time, round %zu/%zu)\n",
              frame, frames,
              static_cast<unsigned long long>(elapsed_ns / 3'600'000'000'000ull),
              fleet.next_round(), fleet.rounds_total());

  const obs::Health::Report health = obs::Health::global().report();
  std::printf("health: %s (%zu components)\n\n", obs::health_state_name(health.overall),
              health.components.size());

  const std::vector<forum::Fleet::ForumSnapshot> snapshots = fleet.snapshot();
  std::size_t active = 0;
  std::size_t quarantined = 0;
  std::size_t parked = 0;
  std::vector<std::vector<std::string>> rows;
  for (const auto& snap : snapshots) {
    switch (snap.status) {
      case forum::ForumStatus::kActive: ++active; break;
      case forum::ForumStatus::kQuarantined: ++quarantined; break;
      case forum::ForumStatus::kParked: ++parked; break;
    }
    rows.push_back({snap.name, forum::to_string(snap.status), std::to_string(snap.polls),
                    std::to_string(snap.polls_failed), std::to_string(snap.records),
                    std::to_string(snap.rounds_skipped),
                    snap.park_reason.empty() ? "-" : snap.park_reason});
  }
  const std::vector<std::string> header = {"forum",   "status",  "polls", "failed",
                                           "records", "skipped", "park reason"};
  std::printf("fleet: %zu active, %zu quarantined, %zu parked\n", active, quarantined,
              parked);
  std::printf("%s\n", util::text_table(header, rows).c_str());

  const std::uint64_t window_ns = 0;  // everything retained in the ring
  const auto hourly = [&recorder](const char* name) {
    return format_rate(recorder.rate_per_second(name, 0) * 3600.0);
  };
  const std::vector<std::string> metric_header = {"metric", "rate/h (sim)", "window p50us",
                                                  "window p99us"};
  std::vector<std::vector<std::string>> metric_rows;
  metric_rows.push_back({"fleet rounds", hourly("tzgeo_fleet_rounds_total"), "-", "-"});
  metric_rows.push_back(
      {"fleet polls skipped", hourly("tzgeo_fleet_polls_skipped_total"), "-", "-"});
  metric_rows.push_back({"forum pages fetched", hourly("tzgeo_forum_pages_fetched_total"),
                         "-", "-"});
  metric_rows.push_back(
      {"round latency", "-",
       std::to_string(recorder.window_quantile("tzgeo_fleet_round_us", 0.5, window_ns)),
       std::to_string(recorder.window_quantile("tzgeo_fleet_round_us", 0.99, window_ns))});
  metric_rows.push_back(
      {"forum poll latency", "-",
       std::to_string(recorder.window_quantile("tzgeo_fleet_forum_poll_us", 0.5, window_ns)),
       std::to_string(
           recorder.window_quantile("tzgeo_fleet_forum_poll_us", 0.99, window_ns))});
  std::printf("%s\n", util::text_table(metric_header, metric_rows).c_str());

  const std::vector<obs::Log::RecordView> records = obs::Log::global().snapshot();
  const std::size_t tail = records.size() < 5 ? records.size() : 5;
  std::printf("log tail (%zu retained):\n", records.size());
  for (std::size_t i = records.size() - tail; i < records.size(); ++i) {
    const auto& r = records[i];
    std::printf("  %-5s %-34s %s\n", obs::log_level_name(r.level), r.site.c_str(),
                r.message.c_str());
  }
  std::printf("\n");
}

/// The --fleet workload: N small staggered forums, one of them scripted
/// through a mid-campaign circuit-drop window so the fleet ladder shows.
void run_fleet_dashboard(const Options& options, obs::TimeSeriesRecorder& recorder) {
  const auto forums = static_cast<std::size_t>(options.fleet);
  util::Rng consensus_rng{300};
  const tor::Consensus consensus = tor::Consensus::synthetic(120, consensus_rng);
  const tz::UtcSeconds t0 = tz::to_utc_seconds({tz::CivilDate{2016, 1, 10}, 0, 0, 0});
  const std::int64_t frame_seconds = options.interval_seconds * options.polls_per_frame;

  std::vector<std::unique_ptr<forum::ForumEngine>> engines;
  const char* zones[] = {"Europe/Moscow", "America/New_York", "Asia/Tokyo", "Europe/Berlin"};
  for (std::size_t i = 0; i < forums; ++i) {
    synth::DatasetOptions dataset_options;
    dataset_options.seed = 2100 + i;
    dataset_options.inactive_fraction = 0.0;
    dataset_options.active_volume_floor = 4000.0;
    dataset_options.trace.start = tz::CivilDate{2016, 1, 9};
    dataset_options.trace.end = tz::CivilDate{2016, 1, 20};
    const synth::RegionSpec region{"Top" + std::to_string(i), zones[i % 4], 3};
    forum::ForumConfig config;
    config.name = "Fleet Board " + std::to_string(i);
    config.policy = forum::TimestampPolicy::kHidden;
    engines.push_back(
        std::make_unique<forum::ForumEngine>(config, synth::make_region_dataset(region, 3, dataset_options)));
  }

  // One forum gets battered mid-campaign so the quarantine column moves.
  fault::FaultPlan plan;
  plan.seed = 1307;
  plan.circuit_drops(t0 + frame_seconds, t0 + 3 * frame_seconds, 0.9);

  std::vector<forum::FleetForumSpec> specs;
  for (std::size_t i = 0; i < forums; ++i) {
    forum::FleetForumSpec spec;
    spec.name = "board" + std::to_string(i);
    forum::ForumEngine* const engine = engines[i].get();
    spec.handler = [engine](const tor::Request& request, std::int64_t now) {
      return engine->handle(request, now);
    };
    spec.service_key = 500 + i;
    if (i == 1 % forums) spec.fault_plan = &plan;
    specs.push_back(std::move(spec));
  }

  forum::FleetOptions fleet_options;
  fleet_options.start_time_seconds = t0;
  fleet_options.poll_interval_seconds = options.interval_seconds;
  fleet_options.duration_seconds =
      frame_seconds * options.frames;
  fleet_options.seed = 46;
  fleet_options.forum_quarantine_after = 3;
  fleet_options.forum_quarantine_cooldown_rounds = 4;
  forum::Fleet fleet{consensus, std::move(specs), fleet_options};

  // The fleet's forums run on internal per-forum clocks; the dashboard
  // samples on the campaign schedule instead.
  const auto round_ns = [&](std::size_t round) {
    return static_cast<std::uint64_t>(t0 + static_cast<std::int64_t>(round) *
                                               options.interval_seconds) *
           1'000'000'000ull;
  };
  const std::uint64_t start_ns = round_ns(0);
  recorder.sample(start_ns);

  for (int frame = 1; frame <= options.frames; ++frame) {
    for (int i = 0; i < options.polls_per_frame && !fleet.done(); ++i) {
      fleet.poll_round();
    }
    recorder.sample(round_ns(fleet.next_round()));
    render_fleet_frame(frame, options.frames, fleet, recorder,
                       round_ns(fleet.next_round()) - start_ns, options.ansi);
  }
  if (fleet.done()) {
    const forum::FleetResult result = fleet.finish();
    std::printf("campaign verdict: %zu rounds, %zu active, %zu quarantined, %zu parked%s\n",
                result.rounds, result.active, result.quarantined, result.parked,
                result.full_fleet() ? " (full fleet)" : "");
  }
}

/// The default workload: one synthetic forum behind a faulty transport.
void run_monitor_dashboard(const Options& options, obs::TimeSeriesRecorder& recorder) {
  // Workload: one synthetic Russian-speaking forum with hidden
  // timestamps behind the simulated transport — the same shape as
  // examples/live_monitor, scaled down so a frame renders in tens of
  // milliseconds.  A scripted circuit-drop window makes the middle
  // frames visibly degraded (quarantine + failed-poll log traffic).
  synth::DatasetOptions dataset_options;
  dataset_options.seed = 2020;
  dataset_options.scale = 0.15;
  const synth::Dataset crowd =
      synth::make_forum_crowd(synth::paper_forum("CRD Club"), dataset_options);
  forum::ForumConfig config;
  config.name = "CRD Club (tzgeo_top workload)";
  config.policy = forum::TimestampPolicy::kHidden;
  forum::ForumEngine engine{config, crowd};

  util::Rng consensus_rng{300};
  const tor::Consensus consensus = tor::Consensus::synthetic(120, consensus_rng);
  const tz::UtcSeconds t0 = tz::to_utc_seconds({tz::CivilDate{2016, 1, 10}, 0, 0, 0});
  util::SimClock clock{t0};

  const std::int64_t frame_seconds =
      options.interval_seconds * options.polls_per_frame;
  fault::FaultPlan plan;
  plan.seed = 1303;
  plan.circuit_drops(t0 + frame_seconds, t0 + 2 * frame_seconds, 0.35);
  fault::FaultInjector injector{plan};
  tor::TransportOptions transport_options;
  transport_options.fault_injector = &injector;
  tor::OnionTransport transport{consensus, clock, 44, transport_options};
  const std::string onion =
      transport.host(util::hash64("tzgeo-top-board"),
                     [&engine](const tor::Request& request, std::int64_t now) {
                       return engine.handle(request, now);
                     });

  const auto sim_now_ns = [&clock] {
    return static_cast<std::uint64_t>(clock.now_millis()) * 1'000'000ull;
  };
  const std::uint64_t start_ns = sim_now_ns();
  recorder.sample(start_ns);

  for (int frame = 1; frame <= options.frames; ++frame) {
    forum::MonitorOptions monitor;
    monitor.poll_interval_seconds = options.interval_seconds;
    monitor.duration_seconds = frame_seconds;
    try {
      (void)forum::monitor_forum(transport, onion, monitor);
    } catch (const forum::CrawlError&) {
      // A lost round still renders: the dashboard's job is visibility,
      // and the failure shows up in the health/log panels.
    }
    recorder.sample(sim_now_ns());
    render_frame(frame, options.frames, recorder, sim_now_ns() - start_ns, options.ansi);
  }
}

}  // namespace

int main(int argc, char** argv) {
  Options options;
  if (!parse_args(argc, argv, options)) {
    print_usage();
    return 2;
  }
  if constexpr (obs::kDisabled) {
    std::printf("tzgeo_top: observability compiled out (TZGEO_OBS_DISABLED); nothing to show\n");
    return 0;
  }

  if (!options.jsonl_out.empty() &&
      !obs::Log::global().open_jsonl_sink(options.jsonl_out)) {
    std::fprintf(stderr, "tzgeo_top: cannot open %s\n", options.jsonl_out.c_str());
    return 2;
  }

  // Register the pipeline metrics before the first sample so the
  // baseline row already covers every column.
  (void)obs::PipelineMetrics::get();
  obs::TimeSeriesRecorder recorder{256};
  if (options.fleet > 0) {
    run_fleet_dashboard(options, recorder);
  } else {
    run_monitor_dashboard(options, recorder);
  }

  if (!options.series_out.empty()) {
    std::ofstream out{options.series_out};
    out << recorder.to_json().dump(2) << "\n";
    if (!out) {
      std::fprintf(stderr, "tzgeo_top: cannot write %s\n", options.series_out.c_str());
      return 2;
    }
  }
  if (!options.prom_out.empty()) {
    std::ofstream out{options.prom_out};
    out << recorder.prometheus();
    if (!out) {
      std::fprintf(stderr, "tzgeo_top: cannot write %s\n", options.prom_out.c_str());
      return 2;
    }
  }
  if (!options.healthz_out.empty()) {
    std::ofstream out{options.healthz_out};
    out << obs::Health::global().to_json().dump(2) << "\n";
    if (!out) {
      std::fprintf(stderr, "tzgeo_top: cannot write %s\n", options.healthz_out.c_str());
      return 2;
    }
  }
  obs::Log::global().close_sink();
  return 0;
}
