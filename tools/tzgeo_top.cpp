// tzgeo_top: live terminal dashboard over the obs time-series recorder.
//
// Drives a self-contained monitoring workload (synthetic forum behind
// the simulated tor transport, same shape as examples/live_monitor) and
// renders one dashboard frame per monitoring round:
//
//   - the healthz verdict line (obs::Health),
//   - windowed rates and rolling-window latency quantiles derived from
//     TimeSeriesRecorder samples (not lifetime counters),
//   - an ascii chart of the page-fetch rate series,
//   - the tail of the structured log ring.
//
// The recorder is sampled on the *simulated* clock, so rates read as
// per-second-of-campaign-time and the whole run is deterministic —
// `--frames 2` in CI exercises every render path byte-stably.
//
// Flags:
//   --frames N           dashboard frames to render (default 6)
//   --polls-per-frame N  monitor polls between samples (default 48)
//   --interval S         simulated seconds between polls (default 1800)
//   --ansi               clear the screen between frames (live top feel)
//   --series-out FILE    write the recorder's JSON series on exit
//   --prom-out FILE      write the timestamped Prometheus exposition
//   --jsonl-out FILE     stream structured log records to FILE
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "fault/injector.hpp"
#include "fault/plan.hpp"
#include "forum/engine.hpp"
#include "forum/error.hpp"
#include "forum/monitor.hpp"
#include "obs/health.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/pipeline_metrics.hpp"
#include "obs/timeseries.hpp"
#include "synth/dataset.hpp"
#include "tor/transport.hpp"
#include "util/ascii_chart.hpp"
#include "util/strings.hpp"

using namespace tzgeo;

namespace {

struct Options {
  int frames = 6;
  int polls_per_frame = 48;
  std::int64_t interval_seconds = 1800;
  bool ansi = false;
  std::string series_out;
  std::string prom_out;
  std::string jsonl_out;
};

void print_usage() {
  std::printf(
      "usage: tzgeo_top [--frames N] [--polls-per-frame N] [--interval S] [--ansi]\n"
      "                 [--series-out FILE] [--prom-out FILE] [--jsonl-out FILE]\n");
}

[[nodiscard]] bool parse_args(int argc, char** argv, Options& options) {
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    const auto value = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--frames") {
      const char* v = value();
      if (v == nullptr) return false;
      options.frames = std::atoi(v);
    } else if (arg == "--polls-per-frame") {
      const char* v = value();
      if (v == nullptr) return false;
      options.polls_per_frame = std::atoi(v);
    } else if (arg == "--interval") {
      const char* v = value();
      if (v == nullptr) return false;
      options.interval_seconds = std::atoll(v);
    } else if (arg == "--ansi") {
      options.ansi = true;
    } else if (arg == "--series-out") {
      const char* v = value();
      if (v == nullptr) return false;
      options.series_out = v;
    } else if (arg == "--prom-out") {
      const char* v = value();
      if (v == nullptr) return false;
      options.prom_out = v;
    } else if (arg == "--jsonl-out") {
      const char* v = value();
      if (v == nullptr) return false;
      options.jsonl_out = v;
    } else if (arg == "--help" || arg == "-h") {
      print_usage();
      std::exit(0);
    } else {
      std::fprintf(stderr, "tzgeo_top: unknown flag %s\n", std::string{arg}.c_str());
      return false;
    }
  }
  return options.frames > 0 && options.polls_per_frame > 0 &&
         options.interval_seconds > 0;
}

[[nodiscard]] std::string format_rate(double value) {
  return util::format_fixed(value, value < 10 ? 3 : 1);
}

void render_frame(int frame, int frames, const obs::TimeSeriesRecorder& recorder,
                  std::uint64_t elapsed_ns, bool ansi) {
  if (ansi) std::printf("\x1b[2J\x1b[H");
  std::printf("tzgeo_top — frame %d/%d (%llu h of campaign time)\n", frame, frames,
              static_cast<unsigned long long>(elapsed_ns / 3'600'000'000'000ull));

  // Health verdict straight from the registry the pipeline beats into.
  const obs::Health::Report health = obs::Health::global().report();
  std::string health_line = "health: ";
  health_line += obs::health_state_name(health.overall);
  for (const auto& component : health.components) {
    health_line += "  [";
    health_line += component.name;
    health_line += ' ';
    health_line += obs::health_state_name(component.state);
    health_line += ']';
  }
  std::printf("%s\n\n", health_line.c_str());

  // Windowed derivation off the recorder ring.  Rates are shown per
  // simulated *hour*: a polite monitor polls every half-hour, so
  // per-second figures would be all leading zeros.
  const std::uint64_t window_ns = 0;  // everything retained in the ring
  const auto hourly = [&recorder](const char* name) {
    return format_rate(recorder.rate_per_second(name, 0) * 3600.0);
  };
  const std::vector<std::string> header = {"metric", "rate/h (sim)", "window p50us",
                                           "window p99us"};
  std::vector<std::vector<std::string>> rows;
  rows.push_back({"forum pages fetched", hourly("tzgeo_forum_pages_fetched_total"), "-", "-"});
  rows.push_back({"forum polls", hourly("tzgeo_forum_polls_total"), "-", "-"});
  rows.push_back({"tor requests", hourly("tzgeo_tor_requests_total"), "-", "-"});
  rows.push_back(
      {"poll sweep latency", "-",
       std::to_string(recorder.window_quantile("tzgeo_forum_poll_us", 0.5, window_ns)),
       std::to_string(recorder.window_quantile("tzgeo_forum_poll_us", 0.99, window_ns))});
  std::printf("%s\n", util::text_table(header, rows).c_str());

  // Rate series chart: page fetches per simulated hour, one bar per
  // sampling interval.
  std::vector<double> rates = recorder.rate_series("tzgeo_forum_pages_fetched_total");
  for (double& rate : rates) rate *= 3600.0;
  if (!rates.empty()) {
    std::vector<std::string> labels;
    labels.reserve(rates.size());
    for (std::size_t i = 0; i < rates.size(); ++i) labels.push_back(std::to_string(i + 1));
    util::ChartOptions chart;
    chart.title = "page fetch rate per sampling interval (pages/sim-h)";
    chart.height = 8;
    chart.precision = 2;
    std::printf("%s\n", util::bar_chart(labels, rates, chart).c_str());
  }

  // Structured log tail: the last few records in the global ring.
  const std::vector<obs::Log::RecordView> records = obs::Log::global().snapshot();
  const std::size_t tail = records.size() < 5 ? records.size() : 5;
  std::printf("log tail (%zu retained, %llu emitted, %llu suppressed):\n", records.size(),
              static_cast<unsigned long long>(obs::Log::global().emitted()),
              static_cast<unsigned long long>(obs::Log::global().suppressed_level() +
                                              obs::Log::global().suppressed_rate()));
  for (std::size_t i = records.size() - tail; i < records.size(); ++i) {
    const auto& r = records[i];
    std::printf("  %-5s %-34s %s\n", obs::log_level_name(r.level), r.site.c_str(),
                r.message.c_str());
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  Options options;
  if (!parse_args(argc, argv, options)) {
    print_usage();
    return 2;
  }
  if constexpr (obs::kDisabled) {
    std::printf("tzgeo_top: observability compiled out (TZGEO_OBS_DISABLED); nothing to show\n");
    return 0;
  }

  // Workload: one synthetic Russian-speaking forum with hidden
  // timestamps behind the simulated transport — the same shape as
  // examples/live_monitor, scaled down so a frame renders in tens of
  // milliseconds.  A scripted circuit-drop window makes the middle
  // frames visibly degraded (quarantine + failed-poll log traffic).
  synth::DatasetOptions dataset_options;
  dataset_options.seed = 2020;
  dataset_options.scale = 0.15;
  const synth::Dataset crowd =
      synth::make_forum_crowd(synth::paper_forum("CRD Club"), dataset_options);
  forum::ForumConfig config;
  config.name = "CRD Club (tzgeo_top workload)";
  config.policy = forum::TimestampPolicy::kHidden;
  forum::ForumEngine engine{config, crowd};

  util::Rng consensus_rng{300};
  const tor::Consensus consensus = tor::Consensus::synthetic(120, consensus_rng);
  const tz::UtcSeconds t0 = tz::to_utc_seconds({tz::CivilDate{2016, 1, 10}, 0, 0, 0});
  util::SimClock clock{t0};

  const std::int64_t frame_seconds =
      options.interval_seconds * options.polls_per_frame;
  fault::FaultPlan plan;
  plan.seed = 1303;
  plan.circuit_drops(t0 + frame_seconds, t0 + 2 * frame_seconds, 0.35);
  fault::FaultInjector injector{plan};
  tor::TransportOptions transport_options;
  transport_options.fault_injector = &injector;
  tor::OnionTransport transport{consensus, clock, 44, transport_options};
  const std::string onion =
      transport.host(util::hash64("tzgeo-top-board"),
                     [&engine](const tor::Request& request, std::int64_t now) {
                       return engine.handle(request, now);
                     });

  if (!options.jsonl_out.empty() &&
      !obs::Log::global().open_jsonl_sink(options.jsonl_out)) {
    std::fprintf(stderr, "tzgeo_top: cannot open %s\n", options.jsonl_out.c_str());
    return 2;
  }

  // Register the pipeline metrics before the first sample so the
  // baseline row already covers every column.
  (void)obs::PipelineMetrics::get();
  obs::TimeSeriesRecorder recorder{256};
  const auto sim_now_ns = [&clock] {
    return static_cast<std::uint64_t>(clock.now_millis()) * 1'000'000ull;
  };
  const std::uint64_t start_ns = sim_now_ns();
  recorder.sample(start_ns);

  for (int frame = 1; frame <= options.frames; ++frame) {
    forum::MonitorOptions monitor;
    monitor.poll_interval_seconds = options.interval_seconds;
    monitor.duration_seconds = frame_seconds;
    try {
      (void)forum::monitor_forum(transport, onion, monitor);
    } catch (const forum::CrawlError&) {
      // A lost round still renders: the dashboard's job is visibility,
      // and the failure shows up in the health/log panels.
    }
    recorder.sample(sim_now_ns());
    render_frame(frame, options.frames, recorder, sim_now_ns() - start_ns, options.ansi);
  }

  if (!options.series_out.empty()) {
    std::ofstream out{options.series_out};
    out << recorder.to_json().dump(2) << "\n";
    if (!out) {
      std::fprintf(stderr, "tzgeo_top: cannot write %s\n", options.series_out.c_str());
      return 2;
    }
  }
  if (!options.prom_out.empty()) {
    std::ofstream out{options.prom_out};
    out << recorder.prometheus();
    if (!out) {
      std::fprintf(stderr, "tzgeo_top: cannot write %s\n", options.prom_out.c_str());
      return 2;
    }
  }
  obs::Log::global().close_sink();
  return 0;
}
