#include "tzgeo_analyze/passes.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <string>

namespace tzgeo::analyze {

namespace {

/// The class prefix of a qualified function name ("" for free functions).
[[nodiscard]] std::string class_of(const std::string& qualified) {
  const std::size_t pos = qualified.rfind("::");
  return pos == std::string::npos ? std::string() : qualified.substr(0, pos);
}

[[nodiscard]] std::string last_component(const std::string& qualified) {
  const std::size_t pos = qualified.rfind("::");
  return pos == std::string::npos ? qualified : qualified.substr(pos + 2);
}

/// Canonical lock-graph node for a mutex expression acquired inside
/// `owner`.  Single-identifier expressions (members like `mutex_`) are
/// qualified by the owning class so identically named members of
/// different classes stay distinct nodes.
[[nodiscard]] std::string mutex_node(const std::string& owner, const std::string& expr) {
  const bool simple = std::all_of(expr.begin(), expr.end(), [](char c) {
    return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
  });
  const std::string cls = class_of(owner);
  if (simple && !cls.empty()) return cls + "::" + expr;
  return expr;
}

struct FnRef {
  const TuFacts* tu = nullptr;
  const FunctionFacts* fn = nullptr;
};

struct EdgeInfo {
  std::string file;
  std::uint32_t line = 0;
  std::string detail;  ///< "<fn> acquires B while holding A" etc.
};

}  // namespace

void check_lock_order(const std::vector<TuFacts>& tus, std::vector<Finding>& findings) {
  // Index every function by the last component of its name, for
  // conservative call resolution (all same-named candidates are merged).
  std::map<std::string, std::vector<FnRef>> by_name;
  std::vector<FnRef> all;
  for (const TuFacts& tu : tus) {
    for (const FunctionFacts& fn : tu.functions) {
      by_name[last_component(fn.name)].push_back(FnRef{&tu, &fn});
      all.push_back(FnRef{&tu, &fn});
    }
  }

  // Fixpoint: the set of lock nodes each function may acquire, directly
  // or through any resolvable callee.
  std::map<const FunctionFacts*, std::set<std::string>> may_lock;
  for (const FnRef& r : all) {
    std::set<std::string>& s = may_lock[r.fn];
    for (const LockEvent& ev : r.fn->lock_events) {
      if (ev.kind != LockEvent::Kind::kAcquire) continue;
      for (const std::string& m : ev.mutexes) s.insert(mutex_node(r.fn->name, m));
    }
  }
  for (bool changed = true; changed;) {
    changed = false;
    for (const FnRef& r : all) {
      std::set<std::string>& s = may_lock[r.fn];
      for (const std::string& callee : r.fn->calls) {
        const auto it = by_name.find(callee);
        if (it == by_name.end()) continue;
        for (const FnRef& cand : it->second) {
          for (const std::string& node : may_lock[cand.fn]) {
            if (s.insert(node).second) changed = true;
          }
        }
      }
    }
  }

  // Replay each function's event stream to collect ordered edges.
  std::map<std::pair<std::string, std::string>, EdgeInfo> edges;
  struct Held {
    std::string node;
    int depth = 0;
    int group = -1;  ///< scoped_lock group id; no edges within a group
  };
  int next_group = 0;
  for (const FnRef& r : all) {
    std::vector<Held> held;
    for (const LockEvent& ev : r.fn->lock_events) {
      switch (ev.kind) {
        case LockEvent::Kind::kBlockClose: {
          held.erase(std::remove_if(held.begin(), held.end(),
                                    [&](const Held& h) { return h.depth > ev.depth; }),
                     held.end());
          break;
        }
        case LockEvent::Kind::kAcquire: {
          const int group = ev.atomic_multi ? next_group++ : -1;
          for (const std::string& m : ev.mutexes) {
            const std::string node = mutex_node(r.fn->name, m);
            for (const Held& h : held) {
              if (group != -1 && h.group == group) continue;  // scoped_lock is atomic
              if (h.node == node) {
                Finding f;
                f.file = r.tu->path;
                f.line = ev.line;
                f.rule = "lock-order";
                f.message = "recursive acquisition of '" + node + "' in " + r.fn->name +
                            " (already held; std::mutex deadlocks on re-lock)";
                f.snippet = node;
                findings.push_back(std::move(f));
                continue;
              }
              edges.emplace(std::make_pair(h.node, node),
                            EdgeInfo{r.tu->path, ev.line,
                                     r.fn->name + " acquires '" + node +
                                         "' while holding '" + h.node + "'"});
            }
            held.push_back(Held{node, ev.depth, group});
          }
          break;
        }
        case LockEvent::Kind::kCall: {
          if (held.empty()) break;
          const auto it = by_name.find(ev.callee);
          if (it == by_name.end()) break;
          std::set<std::string> callee_locks;
          for (const FnRef& cand : it->second) {
            // Calling a sibling method of the same class re-enters the
            // same lock domain; that is the interesting case, but other
            // candidates are merged too (conservative).
            const std::set<std::string>& s = may_lock[cand.fn];
            callee_locks.insert(s.begin(), s.end());
          }
          for (const std::string& node : callee_locks) {
            for (const Held& h : held) {
              if (h.node == node) continue;  // self-wait via call: too noisy
              edges.emplace(std::make_pair(h.node, node),
                            EdgeInfo{r.tu->path, ev.line,
                                     r.fn->name + " calls " + ev.callee +
                                         " (which may lock '" + node +
                                         "') while holding '" + h.node + "'"});
            }
          }
          break;
        }
      }
    }
  }

  // Cycle detection over the edge graph; each cycle is reported once,
  // keyed by its sorted node set.
  std::map<std::string, std::set<std::string>> adj;
  for (const auto& [edge, info] : edges) adj[edge.first].insert(edge.second);
  std::set<std::string> reported;
  for (const auto& [start, unused] : adj) {
    (void)unused;
    // Iterative DFS from `start` looking for a path back to `start`.
    std::vector<std::pair<std::string, std::vector<std::string>>> stack;
    stack.emplace_back(start, std::vector<std::string>{start});
    std::set<std::string> visited;
    while (!stack.empty()) {
      auto [node, path] = stack.back();
      stack.pop_back();
      for (const std::string& next : adj[node]) {
        if (next == start) {
          std::vector<std::string> key_nodes = path;
          std::sort(key_nodes.begin(), key_nodes.end());
          std::string key;
          for (const std::string& n : key_nodes) key += n + "|";
          if (!reported.insert(key).second) continue;
          std::string cyc;
          for (const std::string& n : path) cyc += n + " -> ";
          cyc += start;
          const EdgeInfo& info = edges.at({path.back(), start});
          Finding f;
          f.file = info.file;
          f.line = info.line;
          f.rule = "lock-order";
          f.message = "inconsistent lock acquisition order (potential deadlock): " + cyc +
                      "; here " + info.detail;
          f.snippet = cyc;
          findings.push_back(std::move(f));
          continue;
        }
        if (visited.insert(next).second) {
          std::vector<std::string> next_path = path;
          next_path.push_back(next);
          stack.emplace_back(next, std::move(next_path));
        }
      }
    }
  }
}

void check_hot_alloc(const std::vector<TuFacts>& tus,
                     const std::vector<TokenizedSource>& toks,
                     std::vector<Finding>& findings) {
  for (std::size_t i = 0; i < tus.size(); ++i) {
    const TuFacts& tu = tus[i];
    const TokenizedSource& tok = toks[i];
    for (const FunctionFacts& fn : tu.functions) {
      if (!fn.hot && fn.hot_region_starts.empty()) continue;
      const auto in_hot_range = [&](std::uint32_t line) {
        if (fn.hot && line >= fn.open_line && line <= fn.end_line) return true;
        // A region marker opens a hot range that extends to the end of
        // the function (regions are typically the tail loop of a kernel).
        return std::any_of(fn.hot_region_starts.begin(), fn.hot_region_starts.end(),
                           [&](std::uint32_t start) {
                             return line >= start && line <= fn.end_line;
                           });
      };
      std::set<std::string> reserved;  // receivers absolved by reserve/resize
      for (const AllocEvent& ev : fn.allocs) {
        if (ev.what == "reserve" || ev.what == "resize") {
          if (!ev.receiver.empty()) reserved.insert(ev.receiver);
          continue;
        }
        if (!in_hot_range(ev.line)) continue;
        const bool growth = ev.what == "push_back" || ev.what == "emplace_back" ||
                            ev.what == "append" || ev.what == "insert" ||
                            ev.what == "emplace";
        if (growth && reserved.count(ev.receiver) > 0) continue;
        if (tok.allowed(ev.line, "hot-alloc")) continue;
        Finding f;
        f.file = tu.path;
        f.line = ev.line;
        f.rule = "hot-alloc";
        f.message = "'" + ev.what + "'" +
                    (ev.receiver.empty() ? std::string() : " on '" + ev.receiver + "'") +
                    " inside hot region of " + fn.name +
                    (growth ? " without a prior reserve() on the receiver"
                            : " (heap allocation in a tzgeo: hot path)") +
                    "; hoist it out, reserve up front, or annotate"
                    " 'tzgeo-lint: allow(hot-alloc)' with a justification";
        f.snippet = ev.what + (ev.receiver.empty() ? "" : " " + ev.receiver);
        findings.push_back(std::move(f));
      }
    }
  }
}

void check_determinism(const std::vector<TuFacts>& tus,
                       const std::vector<TokenizedSource>& toks,
                       std::vector<Finding>& findings) {
  // Seed: functions that mention checkpoint/CRC/exporter machinery.
  // Closure: anything they call (by name) also shapes the output bytes.
  std::map<std::string, std::vector<const FunctionFacts*>> by_name;
  std::vector<std::pair<const TuFacts*, const FunctionFacts*>> all;
  for (const TuFacts& tu : tus) {
    for (const FunctionFacts& fn : tu.functions) {
      by_name[last_component(fn.name)].push_back(&fn);
      all.emplace_back(&tu, &fn);
    }
  }
  std::set<const FunctionFacts*> feeding;
  for (const auto& [tu, fn] : all) {
    (void)tu;
    if (fn->mentions_sink) feeding.insert(fn);
  }
  for (bool changed = true; changed;) {
    changed = false;
    for (const auto& [tu, fn] : all) {
      (void)tu;
      if (feeding.count(fn) == 0) continue;
      for (const std::string& callee : fn->calls) {
        const auto it = by_name.find(callee);
        if (it == by_name.end()) continue;
        for (const FunctionFacts* cand : it->second) {
          if (feeding.insert(cand).second) changed = true;
        }
      }
    }
  }

  for (std::size_t i = 0; i < tus.size(); ++i) {
    const TuFacts& tu = tus[i];
    const TokenizedSource& tok = toks[i];
    for (const FunctionFacts& fn : tu.functions) {
      if (feeding.count(&fn) == 0) continue;
      for (const IterEvent& ev : fn.unordered_iters) {
        if (tok.allowed(ev.line, "det-unordered-output")) continue;
        Finding f;
        f.file = tu.path;
        f.line = ev.line;
        f.rule = "det-unordered-output";
        f.message = "iteration over unordered container '" + ev.container + "' in " +
                    fn.name + ", which feeds checkpoint/CRC/exporter output;"
                    " hash order is implementation-defined — sort keys first or use an"
                    " ordered container";
        f.snippet = ev.container;
        findings.push_back(std::move(f));
      }
    }
  }
}

}  // namespace tzgeo::analyze
