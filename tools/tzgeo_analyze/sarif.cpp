#include "tzgeo_analyze/sarif.hpp"

#include <cctype>
#include <map>
#include <set>
#include <string_view>

namespace tzgeo::analyze {

namespace {

/// Minimal validating JSON scanner (RFC 8259 grammar, no semantics) —
/// the same validation-only idiom tzgeo_obs_check uses.
class JsonValidator {
 public:
  explicit JsonValidator(std::string_view text) : text_(text) {}

  [[nodiscard]] bool valid() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == text_.size();
  }

 private:
  [[nodiscard]] bool value() {
    if (pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case '{':
        return object();
      case '[':
        return array();
      case '"':
        return string();
      case 't':
        return literal("true");
      case 'f':
        return literal("false");
      case 'n':
        return literal("null");
      default:
        return number();
    }
  }

  [[nodiscard]] bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return true;
    }
    for (;;) {
      skip_ws();
      if (peek() != '"' || !string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == '}') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  [[nodiscard]] bool array() {
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return true;
    }
    for (;;) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == ']') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  [[nodiscard]] bool string() {
    ++pos_;  // opening quote
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (c == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) return false;
        const char esc = text_[pos_];
        if (esc == 'u') {
          for (int i = 0; i < 4; ++i) {
            ++pos_;
            if (pos_ >= text_.size() ||
                std::isxdigit(static_cast<unsigned char>(text_[pos_])) == 0) {
              return false;
            }
          }
        } else if (std::string_view{"\"\\/bfnrt"}.find(esc) == std::string_view::npos) {
          return false;
        }
      } else if (static_cast<unsigned char>(c) < 0x20) {
        return false;  // raw control character
      }
      ++pos_;
    }
    return false;  // unterminated
  }

  [[nodiscard]] bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    if (std::isdigit(static_cast<unsigned char>(peek())) == 0) return false;
    while (std::isdigit(static_cast<unsigned char>(peek())) != 0) ++pos_;
    if (peek() == '.') {
      ++pos_;
      if (std::isdigit(static_cast<unsigned char>(peek())) == 0) return false;
      while (std::isdigit(static_cast<unsigned char>(peek())) != 0) ++pos_;
    }
    if (peek() == 'e' || peek() == 'E') {
      ++pos_;
      if (peek() == '+' || peek() == '-') ++pos_;
      if (std::isdigit(static_cast<unsigned char>(peek())) == 0) return false;
      while (std::isdigit(static_cast<unsigned char>(peek())) != 0) ++pos_;
    }
    return pos_ > start;
  }

  [[nodiscard]] bool literal(std::string_view word) {
    if (text_.compare(pos_, word.size(), word) != 0) return false;
    pos_ += word.size();
    return true;
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }

  [[nodiscard]] char peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }

  std::string_view text_;
  std::size_t pos_ = 0;
};

[[nodiscard]] std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          static const char* kHex = "0123456789abcdef";
          out += "\\u00";
          out += kHex[(static_cast<unsigned char>(c) >> 4) & 0xF];
          out += kHex[static_cast<unsigned char>(c) & 0xF];
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Collects every value of `"key": "..."` in already-validated JSON text.
[[nodiscard]] std::set<std::string> string_values_of(const std::string& text,
                                                     std::string_view key) {
  std::set<std::string> out;
  const std::string needle = "\"" + std::string(key) + "\"";
  std::size_t pos = 0;
  while ((pos = text.find(needle, pos)) != std::string::npos) {
    std::size_t p = pos + needle.size();
    while (p < text.size() && (text[p] == ' ' || text[p] == ':')) ++p;
    if (p < text.size() && text[p] == '"') {
      const std::size_t close = text.find('"', p + 1);
      if (close != std::string::npos) out.insert(text.substr(p + 1, close - p - 1));
    }
    pos += needle.size();
  }
  return out;
}

}  // namespace

std::string to_sarif(const std::vector<Finding>& findings) {
  // Distinct rules in first-seen order, with a stable index for results.
  std::vector<std::string> rule_order;
  std::map<std::string, std::size_t> rule_index;
  std::map<std::string, std::string> rule_message;
  for (const Finding& f : findings) {
    if (f.baselined) continue;
    if (rule_index.emplace(f.rule, rule_order.size()).second) {
      rule_order.push_back(f.rule);
      rule_message[f.rule] = f.message;
    }
  }

  std::string out;
  out +=
      "{\n"
      "  \"$schema\": "
      "\"https://json.schemastore.org/sarif-2.1.0.json\",\n"
      "  \"version\": \"2.1.0\",\n"
      "  \"runs\": [\n"
      "    {\n"
      "      \"tool\": {\n"
      "        \"driver\": {\n"
      "          \"name\": \"tzgeo_analyze\",\n"
      "          \"informationUri\": "
      "\"https://example.invalid/tzgeo/tools/tzgeo_analyze\",\n"
      "          \"rules\": [";
  for (std::size_t i = 0; i < rule_order.size(); ++i) {
    const std::string& rule = rule_order[i];
    out += i == 0 ? "\n" : ",\n";
    out += "            {\"id\": \"" + json_escape(rule) +
           "\", \"shortDescription\": {\"text\": \"" + json_escape(rule_message[rule]) +
           "\"}}";
  }
  out += rule_order.empty() ? "]\n" : "\n          ]\n";
  out +=
      "        }\n"
      "      },\n"
      "      \"results\": [";
  bool first = true;
  for (const Finding& f : findings) {
    if (f.baselined) continue;
    out += first ? "\n" : ",\n";
    first = false;
    out += "        {\n";
    out += "          \"ruleId\": \"" + json_escape(f.rule) + "\",\n";
    out += "          \"ruleIndex\": " + std::to_string(rule_index[f.rule]) + ",\n";
    out += "          \"level\": \"error\",\n";
    out += "          \"message\": {\"text\": \"" + json_escape(f.message) + "\"},\n";
    out +=
        "          \"locations\": [{\"physicalLocation\": {\"artifactLocation\": "
        "{\"uri\": \"" +
        json_escape(f.file) + "\"}, \"region\": {\"startLine\": " +
        std::to_string(f.line) + "}}}]\n";
    out += "        }";
  }
  out += first ? "]\n" : "\n      ]\n";
  out +=
      "    }\n"
      "  ]\n"
      "}\n";
  return out;
}

bool sarif_check(const std::string& text, std::string* error) {
  const auto fail = [&](const char* why) {
    if (error != nullptr) *error = why;
    return false;
  };
  JsonValidator validator(text);
  if (!validator.valid()) return fail("not well-formed JSON");
  if (text.find("\"version\": \"2.1.0\"") == std::string::npos) {
    return fail("missing SARIF version 2.1.0");
  }
  if (text.find("\"name\": \"tzgeo_analyze\"") == std::string::npos) {
    return fail("missing tool driver name");
  }
  if (text.find("\"runs\"") == std::string::npos) return fail("missing runs array");
  if (text.find("\"results\"") == std::string::npos) return fail("missing results array");
  // Every result's ruleId must have a matching rule descriptor id.
  const std::set<std::string> rule_ids = string_values_of(text, "ruleId");
  const std::set<std::string> declared = string_values_of(text, "id");
  for (const std::string& id : rule_ids) {
    if (declared.count(id) == 0) {
      if (error != nullptr) *error = "result ruleId '" + id + "' has no rule descriptor";
      return false;
    }
  }
  return true;
}

}  // namespace tzgeo::analyze
