#include "tzgeo_analyze/tokenizer.hpp"

#include <algorithm>
#include <cctype>

namespace tzgeo::analyze {

namespace {

[[nodiscard]] bool is_word_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

[[nodiscard]] bool is_ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/// Scans one comment's text for marker spellings and records them on
/// `mark`.  Called once per comment per line (line comments are one call;
/// block comments get one call per line they span).
void parse_markers(std::string_view comment, LineMark& mark) {
  if (comment.find("tzgeo: hot") != std::string_view::npos) mark.hot = true;
  for (const std::string_view prefix : {std::string_view("tzgeo-lint: allow("),
                                        std::string_view("tzgeo: allow(")}) {
    std::size_t pos = 0;
    while ((pos = comment.find(prefix, pos)) != std::string_view::npos) {
      const std::size_t begin = pos + prefix.size();
      const std::size_t close = comment.find(')', begin);
      if (close == std::string_view::npos) break;
      std::string rule(comment.substr(begin, close - begin));
      if (!rule.empty() &&
          std::find(mark.allows.begin(), mark.allows.end(), rule) == mark.allows.end()) {
        mark.allows.push_back(std::move(rule));
      }
      pos = close;
    }
  }
}

}  // namespace

bool TokenizedSource::allowed(std::uint32_t line, std::string_view rule) const {
  if (line >= marks.size()) return false;
  const std::vector<std::string>& allows = marks[line].allows;
  return std::find(allows.begin(), allows.end(), rule) != allows.end();
}

bool TokenizedSource::hot_marked(std::uint32_t line) const {
  return line < marks.size() && marks[line].hot;
}

TokenizedSource tokenize(std::string_view text) {
  TokenizedSource out;
  out.stripped.assign(text);
  out.line_count = static_cast<std::uint32_t>(
      1 + std::count(text.begin(), text.end(), '\n'));
  out.marks.assign(out.line_count + 1, LineMark{});

  // Pass 1: blank comment/string/char-literal content, collecting marker
  // comments as they stream past.  The state machine mirrors the one the
  // old tzgeo_lint carried; markers are parsed only from comment states.
  enum class State { kCode, kLineComment, kBlockComment, kString, kChar, kRawString };
  State state = State::kCode;
  std::string raw_terminator;  // ")delim\"" for the active raw string
  std::string comment;         // text of the comment on the current line
  std::uint32_t line = 1;
  const auto flush_comment = [&] {
    if (!comment.empty() && line < out.marks.size()) parse_markers(comment, out.marks[line]);
    comment.clear();
  };
  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    const char next = i + 1 < text.size() ? text[i + 1] : '\0';
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLineComment;
          out.stripped[i] = ' ';
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          out.stripped[i] = ' ';
        } else if (c == 'R' && next == '"' &&
                   (i == 0 || !is_word_char(text[i - 1]))) {
          const std::size_t open = text.find('(', i + 2);
          if (open != std::string_view::npos) {
            raw_terminator.assign(1, ')');
            raw_terminator.append(text.substr(i + 2, open - (i + 2)));
            raw_terminator.push_back('"');
            state = State::kRawString;
            for (std::size_t j = i; j <= open; ++j) {
              if (out.stripped[j] != '\n') out.stripped[j] = ' ';
            }
            i = open;
          }
        } else if (c == '"') {
          state = State::kString;
          out.stripped[i] = ' ';
        } else if (c == '\'') {
          // Digit separators (1'000'000) are part of a number, not a char
          // literal; a quote directly after a word character is one.
          if (i > 0 && is_word_char(text[i - 1])) break;
          state = State::kChar;
          out.stripped[i] = ' ';
        }
        break;
      case State::kLineComment:
        if (c == '\n') {
          flush_comment();
          state = State::kCode;
        } else {
          comment.push_back(c);
          out.stripped[i] = ' ';
        }
        break;
      case State::kBlockComment:
        if (c == '*' && next == '/') {
          out.stripped[i] = ' ';
          out.stripped[i + 1] = ' ';
          ++i;
          flush_comment();
          state = State::kCode;
        } else if (c == '\n') {
          flush_comment();
        } else {
          comment.push_back(c);
          out.stripped[i] = ' ';
        }
        break;
      case State::kString:
      case State::kChar:
        if (c == '\\') {
          out.stripped[i] = ' ';
          if (next != '\0' && next != '\n') {
            out.stripped[i + 1] = ' ';
            ++i;
          }
        } else if ((state == State::kString && c == '"') ||
                   (state == State::kChar && c == '\'')) {
          out.stripped[i] = ' ';
          state = State::kCode;
        } else if (c != '\n') {
          out.stripped[i] = ' ';
        }
        break;
      case State::kRawString:
        if (text.compare(i, raw_terminator.size(), raw_terminator) == 0) {
          for (std::size_t j = 0; j < raw_terminator.size(); ++j) out.stripped[i + j] = ' ';
          i += raw_terminator.size() - 1;
          state = State::kCode;
        } else if (c != '\n') {
          out.stripped[i] = ' ';
        }
        break;
    }
    if (text[i] == '\n') ++line;
  }
  flush_comment();

  // Preprocessor lines (with backslash continuations) are excluded from
  // the token stream: `#define FOO {` would otherwise corrupt the brace
  // tracking every semantic pass depends on.
  std::vector<bool> is_pp(out.line_count + 2, false);
  {
    std::uint32_t current = 1;
    std::size_t start = 0;
    bool continued = false;
    while (start <= out.stripped.size()) {
      std::size_t end = out.stripped.find('\n', start);
      if (end == std::string::npos) end = out.stripped.size();
      const std::string_view l(out.stripped.data() + start, end - start);
      std::size_t first = l.find_first_not_of(" \t");
      const bool pp = continued || (first != std::string_view::npos && l[first] == '#');
      if (current < is_pp.size()) is_pp[current] = pp;
      continued = pp && !l.empty() && l.back() == '\\';
      ++current;
      if (end == out.stripped.size()) break;
      start = end + 1;
    }
  }

  // Pass 2: tokenize the stripped text.
  const std::string& s = out.stripped;
  std::uint32_t tline = 1;
  for (std::size_t i = 0; i < s.size();) {
    const char c = s[i];
    if (c == '\n') {
      ++tline;
      ++i;
      continue;
    }
    if (tline < is_pp.size() && is_pp[tline]) {
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c)) != 0) {
      ++i;
      continue;
    }
    if (is_ident_start(c)) {
      std::size_t end = i + 1;
      while (end < s.size() && is_word_char(s[end])) ++end;
      out.tokens.push_back(Token{TokKind::kIdent, s.substr(i, end - i), tline});
      i = end;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) != 0 ||
        (c == '.' && i + 1 < s.size() && std::isdigit(static_cast<unsigned char>(s[i + 1])) != 0)) {
      // pp-number: digits, word chars, dots, digit separators, and
      // sign characters directly after an exponent letter.
      std::size_t end = i + 1;
      while (end < s.size()) {
        const char d = s[end];
        if (is_word_char(d) || d == '.' || d == '\'') {
          ++end;
        } else if ((d == '+' || d == '-') &&
                   (s[end - 1] == 'e' || s[end - 1] == 'E' || s[end - 1] == 'p' ||
                    s[end - 1] == 'P')) {
          ++end;
        } else {
          break;
        }
      }
      out.tokens.push_back(Token{TokKind::kNumber, s.substr(i, end - i), tline});
      i = end;
      continue;
    }
    if (c == ':' && i + 1 < s.size() && s[i + 1] == ':') {
      out.tokens.push_back(Token{TokKind::kPunct, "::", tline});
      i += 2;
      continue;
    }
    if (c == '-' && i + 1 < s.size() && s[i + 1] == '>') {
      out.tokens.push_back(Token{TokKind::kPunct, "->", tline});
      i += 2;
      continue;
    }
    out.tokens.push_back(Token{TokKind::kPunct, std::string(1, c), tline});
    ++i;
  }
  return out;
}

}  // namespace tzgeo::analyze
