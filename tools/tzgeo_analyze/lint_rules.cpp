#include "tzgeo_analyze/lint_rules.hpp"

#include <cctype>

namespace tzgeo::analyze {

namespace {

[[nodiscard]] bool is_word_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

[[nodiscard]] bool under(const std::string& path, std::string_view top) {
  return path.rfind(std::string(top) + "/", 0) == 0;
}

}  // namespace

bool contains_token(std::string_view line, std::string_view token) {
  std::size_t pos = 0;
  while ((pos = line.find(token, pos)) != std::string_view::npos) {
    const bool left_ok = pos == 0 || !is_word_char(line[pos - 1]);
    const std::size_t end = pos + token.size();
    const bool right_ok = end >= line.size() || !is_word_char(line[end]);
    if (left_ok && right_ok) return true;
    ++pos;
  }
  return false;
}

bool contains_prefix_token(std::string_view line, std::string_view prefix) {
  std::size_t pos = 0;
  while ((pos = line.find(prefix, pos)) != std::string_view::npos) {
    if (pos == 0 || !is_word_char(line[pos - 1])) return true;
    ++pos;
  }
  return false;
}

bool contains_call(std::string_view line, std::string_view name) {
  std::size_t pos = 0;
  while ((pos = line.find(name, pos)) != std::string_view::npos) {
    const bool left_ok = pos == 0 || !is_word_char(line[pos - 1]);
    std::size_t end = pos + name.size();
    while (end < line.size() && (line[end] == ' ' || line[end] == '\t')) ++end;
    if (left_ok && end < line.size() && line[end] == '(') return true;
    ++pos;
  }
  return false;
}

bool has_magic_hours_literal(std::string_view line) {
  for (std::size_t i = 0; i + 1 < line.size(); ++i) {
    if (line[i] != '2') continue;
    const char second = line[i + 1];
    if (second != '3' && second != '4' && second != '5') continue;
    if (i > 0 && (is_word_char(line[i - 1]) || line[i - 1] == '.')) continue;
    std::size_t end = i + 2;
    if (end < line.size() && std::isdigit(static_cast<unsigned char>(line[end])) != 0) {
      continue;  // longer number (230, 245, ...)
    }
    if (end < line.size() && line[end] == '.') {
      // Accept only the `.0`, `.00`, ... float forms as hour literals.
      std::size_t digits = end + 1;
      while (digits < line.size() && line[digits] == '0') ++digits;
      if (digits == end + 1) continue;  // 24.5, 24. — not an hour literal
      if (digits < line.size() &&
          std::isdigit(static_cast<unsigned char>(line[digits])) != 0) {
        continue;  // 24.05 — not an hour literal
      }
    }
    return true;
  }
  return false;
}

bool has_bad_catch(std::string_view line) {
  std::size_t pos = 0;
  while ((pos = line.find("catch", pos)) != std::string_view::npos) {
    const bool left_ok = pos == 0 || !is_word_char(line[pos - 1]);
    std::size_t open = pos + 5;
    while (open < line.size() && (line[open] == ' ' || line[open] == '\t')) ++open;
    if (!left_ok || open >= line.size() || line[open] != '(') {
      ++pos;
      continue;
    }
    const std::size_t close = line.find(')', open + 1);
    const std::size_t stop = close == std::string_view::npos ? line.size() : close;
    const std::string_view contents = line.substr(open + 1, stop - open - 1);
    if (contents.find("...") != std::string_view::npos) return true;
    if (contents.find('&') == std::string_view::npos &&
        contents.find('*') == std::string_view::npos) {
      return true;
    }
    pos = stop;
  }
  return false;
}

const std::vector<LintRule>& lint_rules() {
  static const std::vector<LintRule> kRules = [] {
    std::vector<LintRule> out;

    out.push_back(LintRule{
        "magic-hours",
        "bare 23/24/25 literal; use the named constants from util/constants.hpp "
        "(kProfileBins, kZoneCount, kHoursPerDay, kMaxHourOfDay)",
        [](const std::string& rel) {
          return under(rel, "src") && rel != "src/util/constants.hpp";
        },
        has_magic_hours_literal});

    out.push_back(LintRule{
        "rng-source",
        "raw randomness/clock source; route randomness through util::Rng and time "
        "through explicit UtcSeconds parameters",
        [](const std::string& rel) {
          return rel != "src/util/rng.hpp" && rel != "src/util/rng.cpp";
        },
        [](std::string_view line) {
          return contains_token(line, "std::random_device") ||
                 contains_token(line, "random_device") || contains_call(line, "rand") ||
                 contains_call(line, "srand") || contains_token(line, "std::time") ||
                 contains_call(line, "time");
        }});

    out.push_back(LintRule{
        "stdout-io",
        "stdout write in library code; return strings and let the tools print",
        [](const std::string& rel) { return under(rel, "src"); },
        [](std::string_view line) {
          return contains_token(line, "std::cout") || contains_call(line, "printf") ||
                 (contains_call(line, "fprintf") && !contains_token(line, "stderr")) ||
                 contains_call(line, "puts") || contains_call(line, "putchar");
        }});

    out.push_back(LintRule{
        "stderr-log",
        "raw stderr diagnostic in library code; emit a structured record through "
        "obs::Log (src/obs/log.hpp) instead — records carry fields, levels, and "
        "per-site rate limits, and land in the ring/JSONL sink where the "
        "dashboard and tests can see them",
        [](const std::string& rel) {
          return under(rel, "src") && !under(rel, "src/obs");
        },
        [](std::string_view line) {
          return contains_token(line, "std::cerr") ||
                 (contains_call(line, "fprintf") && contains_token(line, "stderr")) ||
                 contains_call(line, "perror");
        }});

    out.push_back(LintRule{
        "sscanf-parse",
        "sscanf in library code; use the fixed-format parsers "
        "(tz::parse_civil_datetime, util::parse_int) — sscanf re-scans the format "
        "string per call and has undefined behavior on overflow",
        [](const std::string& rel) { return under(rel, "src"); },
        [](std::string_view line) { return contains_call(line, "sscanf"); }});

    out.push_back(LintRule{
        "obs-clock",
        "ad-hoc std::chrono clock read in library code; obs::Stopwatch "
        "(src/obs/stopwatch.hpp) is the one sanctioned monotonic clock — shared "
        "timing keeps benchmarks, metrics, and traces on the same timebase",
        [](const std::string& rel) {
          return under(rel, "src") && !under(rel, "src/obs");
        },
        [](std::string_view line) {
          return contains_token(line, "steady_clock") ||
                 contains_token(line, "high_resolution_clock") ||
                 contains_token(line, "system_clock");
        }});

    out.push_back(LintRule{
        "float-stats",
        "float in a statistical kernel; the stats module is double-only",
        [](const std::string& rel) {
          return under(rel, "src") && rel.find("stats") != std::string::npos;
        },
        [](std::string_view line) { return contains_token(line, "float"); }});

    out.push_back(LintRule{
        "simd-shim",
        "raw SIMD include or vector-register token outside src/core/simd/; all "
        "ISA-specific code lives behind the dispatch shim (core/simd/simd.hpp) so "
        "the scalar reference path stays the single source of truth",
        [](const std::string& rel) { return !under(rel, "src/core/simd"); },
        [](std::string_view line) {
          return line.find("immintrin.h") != std::string_view::npos ||
                 line.find("arm_neon.h") != std::string_view::npos ||
                 contains_prefix_token(line, "__m128") ||
                 contains_prefix_token(line, "__m256") ||
                 contains_prefix_token(line, "__m512") ||
                 contains_prefix_token(line, "__mmask") ||
                 contains_prefix_token(line, "_mm_") ||
                 contains_prefix_token(line, "_mm256_") ||
                 contains_prefix_token(line, "_mm512_") ||
                 contains_prefix_token(line, "vld1q") ||
                 contains_prefix_token(line, "vst1q") ||
                 contains_prefix_token(line, "float64x") ||
                 contains_prefix_token(line, "uint64x");
        }});

    out.push_back(LintRule{
        "catch-style",
        "catch (...) or catch-by-value in library code; catch a concrete exception "
        "type by (const) reference so recovery can dispatch on it (typed "
        "forum::CrawlError categories drive the monitor's degradation ladder)",
        [](const std::string& rel) { return under(rel, "src"); },
        has_bad_catch});

    return out;
  }();
  return kRules;
}

void run_lint_rules(const SourceFile& file, const TokenizedSource& tok,
                    std::vector<Finding>& findings) {
  const bool header = file.path.size() > 4 &&
                      file.path.compare(file.path.size() - 4, 4, ".hpp") == 0;
  if (header && tok.stripped.find("#pragma once") == std::string::npos &&
      !tok.allowed(1, "pragma-once")) {
    findings.push_back(
        Finding{file.path, 1, "pragma-once", "header missing #pragma once", "", false});
  }

  std::vector<const LintRule*> applicable;
  for (const LintRule& rule : lint_rules()) {
    if (rule.applies(file.path)) applicable.push_back(&rule);
  }
  if (applicable.empty()) return;

  std::size_t start = 0;
  std::uint32_t number = 1;
  while (start <= tok.stripped.size()) {
    std::size_t end = tok.stripped.find('\n', start);
    if (end == std::string::npos) end = tok.stripped.size();
    const std::string_view line(tok.stripped.data() + start, end - start);
    for (const LintRule* rule : applicable) {
      if (!rule->match(line)) continue;
      if (tok.allowed(number, rule->name)) continue;
      Finding f;
      f.file = file.path;
      f.line = number;
      f.rule = rule->name;
      f.message = rule->message;
      f.snippet = std::string(line);
      findings.push_back(std::move(f));
    }
    if (end == tok.stripped.size()) break;
    start = end + 1;
    ++number;
  }
}

}  // namespace tzgeo::analyze
