#include "tzgeo_analyze/layering.hpp"

#include <algorithm>
#include <cctype>
#include <sstream>

namespace tzgeo::analyze {

namespace {

[[nodiscard]] bool is_target_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/// Strips `#` comments from one CMake line.
[[nodiscard]] std::string strip_cmake_comment(const std::string& line) {
  const std::size_t hash = line.find('#');
  return hash == std::string::npos ? line : line.substr(0, hash);
}

}  // namespace

void parse_cmake_deps(const std::string& module, const std::string& text, LayerGraph& graph) {
  if (std::find(graph.modules.begin(), graph.modules.end(), module) == graph.modules.end()) {
    graph.modules.push_back(module);
  }
  std::set<std::string>& deps = graph.deps[module];

  // Flatten to one comment-free string so a call spanning several lines
  // still parses.
  std::string flat;
  std::istringstream in(text);
  for (std::string line; std::getline(in, line);) {
    flat += strip_cmake_comment(line);
    flat += ' ';
  }

  const std::string kCall = "target_link_libraries";
  std::size_t pos = 0;
  while ((pos = flat.find(kCall, pos)) != std::string::npos) {
    pos += kCall.size();
    const std::size_t open = flat.find('(', pos);
    if (open == std::string::npos) break;
    const std::size_t close = flat.find(')', open);
    if (close == std::string::npos) break;
    std::istringstream args(flat.substr(open + 1, close - open - 1));
    std::string word;
    bool first = true;
    bool ours = false;
    while (args >> word) {
      if (first) {
        ours = word == "tzgeo_" + module;
        first = false;
        continue;
      }
      if (!ours) continue;
      if (word == "PUBLIC" || word == "PRIVATE" || word == "INTERFACE") continue;
      if (word.rfind("tzgeo_", 0) == 0 && word != "tzgeo_warnings" &&
          std::all_of(word.begin(), word.end(), is_target_char)) {
        deps.insert(word.substr(6));
      }
    }
    pos = close;
  }
}

void finalize_layer_graph(LayerGraph& graph) {
  // Transitive closure by DFS per module; a back edge on the active path
  // is a cycle.
  for (const std::string& m : graph.modules) {
    std::set<std::string>& out = graph.closure[m];
    std::vector<std::string> stack(graph.deps[m].begin(), graph.deps[m].end());
    while (!stack.empty()) {
      const std::string d = stack.back();
      stack.pop_back();
      if (!out.insert(d).second) continue;
      for (const std::string& dd : graph.deps[d]) stack.push_back(dd);
    }
    if (out.count(m) > 0 && graph.cycle.empty()) {
      // Recover one concrete cycle path for the message.
      std::vector<std::string> path{m};
      std::set<std::string> seen{m};
      std::string cur = m;
      while (true) {
        bool advanced = false;
        for (const std::string& d : graph.deps[cur]) {
          if (d == m) {
            path.push_back(m);
            graph.cycle = path;
            return;
          }
          if (seen.count(d) == 0 && graph.closure[m].count(d) > 0 &&
              graph.deps.count(d) > 0) {
            // Only walk edges that can still reach m.
            std::set<std::string> reach;
            std::vector<std::string> s2{d};
            while (!s2.empty()) {
              const std::string x = s2.back();
              s2.pop_back();
              if (!reach.insert(x).second) continue;
              for (const std::string& xx : graph.deps[x]) s2.push_back(xx);
            }
            if (reach.count(m) > 0) {
              path.push_back(d);
              seen.insert(d);
              cur = d;
              advanced = true;
              break;
            }
          }
        }
        if (!advanced) break;
      }
      graph.cycle = {m};  // degenerate fallback: self-dependency
      return;
    }
  }
}

void check_layering(const LayerGraph& graph, const std::vector<TuFacts>& tus,
                    std::vector<Finding>& findings) {
  if (!graph.cycle.empty()) {
    std::string path;
    for (const std::string& m : graph.cycle) {
      if (!path.empty()) path += " -> ";
      path += m;
    }
    Finding f;
    f.file = "src/CMakeLists.txt";
    f.line = 1;
    f.rule = "layer-cycle";
    f.message = "module link graph contains a cycle: " + path;
    f.snippet = path;
    findings.push_back(std::move(f));
  }

  const std::set<std::string> known(graph.modules.begin(), graph.modules.end());
  for (const TuFacts& tu : tus) {
    if (tu.module.empty()) continue;  // tools/tests/bench may include anything
    const auto closure_it = graph.closure.find(tu.module);
    for (const IncludeFact& inc : tu.includes) {
      const std::size_t slash = inc.path.find('/');
      if (slash == std::string::npos) continue;
      const std::string target = inc.path.substr(0, slash);
      if (known.count(target) == 0 || target == tu.module) continue;
      const bool linked =
          closure_it != graph.closure.end() && closure_it->second.count(target) > 0;
      if (linked) continue;
      Finding f;
      f.file = tu.path;
      f.line = inc.line;
      f.rule = "layer-include";
      f.message = "module '" + tu.module + "' includes '" + inc.path +
                  "' but tzgeo_" + tu.module + " does not link tzgeo_" + target +
                  " (declare the dependency in src/" + tu.module +
                  "/CMakeLists.txt or drop the include)";
      f.snippet = "#include \"" + inc.path + "\"";
      findings.push_back(std::move(f));
    }
  }
}

}  // namespace tzgeo::analyze
