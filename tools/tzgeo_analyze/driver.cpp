#include "tzgeo_analyze/driver.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string_view>

#include "tzgeo_analyze/facts.hpp"
#include "tzgeo_analyze/fix.hpp"
#include "tzgeo_analyze/layering.hpp"
#include "tzgeo_analyze/lint_rules.hpp"
#include "tzgeo_analyze/passes.hpp"
#include "tzgeo_analyze/sarif.hpp"
#include "tzgeo_analyze/tokenizer.hpp"

namespace fs = std::filesystem;

namespace tzgeo::analyze {

namespace {

constexpr const char* kScanRoots[] = {"src", "tools", "tests", "bench", "examples"};

[[nodiscard]] std::string read_file(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

/// Extracts the "file" entry values of a compile_commands.json and
/// normalizes each to a repo-relative src/... path (the TU restriction
/// only applies to src — tools/tests/bench are always scanned).
[[nodiscard]] std::set<std::string> parse_compile_commands(const std::string& text) {
  std::set<std::string> out;
  const std::string needle = "\"file\"";
  std::size_t pos = 0;
  while ((pos = text.find(needle, pos)) != std::string::npos) {
    std::size_t p = pos + needle.size();
    while (p < text.size() && (text[p] == ' ' || text[p] == ':')) ++p;
    if (p < text.size() && text[p] == '"') {
      const std::size_t close = text.find('"', p + 1);
      if (close != std::string::npos) {
        std::string value = text.substr(p + 1, close - p - 1);
        std::replace(value.begin(), value.end(), '\\', '/');
        const std::size_t src = value.rfind("/src/");
        if (src != std::string::npos) {
          out.insert(value.substr(src + 1));
        } else if (value.rfind("src/", 0) == 0) {
          out.insert(value);
        }
      }
    }
    pos += needle.size();
  }
  return out;
}

}  // namespace

std::size_t AnalyzeResult::new_count() const {
  std::size_t n = 0;
  for (const Finding& f : findings) {
    if (!f.baselined) ++n;
  }
  return n;
}

std::size_t AnalyzeResult::baselined_count() const {
  return findings.size() - new_count();
}

AnalyzeResult analyze_sources(const std::vector<SourceFile>& sources,
                              const std::vector<CmakeInput>& cmake,
                              const std::string& baseline_text, bool lint_only) {
  AnalyzeResult result;
  result.files_scanned = sources.size();

  std::vector<TokenizedSource> toks;
  toks.reserve(sources.size());
  for (const SourceFile& file : sources) toks.push_back(tokenize(file.text));

  for (std::size_t i = 0; i < sources.size(); ++i) {
    run_lint_rules(sources[i], toks[i], result.findings);
  }

  if (!lint_only) {
    std::vector<TuFacts> tus;
    tus.reserve(sources.size());
    for (std::size_t i = 0; i < sources.size(); ++i) {
      tus.push_back(extract_facts(sources[i], toks[i]));
    }

    LayerGraph graph;
    for (const CmakeInput& input : cmake) {
      parse_cmake_deps(input.module, input.text, graph);
    }
    finalize_layer_graph(graph);
    check_layering(graph, tus, result.findings);
    check_lock_order(tus, result.findings);
    check_hot_alloc(tus, toks, result.findings);
    check_determinism(tus, toks, result.findings);
  }

  std::sort(result.findings.begin(), result.findings.end(),
            [](const Finding& a, const Finding& b) {
              if (a.file != b.file) return a.file < b.file;
              if (a.line != b.line) return a.line < b.line;
              if (a.rule != b.rule) return a.rule < b.rule;
              return a.message < b.message;
            });

  const Baseline baseline = parse_baseline(baseline_text);
  result.stale_baseline = apply_baseline(baseline, result.findings);
  return result;
}

bool analyze_repo(const std::string& root, const std::string& compile_commands,
                  const std::string& baseline_text, bool lint_only, AnalyzeResult& result,
                  std::string& error) {
  const fs::path base(root);
  if (!fs::exists(base / "src")) {
    error = "no src/ under " + root + " — wrong root?";
    return false;
  }

  std::set<std::string> selected;
  if (!compile_commands.empty()) {
    const std::string text = read_file(compile_commands);
    if (text.empty()) {
      error = "cannot read compile_commands: " + compile_commands;
      return false;
    }
    selected = parse_compile_commands(text);
  }

  std::vector<fs::path> paths;
  for (const char* top : kScanRoots) {
    const fs::path dir = base / top;
    if (!fs::exists(dir)) continue;
    for (const auto& entry : fs::recursive_directory_iterator(dir)) {
      if (!entry.is_regular_file()) continue;
      const fs::path& path = entry.path();
      if (path.extension() == ".hpp" || path.extension() == ".cpp") paths.push_back(path);
    }
  }
  std::sort(paths.begin(), paths.end());

  std::vector<SourceFile> sources;
  sources.reserve(paths.size());
  for (const fs::path& path : paths) {
    const std::string rel = fs::relative(path, base).generic_string();
    if (!selected.empty() && path.extension() == ".cpp" && rel.rfind("src/", 0) == 0 &&
        selected.count(rel) == 0) {
      continue;  // src TU not in the compile database
    }
    sources.push_back(SourceFile{rel, read_file(path)});
  }

  std::vector<CmakeInput> cmake;
  for (const auto& entry : fs::directory_iterator(base / "src")) {
    if (!entry.is_directory()) continue;
    const fs::path lists = entry.path() / "CMakeLists.txt";
    if (!fs::exists(lists)) continue;
    cmake.push_back(CmakeInput{entry.path().filename().string(), read_file(lists)});
  }
  std::sort(cmake.begin(), cmake.end(),
            [](const CmakeInput& a, const CmakeInput& b) { return a.module < b.module; });

  result = analyze_sources(sources, cmake, baseline_text, lint_only);
  return true;
}

namespace {

[[nodiscard]] std::size_t count_rule(const AnalyzeResult& r, std::string_view rule) {
  std::size_t n = 0;
  for (const Finding& f : r.findings) {
    if (f.rule == rule) ++n;
  }
  return n;
}

}  // namespace

int self_test(std::vector<std::string>& log) {
  int failures = 0;
  const auto expect = [&](bool condition, const char* what) {
    if (!condition) {
      log.push_back(std::string("self-test FAILED: ") + what);
      ++failures;
    }
  };
  const std::vector<CmakeInput> no_cmake;

  // --- tokenizer -----------------------------------------------------
  {
    const TokenizedSource plain = tokenize("// tzgeo: hot\nint x;\n");
    expect(plain.hot_marked(1), "hot marker parsed from a line comment");
    const TokenizedSource in_string = tokenize("const char* s = R\"(// tzgeo: hot)\";\n");
    expect(!in_string.hot_marked(1), "hot marker inside a raw string is inert");
    const TokenizedSource pp = tokenize("#define OPEN {\nint a;\n");
    bool has_brace = false;
    for (const Token& token : pp.tokens) has_brace = has_brace || token.text == "{";
    expect(!has_brace, "preprocessor lines produce no tokens");
    const TokenizedSource allow = tokenize("int h = 24;  // tzgeo-lint: allow(magic-hours)\n");
    expect(allow.allowed(1, "magic-hours"), "allow() marker parsed");
    const TokenizedSource stripped = tokenize("int a = 1; // 24 bins\nchar c = '2';\n");
    expect(stripped.stripped.find("24") == std::string::npos,
           "comment content blanked in stripped text");
  }

  // --- layering ------------------------------------------------------
  {
    const std::vector<CmakeInput> cmake = {
        {"alpha", "add_library(tzgeo_alpha a.cpp)\n"
                  "target_link_libraries(tzgeo_alpha PRIVATE tzgeo_warnings)\n"},
        {"beta", "add_library(tzgeo_beta b.cpp)\n"
                 "target_link_libraries(tzgeo_beta PUBLIC tzgeo_alpha)\n"}};
    const std::vector<SourceFile> sources = {
        {"src/alpha/a.cpp", "#include \"beta/b.hpp\"\n"},
        {"src/beta/b.cpp", "#include \"alpha/a.hpp\"\n"}};
    const AnalyzeResult r = analyze_sources(sources, cmake, "", false);
    expect(count_rule(r, "layer-include") == 1, "unlinked cross-module include flagged");
    expect(r.findings.size() == 1 && r.findings[0].file == "src/alpha/a.cpp",
           "linked include direction is clean");
  }
  {
    const std::vector<CmakeInput> cmake = {
        {"gamma", "target_link_libraries(tzgeo_gamma PUBLIC tzgeo_delta)\n"},
        {"delta", "target_link_libraries(tzgeo_delta PUBLIC tzgeo_gamma)\n"}};
    const AnalyzeResult r = analyze_sources({}, cmake, "", false);
    expect(count_rule(r, "layer-cycle") == 1, "link-graph cycle reported once");
  }

  // --- lock order ----------------------------------------------------
  {
    const SourceFile ab_ba{"src/demo/locks.cpp", R"cpp(
namespace demo {
struct S {
  void ab() {
    std::lock_guard<std::mutex> g1(a_);
    std::lock_guard<std::mutex> g2(b_);
  }
  void ba() {
    std::lock_guard<std::mutex> g1(b_);
    std::lock_guard<std::mutex> g2(a_);
  }
  std::mutex a_;
  std::mutex b_;
};
}  // namespace demo
)cpp"};
    const AnalyzeResult r = analyze_sources({ab_ba}, no_cmake, "", false);
    expect(count_rule(r, "lock-order") >= 1, "AB/BA guard order cycle flagged");
  }
  {
    const SourceFile scoped{"src/demo/scoped.cpp", R"cpp(
namespace demo {
struct T {
  void ab() { std::scoped_lock g(a_, b_); }
  void ba() { std::scoped_lock g(b_, a_); }
  std::mutex a_;
  std::mutex b_;
};
}  // namespace demo
)cpp"};
    const AnalyzeResult r = analyze_sources({scoped}, no_cmake, "", false);
    expect(count_rule(r, "lock-order") == 0, "scoped_lock multi-acquire is atomic");
  }
  {
    const SourceFile recursive{"src/demo/recursive.cpp", R"cpp(
namespace demo {
struct R {
  void f() {
    std::lock_guard<std::mutex> g(m_);
    std::lock_guard<std::mutex> h(m_);
  }
  std::mutex m_;
};
}  // namespace demo
)cpp"};
    const AnalyzeResult r = analyze_sources({recursive}, no_cmake, "", false);
    expect(count_rule(r, "lock-order") == 1, "recursive same-mutex acquisition flagged");
  }
  {
    const SourceFile blocks{"src/demo/blocks.cpp", R"cpp(
namespace demo {
struct B {
  void s1() {
    { std::lock_guard<std::mutex> g(a_); }
    std::lock_guard<std::mutex> h(b_);
  }
  void s2() {
    { std::lock_guard<std::mutex> g(b_); }
    std::lock_guard<std::mutex> h(a_);
  }
  std::mutex a_;
  std::mutex b_;
};
}  // namespace demo
)cpp"};
    const AnalyzeResult r = analyze_sources({blocks}, no_cmake, "", false);
    expect(count_rule(r, "lock-order") == 0, "block-scoped guards release before reorder");
  }
  {
    const SourceFile via_call{"src/demo/via_call.cpp", R"cpp(
namespace demo {
struct C {
  void lock_a_then_call() {
    std::lock_guard<std::mutex> g(a_);
    takes_b();
  }
  void takes_b() { std::lock_guard<std::mutex> g(b_); }
  void lock_b_then_call() {
    std::lock_guard<std::mutex> g(b_);
    takes_a();
  }
  void takes_a() { std::lock_guard<std::mutex> g(a_); }
  std::mutex a_;
  std::mutex b_;
};
}  // namespace demo
)cpp"};
    const AnalyzeResult r = analyze_sources({via_call}, no_cmake, "", false);
    expect(count_rule(r, "lock-order") >= 1, "cycle through call edges flagged");
  }

  // --- hot-path allocation -------------------------------------------
  {
    const SourceFile hot{"src/demo/hot.cpp", R"cpp(
namespace demo {
// tzgeo: hot
void kernel(std::vector<int>& out) {
  out.push_back(1);
}
void warm(std::vector<int>& out) {
  out.push_back(1);
}
// tzgeo: hot
void reserved(std::vector<int>& out) {
  out.reserve(8);
  out.push_back(1);
}
// tzgeo: hot
void waived(std::vector<int>& out) {
  out.push_back(1);  // tzgeo-lint: allow(hot-alloc)
}
// tzgeo: hot
void heap() {
  int* p = new int;
  consume(p);
}
void region(std::vector<int>& out) {
  out.push_back(0);
  // tzgeo: hot
  out.push_back(1);
}
}  // namespace demo
)cpp"};
    const AnalyzeResult r = analyze_sources({hot}, no_cmake, "", false);
    expect(count_rule(r, "hot-alloc") == 3,
           "exactly kernel/new/region growth flagged (reserve+allow absolve)");
    bool kernel_hit = false;
    bool new_hit = false;
    for (const Finding& f : r.findings) {
      kernel_hit = kernel_hit || f.message.find("of kernel") != std::string::npos;
      new_hit = new_hit || f.message.find("'new'") != std::string::npos;
    }
    expect(kernel_hit, "unreserved push_back in hot function flagged");
    expect(new_hit, "operator new in hot function flagged");
  }

  // --- determinism ---------------------------------------------------
  {
    const SourceFile det{"src/demo/det.cpp", R"cpp(
namespace demo {
struct W {
  void save(Writer& w) {
    for (const auto& kv : table_) {
      w.write_row(kv.first);
    }
  }
  void debug_dump(Sink& s) {
    for (const auto& kv : table_) {
      s.consume(kv.first);
    }
  }
  std::unordered_map<int, int> table_;
};
struct X {
  void flush() {
    Checkpoint cp;
    emit(cp);
  }
  void emit(Checkpoint& cp) {
    for (const auto& kv : cache_) {
      cp.add(kv.first);
    }
  }
  std::unordered_map<int, int> cache_;
};
struct Y {
  void save_sorted(Writer& w) {
    for (const auto& kv : ordered_) {
      w.write_row(kv.first);
    }
  }
  std::map<int, int> ordered_;
};
}  // namespace demo
)cpp"};
    const AnalyzeResult r = analyze_sources({det}, no_cmake, "", false);
    expect(count_rule(r, "det-unordered-output") == 2,
           "unordered iteration feeding output flagged (direct + via call)");
    bool debug_flagged = false;
    for (const Finding& f : r.findings) {
      debug_flagged = debug_flagged || f.message.find("debug_dump") != std::string::npos;
    }
    expect(!debug_flagged, "unordered iteration away from sinks is clean");
  }

  // --- lint rules on the shared tokenizer ----------------------------
  {
    const std::vector<SourceFile> sources = {
        {"src/demo/magic.cpp",
         "int bins = 24;\n"
         "int waived = 24;  // tzgeo-lint: allow(magic-hours)\n"
         "// a comment mentioning 24 bins\n"},
        {"src/demo/missing.hpp", "inline int f() { return 1; }\n"}};
    const AnalyzeResult r = analyze_sources(sources, no_cmake, "", true);
    expect(count_rule(r, "magic-hours") == 1, "bare literal flagged, waiver honored");
    expect(count_rule(r, "pragma-once") == 1, "header without pragma once flagged");
  }

  // --- baseline ------------------------------------------------------
  {
    const std::vector<SourceFile> sources = {{"src/demo/magic.cpp", "int bins = 24;\n"}};
    AnalyzeResult first = analyze_sources(sources, no_cmake, "", true);
    expect(first.new_count() == 1, "finding is new without a baseline");
    const std::string baseline = render_baseline(first.findings);
    const AnalyzeResult second = analyze_sources(sources, no_cmake, baseline, true);
    expect(second.new_count() == 0 && second.baselined_count() == 1,
           "baselined finding suppressed");
    expect(second.stale_baseline.empty(), "fresh baseline has no stale entries");
    const AnalyzeResult third = analyze_sources(
        {{"src/demo/magic.cpp", "int bins = kHoursPerDay;\n"}}, no_cmake, baseline, true);
    expect(third.new_count() == 0 && third.stale_baseline.size() == 1,
           "fixed finding leaves a stale baseline entry");
  }

  // --- SARIF ---------------------------------------------------------
  {
    std::vector<Finding> findings = {
        {"src/demo/magic.cpp", 3, "magic-hours", "bare 24 \"literal\"", "int x = 24;", false},
        {"src/demo/locks.cpp", 7, "lock-order", "cycle a -> b -> a", "a -> b", false}};
    const std::string sarif = to_sarif(findings);
    std::string why;
    expect(sarif_check(sarif, &why), "emitted SARIF validates");
    expect(sarif.find("\"startLine\": 3") != std::string::npos, "result carries line");
    std::string broken = sarif;
    broken.resize(broken.size() / 2);
    expect(!sarif_check(broken, &why), "truncated SARIF rejected");
    std::string bad_rule = sarif;
    const std::size_t pos = bad_rule.find("\"ruleId\": \"magic-hours\"");
    bad_rule.replace(pos, 23, "\"ruleId\": \"unknowable\"");
    expect(!sarif_check(bad_rule, &why), "result without rule descriptor rejected");
    const std::string empty = to_sarif({});
    expect(sarif_check(empty, &why), "empty report validates");
  }

  // --- fixes ---------------------------------------------------------
  {
    const SourceFile file{"src/demo/width.hpp",
                          "// widths\nnamespace demo {\ninline int width() { return 24; }\n"
                          "}  // namespace demo\n"};
    const FixResult fixed = compute_fixes(file, tokenize(file.text));
    expect(fixed.edits == 3, "literal + pragma + include fixed");
    expect(fixed.new_text.find("#pragma once") != std::string::npos, "pragma inserted");
    expect(fixed.new_text.find("return kHoursPerDay;") != std::string::npos,
           "24 replaced with kHoursPerDay");
    expect(fixed.new_text.find("#include \"util/constants.hpp\"") != std::string::npos,
           "constants include added");
    const AnalyzeResult after = analyze_sources(
        {{file.path, fixed.new_text}}, no_cmake, "", true);
    expect(count_rule(after, "magic-hours") == 0 && count_rule(after, "pragma-once") == 0,
           "fixed file re-analyzes clean");
    const SourceFile suffixed{"src/demo/suffix.cpp", "unsigned u = 24u;\n"};
    const FixResult skip = compute_fixes(suffixed, tokenize(suffixed.text));
    expect(skip.edits == 0, "suffixed literal reported but never rewritten");
  }

  return failures;
}

}  // namespace tzgeo::analyze
