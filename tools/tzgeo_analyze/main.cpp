// tzgeo_analyze — multi-pass static analysis for the tzgeo tree.
//
//   tzgeo_analyze [REPO_ROOT]
//                 [--compile-commands FILE]  select src TUs from the build's
//                                            compile_commands.json
//                 [--baseline FILE]          suppress grandfathered findings
//                 [--write-baseline]         rewrite the baseline to cover
//                                            every current finding
//                 [--sarif-out FILE]         emit SARIF 2.1.0 (validated
//                                            before writing)
//                 [--fix] [--fix-dry-run]    apply / preview mechanical fixes
//                 [--lint-only]              line rules only, skip the
//                                            semantic passes
//                 [--self-test]              run the in-memory fixture suite
//
// Passes: the nine tzgeo-lint line rules (shared tokenizer), include-graph
// layering against src/*/CMakeLists.txt link deps, RAII lock-order cycles,
// hot-path allocation (`tzgeo: hot` regions), and the determinism audit
// (unordered iteration feeding checkpoint/CRC/exporter output).
//
// Exit codes: 0 clean, 1 non-baselined findings, 2 usage or I/O error.
#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "tzgeo_analyze/baseline.hpp"
#include "tzgeo_analyze/driver.hpp"
#include "tzgeo_analyze/fix.hpp"
#include "tzgeo_analyze/sarif.hpp"
#include "tzgeo_analyze/tokenizer.hpp"

namespace {

struct Options {
  std::string root = ".";
  std::string compile_commands;
  std::string baseline_path;
  bool write_baseline = false;
  std::string sarif_out;
  bool fix = false;
  bool fix_dry_run = false;
  bool lint_only = false;
  bool run_self_test = false;
};

void print_usage() {
  std::cout << "usage: tzgeo_analyze [REPO_ROOT] [--compile-commands FILE]\n"
               "                     [--baseline FILE] [--write-baseline]\n"
               "                     [--sarif-out FILE] [--fix] [--fix-dry-run]\n"
               "                     [--lint-only] [--self-test]\n"
               "Multi-pass static analysis for the tzgeo tree; exits 1 on\n"
               "non-baselined findings.\n";
}

[[nodiscard]] std::string read_text(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

/// Re-runs the fixer over the scanned tree.  Returns 2 on I/O failure.
[[nodiscard]] int run_fix_mode(const Options& opts) {
  namespace ta = tzgeo::analyze;
  // Reuse the repo scan through analyze_repo's file discovery by walking
  // the same roots directly (the fixer needs file contents anyway).
  int total_edits = 0;
  int files_changed = 0;
  for (const char* top : {"src", "tools", "tests", "bench", "examples"}) {
    const std::string dir = opts.root + "/" + top;
    std::error_code ec;
    const std::filesystem::path p(dir);
    if (!std::filesystem::exists(p, ec)) continue;
    std::vector<std::filesystem::path> paths;
    for (const auto& entry : std::filesystem::recursive_directory_iterator(p)) {
      if (!entry.is_regular_file()) continue;
      if (entry.path().extension() == ".hpp" || entry.path().extension() == ".cpp") {
        paths.push_back(entry.path());
      }
    }
    std::sort(paths.begin(), paths.end());
    for (const auto& path : paths) {
      const std::string rel =
          std::filesystem::relative(path, opts.root).generic_string();
      const ta::SourceFile file{rel, read_text(path.string())};
      const ta::FixResult result = ta::compute_fixes(file, ta::tokenize(file.text));
      if (result.edits == 0) continue;
      total_edits += result.edits;
      ++files_changed;
      for (const std::string& line : result.diff) std::cout << line << "\n";
      if (opts.fix) {
        std::ofstream out(path, std::ios::binary | std::ios::trunc);
        if (!out) {
          std::cout << "tzgeo-analyze: cannot write " << rel << "\n";
          return 2;
        }
        out << result.new_text;
      }
    }
  }
  std::cout << "tzgeo-analyze: " << (opts.fix ? "applied " : "would apply ")
            << total_edits << " fix(es) in " << files_changed << " file(s)\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  namespace ta = tzgeo::analyze;
  Options opts;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    const auto next_value = [&](const char* flag) -> std::string {
      if (i + 1 >= argc) {
        std::cout << "tzgeo-analyze: " << flag << " needs a value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--help" || arg == "-h") {
      print_usage();
      return 0;
    } else if (arg == "--self-test") {
      opts.run_self_test = true;
    } else if (arg == "--compile-commands") {
      opts.compile_commands = next_value("--compile-commands");
    } else if (arg == "--baseline") {
      opts.baseline_path = next_value("--baseline");
    } else if (arg == "--write-baseline") {
      opts.write_baseline = true;
    } else if (arg == "--sarif-out") {
      opts.sarif_out = next_value("--sarif-out");
    } else if (arg == "--fix") {
      opts.fix = true;
    } else if (arg == "--fix-dry-run") {
      opts.fix_dry_run = true;
    } else if (arg == "--lint-only") {
      opts.lint_only = true;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cout << "tzgeo-analyze: unknown option " << arg << "\n";
      print_usage();
      return 2;
    } else {
      opts.root = arg;
    }
  }

  if (opts.run_self_test) {
    std::vector<std::string> log;
    const int failures = ta::self_test(log);
    for (const std::string& line : log) std::cout << line << "\n";
    if (failures == 0) std::cout << "tzgeo-analyze self-test: all checks passed\n";
    return failures == 0 ? 0 : 1;
  }
  if (opts.fix || opts.fix_dry_run) return run_fix_mode(opts);

  const auto started = std::chrono::steady_clock::now();
  const std::string baseline_text =
      opts.baseline_path.empty() ? std::string() : read_text(opts.baseline_path);
  ta::AnalyzeResult result;
  std::string error;
  if (!ta::analyze_repo(opts.root, opts.compile_commands, baseline_text, opts.lint_only,
                        result, error)) {
    std::cout << "tzgeo-analyze: " << error << "\n";
    return 2;
  }

  for (const ta::Finding& f : result.findings) {
    if (f.baselined) continue;
    std::cout << f.file << ":" << f.line << ": [" << f.rule << "] " << f.message << "\n";
  }
  for (const std::string& stale : result.stale_baseline) {
    std::cout << "tzgeo-analyze: warning: stale baseline entry (fixed? run "
                 "--write-baseline to prune): "
              << stale << "\n";
  }

  if (opts.write_baseline) {
    if (opts.baseline_path.empty()) {
      std::cout << "tzgeo-analyze: --write-baseline needs --baseline FILE\n";
      return 2;
    }
    std::ofstream out(opts.baseline_path, std::ios::binary | std::ios::trunc);
    if (!out) {
      std::cout << "tzgeo-analyze: cannot write " << opts.baseline_path << "\n";
      return 2;
    }
    out << ta::render_baseline(result.findings);
    std::cout << "tzgeo-analyze: baseline written to " << opts.baseline_path << "\n";
  }

  if (!opts.sarif_out.empty()) {
    const std::string sarif = ta::to_sarif(result.findings);
    std::string why;
    if (!ta::sarif_check(sarif, &why)) {
      std::cout << "tzgeo-analyze: internal error: emitted SARIF invalid: " << why << "\n";
      return 2;
    }
    std::ofstream out(opts.sarif_out, std::ios::binary | std::ios::trunc);
    if (!out) {
      std::cout << "tzgeo-analyze: cannot write " << opts.sarif_out << "\n";
      return 2;
    }
    out << sarif;
  }

  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                           std::chrono::steady_clock::now() - started)
                           .count();
  std::cout << "tzgeo-analyze: " << result.files_scanned << " files, "
            << result.new_count() << " finding(s), " << result.baselined_count()
            << " baselined, " << result.stale_baseline.size() << " stale baseline entr"
            << (result.stale_baseline.size() == 1 ? "y" : "ies") << ", " << elapsed
            << " ms\n";
  return result.new_count() == 0 ? 0 : 1;
}
