// Baseline / suppression file.
//
// A committed baseline lets the analyzer land with pre-existing findings
// grandfathered while still failing CI on anything NEW.  Each entry is a
// line-number-independent fingerprint — FNV-1a 64 over
// `rule|file|whitespace-collapsed snippet` — so unrelated edits that only
// shift line numbers do not invalidate it, but fixing (or changing) the
// flagged code does.  File format, one entry per line:
//
//   rule|path|16-hex-digest|collapsed snippet (informational)
//
// `#` lines and blank lines are comments.  Entries that no longer match
// any finding are "stale": reported as warnings, pruned by
// --write-baseline, never fatal.
#pragma once

#include <cstdint>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "tzgeo_analyze/types.hpp"

namespace tzgeo::analyze {

/// FNV-1a 64-bit over `data`.
[[nodiscard]] std::uint64_t fnv1a64(std::string_view data);

/// `rule|file|hash16` for one finding (snippet whitespace-collapsed).
[[nodiscard]] std::string fingerprint(const Finding& finding);

struct Baseline {
  std::set<std::string> entries;  ///< fingerprints
  std::vector<std::string> raw_lines;  ///< original lines, for diagnostics
};

/// Parses baseline text (e.g. read from tools/tzgeo_analyze/baseline.txt).
[[nodiscard]] Baseline parse_baseline(const std::string& text);

/// Marks findings whose fingerprint is baselined; returns the stale
/// fingerprints (baselined but matched by no current finding).
std::vector<std::string> apply_baseline(const Baseline& baseline,
                                        std::vector<Finding>& findings);

/// Renders a baseline file covering every finding (for --write-baseline).
[[nodiscard]] std::string render_baseline(const std::vector<Finding>& findings);

}  // namespace tzgeo::analyze
