#include "tzgeo_analyze/baseline.hpp"

#include <cctype>
#include <sstream>

namespace tzgeo::analyze {

namespace {

/// Collapses runs of whitespace to single spaces and trims the ends, so
/// a re-indent does not change the fingerprint.
[[nodiscard]] std::string collapse_ws(std::string_view s) {
  std::string out;
  bool pending_space = false;
  for (const char c : s) {
    if (std::isspace(static_cast<unsigned char>(c)) != 0) {
      pending_space = !out.empty();
      continue;
    }
    if (pending_space) out += ' ';
    pending_space = false;
    out += c;
  }
  return out;
}

[[nodiscard]] std::string to_hex16(std::uint64_t v) {
  static const char* kHex = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = kHex[v & 0xF];
    v >>= 4;
  }
  return out;
}

}  // namespace

std::uint64_t fnv1a64(std::string_view data) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : data) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::string fingerprint(const Finding& finding) {
  const std::string key =
      finding.rule + "|" + finding.file + "|" + collapse_ws(finding.snippet);
  return finding.rule + "|" + finding.file + "|" + to_hex16(fnv1a64(key));
}

Baseline parse_baseline(const std::string& text) {
  Baseline out;
  std::istringstream in(text);
  for (std::string line; std::getline(in, line);) {
    const std::size_t first = line.find_first_not_of(" \t");
    if (first == std::string::npos || line[first] == '#') continue;
    out.raw_lines.push_back(line);
    // Fingerprint = first three |-separated fields; the trailing snippet
    // is informational only.
    std::size_t p1 = line.find('|');
    std::size_t p2 = p1 == std::string::npos ? p1 : line.find('|', p1 + 1);
    std::size_t p3 = p2 == std::string::npos ? p2 : line.find('|', p2 + 1);
    if (p2 == std::string::npos) continue;
    const std::size_t end = p3 == std::string::npos ? line.size() : p3;
    out.entries.insert(line.substr(first, end - first));
  }
  return out;
}

std::vector<std::string> apply_baseline(const Baseline& baseline,
                                        std::vector<Finding>& findings) {
  std::set<std::string> used;
  for (Finding& f : findings) {
    const std::string fp = fingerprint(f);
    if (baseline.entries.count(fp) > 0) {
      f.baselined = true;
      used.insert(fp);
    }
  }
  std::vector<std::string> stale;
  for (const std::string& entry : baseline.entries) {
    if (used.count(entry) == 0) stale.push_back(entry);
  }
  return stale;
}

std::string render_baseline(const std::vector<Finding>& findings) {
  std::string out =
      "# tzgeo_analyze baseline — grandfathered findings, one per line:\n"
      "#   rule|path|fnv1a64(rule|path|collapsed snippet)|snippet\n"
      "# Regenerate with: tzgeo_analyze --write-baseline.  Entries are\n"
      "# line-number independent; fixing the flagged code makes its entry\n"
      "# stale (warned, pruned on the next --write-baseline).\n";
  std::set<std::string> seen;
  for (const Finding& f : findings) {
    const std::string fp = fingerprint(f);
    if (!seen.insert(fp).second) continue;
    out += fp + "|" + collapse_ws(f.snippet) + "\n";
  }
  return out;
}

}  // namespace tzgeo::analyze
