// Per-translation-unit fact extraction: an approximate structural parse
// of the token stream into function-level facts the whole-program passes
// consume.  "Approximate" is a design point, not an apology — the
// extractor tracks namespaces, classes, function definitions (including
// out-of-class `Class::name` definitions, constructors with initializer
// lists, and templates), and brace depth, which is exactly enough to
// answer the four questions the passes ask:
//
//   * which modules does this TU #include (layering pass)
//   * which mutexes does each function acquire, in what nesting order,
//     and which functions does it call while holding them (lock-order)
//   * which allocation/growth tokens appear in each function, and where
//     are its `tzgeo: hot` markers (hot-path allocation)
//   * which functions iterate unordered containers, and which mention or
//     reach checkpoint/CRC/exporter sinks (determinism)
//
// Known, accepted blind spots (documented in DESIGN.md §13): lambdas are
// treated as blocks of their enclosing function; `operator` overloads are
// not matched as definitions; manual mutex .lock()/.unlock() pairs are
// invisible (the codebase uses RAII guards exclusively — a lint rule
// could enforce that separately); `auto` container types defeat the
// unordered-container declaration scan.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "tzgeo_analyze/tokenizer.hpp"
#include "tzgeo_analyze/types.hpp"

namespace tzgeo::analyze {

struct IncludeFact {
  std::string path;  ///< the quoted include path, verbatim
  std::uint32_t line = 0;
};

/// One event in a function's lock/call stream, replayed in order by the
/// lock-order pass.
struct LockEvent {
  enum class Kind : std::uint8_t { kAcquire, kBlockClose, kCall };
  Kind kind = Kind::kAcquire;
  std::vector<std::string> mutexes;  ///< kAcquire: one, or several for scoped_lock
  bool atomic_multi = false;         ///< scoped_lock multi-acquire (no internal order)
  std::string callee;                ///< kCall: callee name (last component)
  std::uint32_t line = 0;
  int depth = 0;  ///< kAcquire: depth at declaration; kBlockClose: depth after the brace
};

/// One allocation/growth token, or a `reserve` event the hot-path pass
/// uses to absolve later push_back/emplace_back on the same receiver.
struct AllocEvent {
  std::string what;      ///< "new", "make_unique", "push_back", "reserve", ...
  std::string receiver;  ///< normalized receiver chain for member calls
  std::uint32_t line = 0;
};

struct IterEvent {
  std::string container;  ///< normalized expression iterated over
  std::uint32_t line = 0;
};

struct FunctionFacts {
  std::string name;  ///< best-effort qualified name (Class::name when known)
  std::uint32_t decl_line = 0;  ///< line of the name token
  std::uint32_t open_line = 0;  ///< line of the body's opening brace
  std::uint32_t end_line = 0;   ///< line of the closing brace
  bool hot = false;             ///< marker on the signature or opening line
  std::vector<std::uint32_t> hot_region_starts;  ///< markers inside the body
  std::vector<LockEvent> lock_events;
  std::vector<AllocEvent> allocs;
  std::vector<IterEvent> unordered_iters;
  std::vector<std::string> calls;  ///< deduplicated callee names
  bool mentions_sink = false;      ///< references checkpoint/CRC/exporter machinery
};

struct TuFacts {
  std::string path;
  std::string module;  ///< "core" for src/core/..., empty outside src/
  std::vector<IncludeFact> includes;
  std::vector<FunctionFacts> functions;
};

[[nodiscard]] TuFacts extract_facts(const SourceFile& file, const TokenizedSource& tok);

}  // namespace tzgeo::analyze
