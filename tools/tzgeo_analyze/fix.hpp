// Mechanical fixes for the two rules whose remedy is unambiguous:
//
//   pragma-once  — insert `#pragma once` before the first code line of a
//                  header that lacks it
//   magic-hours  — replace bare 24 / 23 / 24.0 literals with
//                  kHoursPerDay / kMaxHourOfDay / kHoursPerDayF and add
//                  `#include "util/constants.hpp"` when missing (25 and
//                  suffixed literals like 24u are reported but never
//                  rewritten — their intent is ambiguous)
//
// Fixes are computed against the stripped text (so a "24" in a comment
// or string is never touched — stripping preserves byte positions) and
// applied to the raw text.  --fix-dry-run renders the line diff without
// writing anything.
#pragma once

#include <string>
#include <vector>

#include "tzgeo_analyze/tokenizer.hpp"
#include "tzgeo_analyze/types.hpp"

namespace tzgeo::analyze {

struct FixResult {
  std::string new_text;  ///< full rewritten file (equals input when edits == 0)
  int edits = 0;
  std::vector<std::string> diff;  ///< "path:N: -/+ line" pairs, for dry-run display
};

/// Computes fixes for one file.  Only rules applicable to `file.path`
/// fire (magic-hours is src/-only, pragma-once headers-only), matching
/// the analyzer's reporting exactly.
[[nodiscard]] FixResult compute_fixes(const SourceFile& file, const TokenizedSource& tok);

}  // namespace tzgeo::analyze
