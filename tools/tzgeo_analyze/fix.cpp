#include "tzgeo_analyze/fix.hpp"

#include <cctype>
#include <sstream>

#include "tzgeo_analyze/lint_rules.hpp"

namespace tzgeo::analyze {

namespace {

[[nodiscard]] bool is_word_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

struct LinePair {
  std::string raw;
  std::string stripped;
};

[[nodiscard]] std::vector<LinePair> split_lines(const std::string& raw,
                                                const std::string& stripped) {
  std::vector<LinePair> out;
  std::size_t start = 0;
  while (start <= raw.size()) {
    std::size_t end = raw.find('\n', start);
    if (end == std::string::npos) end = raw.size();
    out.push_back(LinePair{raw.substr(start, end - start),
                           stripped.substr(start, end - start)});
    if (end == raw.size()) break;
    start = end + 1;
  }
  return out;
}

/// Rewrites one raw line's fixable magic-hours literals, guided by its
/// stripped twin (identical byte positions).  Returns the edit count.
int fix_magic_hours_line(LinePair& line) {
  int edits = 0;
  std::string out_raw;
  std::string out_stripped;
  const std::string& s = line.stripped;
  for (std::size_t i = 0; i < s.size();) {
    bool replaced = false;
    if (s[i] == '2' && i + 1 < s.size() && (s[i + 1] == '3' || s[i + 1] == '4') &&
        (i == 0 || (!is_word_char(s[i - 1]) && s[i - 1] != '.'))) {
      std::size_t end = i + 2;
      bool float_form = false;
      if (end < s.size() && s[end] == '.') {
        std::size_t digits = end + 1;
        while (digits < s.size() && s[digits] == '0') ++digits;
        const bool zeros_only =
            digits > end + 1 &&
            (digits >= s.size() || std::isdigit(static_cast<unsigned char>(s[digits])) == 0);
        if (zeros_only) {
          float_form = true;
          end = digits;
        }
      }
      const bool clean_right =
          end >= s.size() || (!is_word_char(s[end]) && s[end] != '.');
      const bool small_int = !float_form;
      if (clean_right && (float_form || small_int)) {
        std::string replacement;
        if (s[i + 1] == '4') {
          replacement = float_form ? "kHoursPerDayF" : "kHoursPerDay";
        } else if (!float_form) {
          replacement = "kMaxHourOfDay";  // 23.0 has no named constant; leave it
        }
        if (!replacement.empty()) {
          out_raw += replacement;
          out_stripped += replacement;
          i = end;
          ++edits;
          replaced = true;
        }
      }
    }
    if (!replaced) {
      out_raw += line.raw[i];
      out_stripped += s[i];
      ++i;
    }
  }
  if (edits > 0) {
    line.raw = std::move(out_raw);
    line.stripped = std::move(out_stripped);
  }
  return edits;
}

[[nodiscard]] bool rule_applies(const char* name, const std::string& path) {
  for (const LintRule& rule : lint_rules()) {
    if (rule.name == name) return rule.applies(path);
  }
  return false;
}

}  // namespace

FixResult compute_fixes(const SourceFile& file, const TokenizedSource& tok) {
  FixResult result;
  std::vector<LinePair> lines = split_lines(file.text, tok.stripped);

  const bool header = file.path.size() > 4 &&
                      file.path.compare(file.path.size() - 4, 4, ".hpp") == 0;
  const bool fix_hours = rule_applies("magic-hours", file.path);

  bool has_constants_include = false;
  bool needs_constants_include = false;
  for (std::size_t i = 0; i < lines.size(); ++i) {
    if (lines[i].raw.find("#include \"util/constants.hpp\"") != std::string::npos) {
      has_constants_include = true;
    }
    if (!fix_hours) continue;
    const std::uint32_t number = static_cast<std::uint32_t>(i + 1);
    if (!has_magic_hours_literal(lines[i].stripped) || tok.allowed(number, "magic-hours")) {
      continue;
    }
    const std::string before = lines[i].raw;
    if (fix_magic_hours_line(lines[i]) > 0) {
      ++result.edits;
      needs_constants_include = true;
      result.diff.push_back(file.path + ":" + std::to_string(number) + ": - " + before);
      result.diff.push_back(file.path + ":" + std::to_string(number) + ": + " +
                            lines[i].raw);
    }
  }

  // Insert `#pragma once` before the first code line of a header lacking
  // it (comment lines are blank in the stripped text, so they are
  // skipped naturally).
  if (header && tok.stripped.find("#pragma once") == std::string::npos) {
    std::size_t insert_at = lines.size();
    for (std::size_t i = 0; i < lines.size(); ++i) {
      if (lines[i].stripped.find_first_not_of(" \t") != std::string::npos) {
        insert_at = i;
        break;
      }
    }
    lines.insert(lines.begin() + static_cast<std::ptrdiff_t>(insert_at),
                 LinePair{"#pragma once", "#pragma once"});
    ++result.edits;
    result.diff.push_back(file.path + ":" + std::to_string(insert_at + 1) +
                          ": + #pragma once");
  }

  if (needs_constants_include && !has_constants_include) {
    // After `#pragma once` in headers; after the last existing include
    // (or at the top) otherwise.
    std::size_t insert_at = 0;
    for (std::size_t i = 0; i < lines.size(); ++i) {
      if (lines[i].stripped.find("#pragma once") != std::string::npos ||
          lines[i].stripped.find("#include") != std::string::npos) {
        insert_at = i + 1;
      }
    }
    lines.insert(lines.begin() + static_cast<std::ptrdiff_t>(insert_at),
                 LinePair{"#include \"util/constants.hpp\"",
                          "#include \"util/constants.hpp\""});
    ++result.edits;
    result.diff.push_back(file.path + ":" + std::to_string(insert_at + 1) +
                          ": + #include \"util/constants.hpp\"");
  }

  if (result.edits == 0) {
    result.new_text = file.text;
    return result;
  }
  std::string rebuilt;
  for (std::size_t i = 0; i < lines.size(); ++i) {
    rebuilt += lines[i].raw;
    if (i + 1 < lines.size()) rebuilt += '\n';
  }
  // Preserve a trailing newline if the original had one.
  if (!file.text.empty() && file.text.back() == '\n' &&
      (rebuilt.empty() || rebuilt.back() != '\n')) {
    rebuilt += '\n';
  }
  result.new_text = std::move(rebuilt);
  return result;
}

}  // namespace tzgeo::analyze
