// SARIF 2.1.0 emission + self-contained validation.
//
// `to_sarif` renders the non-baselined findings as one SARIF run (tool
// driver "tzgeo_analyze", one reportingDescriptor per distinct rule, one
// result per finding at level "error").  `sarif_check` re-validates the
// emitted text the same way tzgeo_obs_check validates observability
// dumps: a minimal RFC 8259 scanner proves syntactic well-formedness,
// then structural probes confirm the SARIF envelope (version, driver
// name, and that every result's ruleId has a matching rule descriptor).
// The emitter runs its own output through sarif_check before returning
// it to the driver, so a malformed report can never reach CI upload.
#pragma once

#include <string>
#include <vector>

#include "tzgeo_analyze/types.hpp"

namespace tzgeo::analyze {

/// Renders non-baselined findings as a SARIF 2.1.0 document.
[[nodiscard]] std::string to_sarif(const std::vector<Finding>& findings);

/// Validates `text` as a well-formed SARIF 2.1.0 report.  On failure,
/// `error` (if non-null) receives a one-line reason.
[[nodiscard]] bool sarif_check(const std::string& text, std::string* error);

}  // namespace tzgeo::analyze
