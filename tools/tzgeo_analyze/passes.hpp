// Whole-program semantic passes over the per-TU facts:
//
//   * check_lock_order — replays each function's guard-acquisition /
//     block-close / call event stream, builds a global lock-order graph
//     (edges held -> newly acquired, including acquisitions reached
//     through calls made while holding a lock), and reports every cycle
//     once.  std::scoped_lock multi-acquires are atomic: no internal
//     edges are recorded between its mutexes.
//
//   * check_hot_alloc — inside `tzgeo: hot` functions/regions, flags
//     allocation tokens (new, make_unique/make_shared, malloc family,
//     to_string, std::string/stringstream construction) and container
//     growth (push_back/emplace_back/append/resize/insert/emplace)
//     unless an earlier reserve() on the same receiver absolves it or
//     the line carries allow(hot-alloc).
//
//   * check_determinism — computes the set of functions that feed
//     checkpoint/CRC/exporter output (sink mentions plus reverse call
//     closure) and reports unordered_map/unordered_set iteration inside
//     that set: hash iteration order is libstdc++-version-dependent, so
//     it would silently break byte-stable checkpoints and golden files.
#pragma once

#include <vector>

#include "tzgeo_analyze/facts.hpp"
#include "tzgeo_analyze/tokenizer.hpp"
#include "tzgeo_analyze/types.hpp"

namespace tzgeo::analyze {

void check_lock_order(const std::vector<TuFacts>& tus, std::vector<Finding>& findings);

/// `sources[i]`/`toks[i]` correspond to `tus[i]`; the tokenized marks are
/// consulted for per-line allow(hot-alloc) waivers.
void check_hot_alloc(const std::vector<TuFacts>& tus,
                     const std::vector<TokenizedSource>& toks,
                     std::vector<Finding>& findings);

void check_determinism(const std::vector<TuFacts>& tus,
                       const std::vector<TokenizedSource>& toks,
                       std::vector<Finding>& findings);

}  // namespace tzgeo::analyze
