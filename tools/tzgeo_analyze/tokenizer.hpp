// C++ tokenizer for tzgeo_analyze: comments, string literals, char
// literals, and raw strings are handled exactly once, here — every rule
// and pass downstream sees either the stripped text (line-oriented lint
// rules) or the token stream (semantic fact extraction), never the raw
// bytes.  This replaces the ad-hoc stripping that used to live inside
// tools/tzgeo_lint.cpp.
//
// Two outputs from one scan:
//   * `stripped` — the input with comment/string/char-literal content
//     blanked to spaces, newlines preserved, so line-oriented rules can
//     getline() over it and line numbers survive.
//   * `tokens`   — identifiers, pp-numbers, and punctuation with 1-based
//     line numbers.  Preprocessor lines (continuation-aware) produce no
//     tokens: macro bodies would otherwise corrupt brace tracking.
//
// Marker comments are parsed out of comment text during the same scan
// (never out of string literals, so fixture code embedded in raw strings
// cannot mark the embedding file):
//   * `tzgeo: hot`                — opens a hot region (hot-path
//     allocation pass; see facts.hpp for the attachment rules)
//   * `tzgeo-lint: allow(<rule>)` — waives <rule> on that line (the
//     spelling `tzgeo: allow(<rule>)` is accepted as an alias)
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace tzgeo::analyze {

enum class TokKind : std::uint8_t { kIdent, kNumber, kPunct };

struct Token {
  TokKind kind = TokKind::kPunct;
  std::string text;
  std::uint32_t line = 1;
};

/// Per-line marker state, parsed from comment text only.
struct LineMark {
  bool hot = false;
  std::vector<std::string> allows;
};

struct TokenizedSource {
  std::string stripped;          ///< blanked text, newlines preserved
  std::vector<Token> tokens;     ///< excludes preprocessor lines
  std::vector<LineMark> marks;   ///< 1-based; index 0 unused
  std::uint32_t line_count = 0;

  /// True when `rule` is waived on `line` by an allow() marker.
  [[nodiscard]] bool allowed(std::uint32_t line, std::string_view rule) const;

  /// True when `line` carries a `tzgeo: hot` marker.
  [[nodiscard]] bool hot_marked(std::uint32_t line) const;
};

[[nodiscard]] TokenizedSource tokenize(std::string_view text);

}  // namespace tzgeo::analyze
