// The nine line-oriented tzgeo-lint rules (magic-hours, rng-source,
// stdout-io, sscanf-parse, obs-clock, float-stats, simd-shim, catch-style,
// pragma-once), ported onto the shared tokenizer: rules match against
// TokenizedSource::stripped lines, and `tzgeo-lint: allow(<rule>)`
// waivers come from the marker table the tokenizer already built.
// tools/tzgeo_lint.cpp is now a thin wrapper over this translation unit.
#pragma once

#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "tzgeo_analyze/tokenizer.hpp"
#include "tzgeo_analyze/types.hpp"

namespace tzgeo::analyze {

// Matching helpers, exported so the self-tests can exercise them directly.

/// True when `token` occurs in `line` with non-word characters (or line
/// edges) on both sides.  `token` itself may contain punctuation (e.g.
/// "std::cout"); only its boundary characters are checked.
[[nodiscard]] bool contains_token(std::string_view line, std::string_view token);

/// True when `prefix` occurs in `line` with a non-word character (or the
/// line start) on its LEFT only.  Vector-register families share prefixes
/// across many suffixed spellings (__m256 vs __m256d vs __m256i), so the
/// right side is deliberately unconstrained.
[[nodiscard]] bool contains_prefix_token(std::string_view line, std::string_view prefix);

/// True when `line` calls `name(` as a free token (so `snprintf(` does
/// not match `printf(`, and `uniform_int(` does not match `int(`).
[[nodiscard]] bool contains_call(std::string_view line, std::string_view name);

/// Finds a bare 23/24/25 integer literal (or 23.0/24.0/25.0) in the line.
/// Literals embedded in identifiers (x24), larger numbers (124, 245),
/// decimals (0.25), hex (0x24), and exponents (1e24) do not count.
[[nodiscard]] bool has_magic_hours_literal(std::string_view line);

/// Finds a `catch (...)` or a catch-by-value clause on the line.
[[nodiscard]] bool has_bad_catch(std::string_view line);

struct LintRule {
  std::string name;
  std::string message;
  std::function<bool(const std::string& path)> applies;  ///< repo-relative, generic seps
  std::function<bool(std::string_view stripped_line)> match;
};

[[nodiscard]] const std::vector<LintRule>& lint_rules();

/// Runs every applicable rule over `file` and appends findings.  The
/// pragma-once check (file-scoped, headers only) runs here too.
void run_lint_rules(const SourceFile& file, const TokenizedSource& tok,
                    std::vector<Finding>& findings);

}  // namespace tzgeo::analyze
