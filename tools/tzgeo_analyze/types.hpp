// Shared value types of the tzgeo_analyze framework.
//
// The analyzer is deliberately dependency-free (it links none of the tzgeo
// libraries it inspects), so these are plain structs over std::string —
// every component exchanges repo-relative paths and line numbers, nothing
// richer.  A Finding is the one currency: tokenizer-level lint rules and
// the whole-program semantic passes both emit them, and the baseline,
// SARIF, and --fix layers consume them uniformly.
#pragma once

#include <cstdint>
#include <string>

namespace tzgeo::analyze {

/// One input file: a repo-relative path (generic separators) plus its
/// full text.  Tests construct these in memory; the driver loads them
/// from disk.
struct SourceFile {
  std::string path;
  std::string text;
};

/// One diagnostic.  `snippet` is the stripped source line the finding
/// anchors to; the baseline fingerprints (rule, file, snippet), so a
/// finding survives unrelated edits that only shift line numbers.
struct Finding {
  std::string file;
  std::uint32_t line = 1;
  std::string rule;
  std::string message;
  std::string snippet;
  bool baselined = false;
};

}  // namespace tzgeo::analyze
