// Include-graph layering: the allowed layer DAG is extracted from the
// `target_link_libraries(tzgeo_<module> ...)` declarations in each
// src/<module>/CMakeLists.txt, so the build system stays the single
// source of truth.  A `#include "X/..."` from module m is legal only when
// X == m or tzgeo_X is in the transitive link closure of tzgeo_m; a cycle
// in the link graph itself is reported as `layer-cycle`.
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "tzgeo_analyze/facts.hpp"
#include "tzgeo_analyze/types.hpp"

namespace tzgeo::analyze {

struct LayerGraph {
  std::vector<std::string> modules;                     ///< declaration order
  std::map<std::string, std::set<std::string>> deps;    ///< direct link deps
  std::map<std::string, std::set<std::string>> closure; ///< transitive deps
  std::vector<std::string> cycle;  ///< non-empty when the link graph cycles
};

/// Parses one src/<module>/CMakeLists.txt and merges its link deps into
/// `graph`.  `module` is the directory name; dependencies are the
/// `tzgeo_<x>` targets named in target_link_libraries (tzgeo_warnings and
/// non-tzgeo targets are ignored).
void parse_cmake_deps(const std::string& module, const std::string& text, LayerGraph& graph);

/// Computes the transitive closure and detects cycles.  Call once after
/// all parse_cmake_deps calls.
void finalize_layer_graph(LayerGraph& graph);

/// Emits `layer-include` findings for every include that crosses layers
/// illegally, and one `layer-cycle` finding when the graph cycles.
void check_layering(const LayerGraph& graph, const std::vector<TuFacts>& tus,
                    std::vector<Finding>& findings);

}  // namespace tzgeo::analyze
