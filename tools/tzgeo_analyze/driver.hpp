// Orchestration: tokenize every source once, run the line-oriented lint
// rules and the whole-program passes over the shared artifacts, apply
// the baseline, and render SARIF.  `analyze_sources` is the pure
// in-memory core (tests and --self-test drive it directly);
// `analyze_repo` wraps it with the directory scan, the
// compile_commands.json TU selection, and src/*/CMakeLists.txt loading.
#pragma once

#include <string>
#include <vector>

#include "tzgeo_analyze/baseline.hpp"
#include "tzgeo_analyze/types.hpp"

namespace tzgeo::analyze {

/// One src/<module>/CMakeLists.txt, for the layering pass.
struct CmakeInput {
  std::string module;
  std::string text;
};

struct AnalyzeResult {
  std::vector<Finding> findings;  ///< sorted by (file, line, rule)
  std::vector<std::string> stale_baseline;
  std::size_t files_scanned = 0;

  [[nodiscard]] std::size_t new_count() const;
  [[nodiscard]] std::size_t baselined_count() const;
};

/// Pure in-memory analysis over already-loaded sources.
[[nodiscard]] AnalyzeResult analyze_sources(const std::vector<SourceFile>& sources,
                                            const std::vector<CmakeInput>& cmake,
                                            const std::string& baseline_text,
                                            bool lint_only);

/// Disk front-end: scans src/tools/tests/bench/examples under `root` for
/// *.cpp/*.hpp (sorted), loads src/*/CMakeLists.txt for the layer graph,
/// and optionally restricts src/*.cpp TUs to the "file" entries of a
/// compile_commands.json.  Returns false (with `error` set) when `root`
/// does not look like the repo.
[[nodiscard]] bool analyze_repo(const std::string& root, const std::string& compile_commands,
                                const std::string& baseline_text, bool lint_only,
                                AnalyzeResult& result, std::string& error);

/// In-memory fixture checks for the tokenizer, all four semantic passes,
/// the baseline, SARIF, and the fixer.  Returns the failure count and
/// appends one line per failed check to `log`.
[[nodiscard]] int self_test(std::vector<std::string>& log);

}  // namespace tzgeo::analyze
