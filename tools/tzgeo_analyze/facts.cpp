#include "tzgeo_analyze/facts.hpp"

#include <algorithm>
#include <array>
#include <set>
#include <string_view>

namespace tzgeo::analyze {

namespace {

using Tokens = std::vector<Token>;

constexpr std::size_t kNpos = static_cast<std::size_t>(-1);

/// Names that look like calls but never are function definitions.
[[nodiscard]] bool is_control_name(std::string_view name) {
  static const std::set<std::string_view> kNames = {
      "if",     "for",      "while",  "switch",        "catch",    "return",
      "sizeof", "alignof",  "decltype", "static_assert", "requires", "noexcept",
      "assert", "defined",  "throw",  "new",           "delete",   "operator",
      "alignas", "typeid",  "co_await", "co_return",   "co_yield"};
  return kNames.count(name) > 0;
}

[[nodiscard]] bool is_keyword_not_call(std::string_view name) {
  static const std::set<std::string_view> kNames = {
      "if",    "for",    "while",    "switch",   "catch",  "return", "sizeof",
      "alignof", "decltype", "static_assert", "requires", "noexcept", "throw",
      "alignas", "typeid", "new", "delete", "const_cast", "static_cast",
      "dynamic_cast", "reinterpret_cast"};
  return kNames.count(name) > 0;
}

/// Tokens whose presence in a function body marks it as feeding
/// checkpoint, CRC, or exporter output (determinism pass roots).
[[nodiscard]] bool is_sink_token(std::string_view name) {
  static const std::set<std::string_view> kSinks = {
      "Checkpoint",       "ByteWriter", "checkpoint_payload", "checkpoint_extra",
      "crc32",            "to_json",    "prometheus",         "to_csv",
      "write_row",        "chrome_trace_json", "to_sarif"};
  return kSinks.count(name) > 0;
}

[[nodiscard]] bool is_alloc_call(std::string_view name) {
  static const std::set<std::string_view> kAllocs = {
      "make_unique", "make_shared", "malloc", "calloc", "realloc", "strdup", "to_string"};
  return kAllocs.count(name) > 0;
}

[[nodiscard]] bool is_growth_member(std::string_view name) {
  static const std::set<std::string_view> kGrowth = {
      "push_back", "emplace_back", "append", "resize", "insert", "emplace"};
  return kGrowth.count(name) > 0;
}

[[nodiscard]] bool is_unordered_type(std::string_view name) {
  return name == "unordered_map" || name == "unordered_set" ||
         name == "unordered_multimap" || name == "unordered_multiset";
}

/// Index just past the matching `)` for tokens[i] == "(".  Clamps at end.
[[nodiscard]] std::size_t skip_parens(const Tokens& t, std::size_t i) {
  int depth = 0;
  for (; i < t.size(); ++i) {
    if (t[i].text == "(") ++depth;
    if (t[i].text == ")" && --depth == 0) return i + 1;
  }
  return t.size();
}

[[nodiscard]] std::size_t skip_braces(const Tokens& t, std::size_t i) {
  int depth = 0;
  for (; i < t.size(); ++i) {
    if (t[i].text == "{") ++depth;
    if (t[i].text == "}" && --depth == 0) return i + 1;
  }
  return t.size();
}

/// Index just past a balanced `<...>` starting at tokens[i] == "<".
/// Returns i + 1 (the `<` was a comparison) when the scan hits a token
/// that cannot appear inside a template argument list.
[[nodiscard]] std::size_t skip_angles(const Tokens& t, std::size_t i) {
  int depth = 0;
  for (std::size_t j = i; j < t.size(); ++j) {
    const std::string& x = t[j].text;
    if (x == "<") ++depth;
    if (x == ">" && --depth == 0) return j + 1;
    if (x == ";" || x == "{" || x == "}") return i + 1;
  }
  return i + 1;
}

/// Walks a member-access chain backwards from index `i` (exclusive) and
/// returns its normalized text, e.g. `out.rows` for `out.rows.push_back`.
[[nodiscard]] std::string chain_before(const Tokens& t, std::size_t i) {
  std::size_t begin = i;
  bool expect_name = true;  // chains alternate name-ish and connector tokens
  while (begin > 0) {
    const std::string& x = t[begin - 1].text;
    const bool name_like = t[begin - 1].kind == TokKind::kIdent || x == ")" || x == "]";
    const bool connector = x == "." || x == "->" || x == "::";
    if (expect_name ? !name_like : !connector) break;
    if (x == ")" || x == "]") break;  // call/index results: stop at the group
    expect_name = !expect_name;
    --begin;
  }
  std::string out;
  for (std::size_t j = begin; j < i; ++j) out += t[j].text;
  return out;
}

/// The qualified name chain ending at the identifier `i` (inclusive),
/// e.g. `Foo::bar` for tokens `Foo :: bar`.
[[nodiscard]] std::string qualified_name_ending_at(const Tokens& t, std::size_t i) {
  std::string name = t[i].text;
  std::size_t j = i;
  while (j >= 2 && t[j - 1].text == "::" && t[j - 2].kind == TokKind::kIdent) {
    name = t[j - 2].text + "::" + name;
    j -= 2;
  }
  if (j >= 1 && t[j - 1].text == "~") name = "~" + name;
  return name;
}

struct Scope {
  enum class Kind : std::uint8_t { kNamespace, kClass, kFunction, kBlock };
  Kind kind = Kind::kBlock;
  std::string name;
  int open_depth = 0;        ///< brace depth after this scope's `{`
  std::size_t func = kNpos;  ///< kFunction: index into TuFacts::functions
};

/// Splits the argument tokens of a guard constructor into normalized
/// per-argument expressions (top-level commas only).
[[nodiscard]] std::vector<std::string> split_args(const Tokens& t, std::size_t open,
                                                  std::size_t close) {
  std::vector<std::string> args;
  std::string current;
  int depth = 0;
  for (std::size_t j = open + 1; j + 1 < close + 1 && j < close; ++j) {
    const std::string& x = t[j].text;
    if (x == "(" || x == "{" || x == "[") ++depth;
    if (x == ")" || x == "}" || x == "]") --depth;
    if (x == "," && depth == 0) {
      if (!current.empty()) args.push_back(current);
      current.clear();
      continue;
    }
    current += x;
  }
  if (!current.empty()) args.push_back(current);
  return args;
}

[[nodiscard]] bool is_lock_tag(std::string_view arg) {
  return arg.find("adopt_lock") != std::string_view::npos ||
         arg.find("defer_lock") != std::string_view::npos ||
         arg.find("try_to_lock") != std::string_view::npos;
}

}  // namespace

TuFacts extract_facts(const SourceFile& file, const TokenizedSource& tok) {
  TuFacts tu;
  tu.path = file.path;
  if (file.path.rfind("src/", 0) == 0) {
    const std::size_t slash = file.path.find('/', 4);
    if (slash != std::string::npos) tu.module = file.path.substr(4, slash - 4);
  }

  // Includes: the stripped line proves `#include` is code (not comment
  // text); the raw line still carries the quoted path the tokenizer
  // blanked.
  {
    std::size_t start = 0;
    std::uint32_t line = 1;
    while (start <= tok.stripped.size()) {
      std::size_t end = tok.stripped.find('\n', start);
      if (end == std::string::npos) end = tok.stripped.size();
      const std::string_view sline(tok.stripped.data() + start, end - start);
      const std::size_t hash = sline.find_first_not_of(" \t");
      if (hash != std::string_view::npos && sline[hash] == '#' &&
          sline.find("include", hash) != std::string_view::npos) {
        const std::string_view raw(file.text.data() + start,
                                   std::min(end - start, file.text.size() - start));
        const std::size_t q1 = raw.find('"');
        const std::size_t q2 = q1 == std::string_view::npos ? q1 : raw.find('"', q1 + 1);
        if (q2 != std::string_view::npos) {
          tu.includes.push_back(
              IncludeFact{std::string(raw.substr(q1 + 1, q2 - q1 - 1)), line});
        }
      }
      if (end == tok.stripped.size()) break;
      start = end + 1;
      ++line;
    }
  }

  const Tokens& t = tok.tokens;

  // Pre-pass: names declared with an unordered container type anywhere in
  // the TU (members, locals, parameters).  `auto` deduction is invisible.
  std::set<std::string> unordered_decls;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind != TokKind::kIdent || !is_unordered_type(t[i].text)) continue;
    std::size_t j = i + 1;
    if (j < t.size() && t[j].text == "<") j = skip_angles(t, j);
    while (j < t.size() && (t[j].text == "&" || t[j].text == "*")) ++j;
    if (j < t.size() && t[j].kind == TokKind::kIdent &&
        (j + 1 >= t.size() || t[j + 1].text != "(")) {
      unordered_decls.insert(t[j].text);
    }
  }

  std::vector<Scope> scopes;
  int depth = 0;
  bool pending_valid = false;
  Scope pending;

  const auto innermost_function = [&]() -> FunctionFacts* {
    for (auto it = scopes.rbegin(); it != scopes.rend(); ++it) {
      if (it->kind == Scope::Kind::kFunction) return &tu.functions[it->func];
      if (it->kind == Scope::Kind::kNamespace || it->kind == Scope::Kind::kClass) break;
    }
    return nullptr;
  };
  const auto function_open_depth = [&]() -> int {
    for (auto it = scopes.rbegin(); it != scopes.rend(); ++it) {
      if (it->kind == Scope::Kind::kFunction) return it->open_depth;
      if (it->kind == Scope::Kind::kNamespace || it->kind == Scope::Kind::kClass) break;
    }
    return 0;
  };
  const auto innermost_class_name = [&]() -> std::string {
    for (auto it = scopes.rbegin(); it != scopes.rend(); ++it) {
      if (it->kind == Scope::Kind::kClass) return it->name;
      if (it->kind == Scope::Kind::kFunction) break;
    }
    return std::string();
  };

  // Attempts to recognize a function definition whose parameter list
  // opens at `paren` (name identifier at `name_idx`).  On success returns
  // the index of the body's `{`; kNpos otherwise.
  const auto match_function = [&](std::size_t name_idx, std::size_t paren) -> std::size_t {
    std::size_t k = skip_parens(t, paren);
    bool saw_init_list = false;
    while (k < t.size()) {
      const std::string& x = t[k].text;
      if (x == "{") return k;
      if (x == ";" || x == "=" || x == "," || x == ")" || x == "}") return kNpos;
      if (x == "(") {
        k = skip_parens(t, k);
        continue;
      }
      if (x == "<") {
        k = skip_angles(t, k);
        continue;
      }
      if (x == ":" && !saw_init_list) {
        // Constructor initializer list: `name(args)` or `name{args}`
        // items separated by commas, then the body brace.
        saw_init_list = true;
        ++k;
        while (k < t.size()) {
          while (k < t.size() &&
                 (t[k].kind == TokKind::kIdent || t[k].text == "::" || t[k].text == "~")) {
            ++k;
            if (k < t.size() && t[k].text == "<") k = skip_angles(t, k);
          }
          if (k >= t.size()) return kNpos;
          if (t[k].text == "(") {
            k = skip_parens(t, k);
          } else if (t[k].text == "{") {
            k = skip_braces(t, k);
          } else {
            return kNpos;
          }
          if (k < t.size() && t[k].text == ",") {
            ++k;
            continue;
          }
          break;
        }
        continue;
      }
      if (t[k].kind == TokKind::kIdent || x == "::" || x == "->" || x == "&" || x == "*" ||
          x == "[" || x == "]") {
        ++k;
        continue;
      }
      return kNpos;
    }
    (void)name_idx;
    return kNpos;
  };

  for (std::size_t i = 0; i < t.size(); ++i) {
    const Token& cur = t[i];
    FunctionFacts* fn = innermost_function();

    if (cur.text == "{") {
      ++depth;
      Scope s = pending_valid ? pending : Scope{};
      pending_valid = false;
      s.open_depth = depth;
      if (s.kind == Scope::Kind::kFunction && s.func != kNpos) {
        tu.functions[s.func].open_line = cur.line;
        FunctionFacts& f = tu.functions[s.func];
        for (std::uint32_t l = f.decl_line > 0 ? f.decl_line - 1 : 1; l <= f.open_line; ++l) {
          if (tok.hot_marked(l)) f.hot = true;
        }
      }
      scopes.push_back(std::move(s));
      continue;
    }
    if (cur.text == "}") {
      --depth;
      while (!scopes.empty() && scopes.back().open_depth > depth) {
        const Scope closed = scopes.back();
        scopes.pop_back();
        if (closed.kind == Scope::Kind::kFunction && closed.func != kNpos) {
          FunctionFacts& f = tu.functions[closed.func];
          f.end_line = cur.line;
          for (std::uint32_t l = f.open_line + 1; l <= f.end_line; ++l) {
            if (tok.hot_marked(l)) f.hot_region_starts.push_back(l);
          }
        } else if (closed.kind == Scope::Kind::kBlock) {
          FunctionFacts* enclosing = innermost_function();
          if (enclosing != nullptr) {
            LockEvent ev;
            ev.kind = LockEvent::Kind::kBlockClose;
            ev.line = cur.line;
            ev.depth = depth - function_open_depth() + 1;
            enclosing->lock_events.push_back(std::move(ev));
          }
        }
      }
      continue;
    }

    if (fn == nullptr) {
      // --- declaration context: namespaces, classes, function defs ------
      if (cur.text == "namespace") {
        std::size_t j = i + 1;
        std::string name;
        while (j < t.size() && (t[j].kind == TokKind::kIdent || t[j].text == "::")) {
          name += t[j].text;
          ++j;
        }
        if (j < t.size() && t[j].text == "{") {
          pending = Scope{Scope::Kind::kNamespace, name, 0, kNpos};
          pending_valid = true;
          i = j - 1;
        } else {
          i = j;  // alias or malformed; skip the name
        }
        continue;
      }
      if (cur.text == "class" || cur.text == "struct" || cur.text == "union" ||
          cur.text == "enum") {
        std::size_t j = i + 1;
        if (j < t.size() && (t[j].text == "class" || t[j].text == "struct")) ++j;
        std::string name;
        if (j < t.size() && t[j].kind == TokKind::kIdent) {
          name = t[j].text;
          ++j;
        }
        if (j < t.size() && t[j].text == "<") j = skip_angles(t, j);
        // Scan the base-class list / enum underlying type for the brace.
        while (j < t.size() && t[j].text != "{" && t[j].text != ";" && t[j].text != ")" &&
               t[j].text != "=") {
          if (t[j].text == "<") {
            j = skip_angles(t, j);
          } else {
            ++j;
          }
        }
        if (j < t.size() && t[j].text == "{") {
          pending = Scope{Scope::Kind::kClass, name, 0, kNpos};
          pending_valid = true;
          i = j - 1;
        }
        continue;
      }
      if (cur.text == "template" && i + 1 < t.size() && t[i + 1].text == "<") {
        i = skip_angles(t, i + 1) - 1;
        continue;
      }
      if (cur.kind == TokKind::kIdent && i + 1 < t.size() && t[i + 1].text == "(" &&
          !is_control_name(cur.text)) {
        const std::size_t body = match_function(i, i + 1);
        if (body != kNpos) {
          FunctionFacts f;
          f.name = qualified_name_ending_at(t, i);
          const std::string cls = innermost_class_name();
          if (!cls.empty() && f.name.find("::") == std::string::npos) {
            f.name = cls + "::" + f.name;
          }
          f.decl_line = cur.line;
          tu.functions.push_back(std::move(f));
          pending = Scope{Scope::Kind::kFunction, tu.functions.back().name, 0,
                          tu.functions.size() - 1};
          pending_valid = true;
          i = body - 1;
        }
        continue;
      }
      continue;
    }

    // --- inside a function body: collect events ------------------------
    const int rel_depth = depth - function_open_depth() + 1;

    if (cur.kind == TokKind::kIdent && is_sink_token(cur.text)) fn->mentions_sink = true;

    if (cur.kind == TokKind::kIdent &&
        (cur.text == "lock_guard" || cur.text == "unique_lock" || cur.text == "scoped_lock")) {
      std::size_t j = i + 1;
      if (j < t.size() && t[j].text == "<") j = skip_angles(t, j);
      if (j < t.size() && t[j].kind == TokKind::kIdent) ++j;  // guard variable name
      if (j < t.size() && t[j].text == "(") {
        const std::size_t close = skip_parens(t, j) - 1;
        std::vector<std::string> args = split_args(t, j, close);
        bool deferred = false;
        std::vector<std::string> mutexes;
        for (std::string& arg : args) {
          if (arg.find("defer_lock") != std::string::npos) deferred = true;
          if (!is_lock_tag(arg)) mutexes.push_back(std::move(arg));
        }
        if (cur.text != "scoped_lock" && mutexes.size() > 1) mutexes.resize(1);
        if (!deferred && !mutexes.empty()) {
          LockEvent ev;
          ev.kind = LockEvent::Kind::kAcquire;
          ev.mutexes = std::move(mutexes);
          ev.atomic_multi = cur.text == "scoped_lock";
          ev.line = cur.line;
          ev.depth = rel_depth;
          fn->lock_events.push_back(std::move(ev));
        }
        i = close;  // the guard args are consumed; nothing else to see there
        continue;
      }
      continue;
    }

    if (cur.text == "for" && i + 1 < t.size() && t[i + 1].text == "(") {
      // Range-for over an unordered container?  Find the top-level `:`.
      const std::size_t close = skip_parens(t, i + 1) - 1;
      int pd = 0;
      for (std::size_t j = i + 1; j < close; ++j) {
        const std::string& x = t[j].text;
        if (x == "(" || x == "[" || x == "{") ++pd;
        if (x == ")" || x == "]" || x == "}") --pd;
        if (x == ":" && pd == 1) {
          std::string container;
          std::string last_ident;
          for (std::size_t k = j + 1; k < close; ++k) {
            container += t[k].text;
            if (t[k].kind == TokKind::kIdent) last_ident = t[k].text;
          }
          if (unordered_decls.count(last_ident) > 0) {
            fn->unordered_iters.push_back(IterEvent{container, t[j].line});
          }
          break;
        }
      }
      continue;
    }

    if (cur.text == "new") {
      if (i + 1 < t.size() && t[i + 1].text != "(") {  // `new (ptr) T` is placement
        fn->allocs.push_back(AllocEvent{"new", "", cur.line});
      }
      continue;
    }

    if (cur.kind == TokKind::kIdent && i + 1 < t.size() &&
        (t[i + 1].text == "(" || (t[i + 1].text == "<" && skip_angles(t, i + 1) < t.size() &&
                                  t[skip_angles(t, i + 1)].text == "("))) {
      const bool member = i > 0 && (t[i - 1].text == "." || t[i - 1].text == "->");
      if (member) {
        const std::string receiver = chain_before(t, i - 1);
        if (is_growth_member(cur.text) || cur.text == "reserve") {
          fn->allocs.push_back(AllocEvent{cur.text, receiver, cur.line});
        }
        if ((cur.text == "begin" || cur.text == "cbegin") && !receiver.empty()) {
          std::string root = receiver;
          const std::size_t dot = root.find_last_of(".>");
          if (dot != std::string::npos) root = root.substr(dot + 1);
          if (unordered_decls.count(root) > 0) {
            fn->unordered_iters.push_back(IterEvent{receiver, cur.line});
          }
        }
        fn->calls.push_back(cur.text);
      } else if (!is_keyword_not_call(cur.text)) {
        if (is_alloc_call(cur.text)) {
          fn->allocs.push_back(AllocEvent{cur.text, "", cur.line});
        }
        fn->calls.push_back(cur.text);
        LockEvent ev;
        ev.kind = LockEvent::Kind::kCall;
        ev.callee = cur.text;
        ev.line = cur.line;
        ev.depth = rel_depth;
        fn->lock_events.push_back(std::move(ev));
      }
      continue;
    }

    if (cur.text == "string" && i >= 2 && t[i - 1].text == "::" && t[i - 2].text == "std" &&
        i + 1 < t.size() && t[i + 1].kind == TokKind::kIdent) {
      fn->allocs.push_back(AllocEvent{"std::string", t[i + 1].text, cur.line});
      continue;
    }
    if ((cur.text == "ostringstream" || cur.text == "stringstream") && i >= 2 &&
        t[i - 1].text == "::" && t[i - 2].text == "std") {
      fn->allocs.push_back(AllocEvent{"std::" + cur.text, "", cur.line});
      continue;
    }
  }

  // Deduplicate call lists (they are used as sets by the passes).
  for (FunctionFacts& f : tu.functions) {
    std::sort(f.calls.begin(), f.calls.end());
    f.calls.erase(std::unique(f.calls.begin(), f.calls.end()), f.calls.end());
  }
  return tu;
}

}  // namespace tzgeo::analyze
