// tzgeo_bench_diff: perf-regression gate over bench --json reports.
//
// Every bench binary emits a common schema with `--json PATH`:
//
//   {"schema": "tzgeo-bench-v1", "binary": "obs_overhead",
//    "results": [{"name": "BM_CounterAdd/1_median", "unit": "ns",
//                 "value": 6.09, "max_ratio": 6.0}, ...]}
//
// Baselines are the same document, committed under bench/baselines/,
// with explicit noise tolerances: a result regresses when
// current/baseline exceeds its `max_ratio` (falling back to the file's
// `default_max_ratio`, then to --max-ratio, default 4.0 — wide enough
// to absorb machine-to-machine variance while still catching the
// order-of-magnitude slips that matter).  A baseline result missing
// from the current run also fails: a benchmark that silently stops
// reporting is how perf coverage rots.
//
// Exit codes: 0 within tolerance, 1 regression/missing, 2 usage or
// unreadable/malformed input.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "util/json.hpp"

using tzgeo::util::JsonValue;

namespace {

struct BenchResult {
  std::string name;
  std::string unit;
  double value = 0.0;
  std::optional<double> max_ratio;
};

struct BenchReport {
  std::string binary;
  std::optional<double> default_max_ratio;
  std::vector<BenchResult> results;
};

[[nodiscard]] std::optional<BenchReport> parse_report(const JsonValue& root,
                                                      std::string& error) {
  const JsonValue* schema = root.find("schema");
  if (schema == nullptr || schema->as_string() != "tzgeo-bench-v1") {
    error = "missing or unknown \"schema\" (want tzgeo-bench-v1)";
    return std::nullopt;
  }
  BenchReport report;
  if (const JsonValue* binary = root.find("binary")) report.binary = binary->as_string();
  if (const JsonValue* ratio = root.find("default_max_ratio")) {
    report.default_max_ratio = ratio->as_number();
  }
  const JsonValue* results = root.find("results");
  if (results == nullptr || !results->is_array()) {
    error = "missing \"results\" array";
    return std::nullopt;
  }
  for (std::size_t i = 0; i < results->size(); ++i) {
    const JsonValue* entry = results->at(i);
    const JsonValue* name = entry->find("name");
    const JsonValue* value = entry->find("value");
    if (name == nullptr || !name->is_string() || value == nullptr || !value->is_number()) {
      error = "results[" + std::to_string(i) + "] needs string \"name\" and numeric \"value\"";
      return std::nullopt;
    }
    BenchResult result;
    result.name = name->as_string();
    result.value = value->as_number();
    if (const JsonValue* unit = entry->find("unit")) result.unit = unit->as_string();
    if (const JsonValue* ratio = entry->find("max_ratio")) {
      result.max_ratio = ratio->as_number();
    }
    report.results.push_back(std::move(result));
  }
  return report;
}

[[nodiscard]] std::optional<BenchReport> load_report(const std::string& path,
                                                     std::string& error) {
  std::ifstream in{path};
  if (!in) {
    error = "cannot read " + path;
    return std::nullopt;
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  const auto parsed = JsonValue::parse(buffer.str());
  if (!parsed) {
    error = path + ": malformed JSON";
    return std::nullopt;
  }
  auto report = parse_report(*parsed, error);
  if (!report) error = path + ": " + error;
  return report;
}

struct DiffStats {
  int compared = 0;
  int regressions = 0;
  int missing = 0;
  int skipped = 0;
};

/// Compares current against baseline, printing one line per result.
[[nodiscard]] DiffStats diff_reports(const BenchReport& baseline,
                                     const BenchReport& current,
                                     double fallback_ratio, bool quiet) {
  DiffStats stats;
  for (const BenchResult& base : baseline.results) {
    const BenchResult* now = nullptr;
    for (const BenchResult& candidate : current.results) {
      if (candidate.name == base.name) {
        now = &candidate;
        break;
      }
    }
    if (now == nullptr) {
      ++stats.missing;
      std::printf("MISSING  %-48s baseline %.4g %s, absent from current run\n",
                  base.name.c_str(), base.value, base.unit.c_str());
      continue;
    }
    if (base.value <= 0.0 || now->value < 0.0) {
      ++stats.skipped;
      if (!quiet) {
        std::printf("SKIP     %-48s non-positive baseline value\n", base.name.c_str());
      }
      continue;
    }
    const double allowed = base.max_ratio.value_or(
        baseline.default_max_ratio.value_or(fallback_ratio));
    const double ratio = now->value / base.value;
    ++stats.compared;
    if (ratio > allowed) {
      ++stats.regressions;
      std::printf("REGRESS  %-48s %.4g -> %.4g %s (%.2fx, allowed %.2fx)\n",
                  base.name.c_str(), base.value, now->value, base.unit.c_str(), ratio,
                  allowed);
    } else if (!quiet) {
      std::printf("ok       %-48s %.4g -> %.4g %s (%.2fx, allowed %.2fx)\n",
                  base.name.c_str(), base.value, now->value, base.unit.c_str(), ratio,
                  allowed);
    }
  }
  return stats;
}

[[nodiscard]] int run_self_test() {
  // The gate's own logic must be provably able to trip: an embedded
  // pass case, a regression case, and a missing-result case.
  const char* baseline_text = R"({
    "schema": "tzgeo-bench-v1", "binary": "self_test", "default_max_ratio": 2.0,
    "results": [
      {"name": "fast", "unit": "ns", "value": 10.0},
      {"name": "tight", "unit": "ns", "value": 100.0, "max_ratio": 1.5}
    ]})";
  const char* good_text = R"({
    "schema": "tzgeo-bench-v1", "binary": "self_test",
    "results": [
      {"name": "fast", "unit": "ns", "value": 15.0},
      {"name": "tight", "unit": "ns", "value": 120.0}
    ]})";
  const char* slow_text = R"({
    "schema": "tzgeo-bench-v1", "binary": "self_test",
    "results": [
      {"name": "fast", "unit": "ns", "value": 25.0},
      {"name": "tight", "unit": "ns", "value": 120.0}
    ]})";
  const char* partial_text = R"({
    "schema": "tzgeo-bench-v1", "binary": "self_test",
    "results": [{"name": "fast", "unit": "ns", "value": 11.0}]})";

  std::string error;
  const auto baseline = parse_report(*JsonValue::parse(baseline_text), error);
  const auto good = parse_report(*JsonValue::parse(good_text), error);
  const auto slow = parse_report(*JsonValue::parse(slow_text), error);
  const auto partial = parse_report(*JsonValue::parse(partial_text), error);
  if (!baseline || !good || !slow || !partial) {
    std::printf("self-test FAILED: embedded reports did not parse (%s)\n", error.c_str());
    return 1;
  }

  int failures = 0;
  const DiffStats pass_stats = diff_reports(*baseline, *good, 4.0, true);
  if (pass_stats.regressions != 0 || pass_stats.missing != 0 || pass_stats.compared != 2) {
    std::printf("self-test FAILED: clean run flagged\n");
    ++failures;
  }
  const DiffStats trip_stats = diff_reports(*baseline, *slow, 4.0, true);
  if (trip_stats.regressions != 1) {
    std::printf("self-test FAILED: 2.5x slip on a 2.0x budget not flagged\n");
    ++failures;
  }
  const DiffStats missing_stats = diff_reports(*baseline, *partial, 4.0, true);
  if (missing_stats.missing != 1) {
    std::printf("self-test FAILED: vanished benchmark not flagged\n");
    ++failures;
  }
  if (const auto malformed = JsonValue::parse("{\"schema\": \"nope\"")) {
    std::printf("self-test FAILED: malformed JSON accepted\n");
    ++failures;
  }
  if (failures == 0) std::printf("tzgeo_bench_diff self-test: all cases behaved\n");
  return failures == 0 ? 0 : 1;
}

void print_usage() {
  std::printf(
      "usage: tzgeo_bench_diff --baseline FILE --current FILE [--max-ratio R] [--quiet]\n"
      "       tzgeo_bench_diff --self-test\n");
}

}  // namespace

int main(int argc, char** argv) {
  std::string baseline_path;
  std::string current_path;
  double fallback_ratio = 4.0;
  bool quiet = false;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--self-test") return run_self_test();
    if (arg == "--quiet") {
      quiet = true;
    } else if (arg == "--baseline" && i + 1 < argc) {
      baseline_path = argv[++i];
    } else if (arg == "--current" && i + 1 < argc) {
      current_path = argv[++i];
    } else if (arg == "--max-ratio" && i + 1 < argc) {
      fallback_ratio = std::atof(argv[++i]);
    } else if (arg == "--help" || arg == "-h") {
      print_usage();
      return 0;
    } else {
      print_usage();
      return 2;
    }
  }
  if (baseline_path.empty() || current_path.empty() || fallback_ratio <= 0.0) {
    print_usage();
    return 2;
  }

  std::string error;
  const auto baseline = load_report(baseline_path, error);
  if (!baseline) {
    std::printf("tzgeo_bench_diff: %s\n", error.c_str());
    return 2;
  }
  const auto current = load_report(current_path, error);
  if (!current) {
    std::printf("tzgeo_bench_diff: %s\n", error.c_str());
    return 2;
  }

  const DiffStats stats = diff_reports(*baseline, *current, fallback_ratio, quiet);
  std::printf("%d compared, %d regressions, %d missing, %d skipped (baseline %s)\n",
              stats.compared, stats.regressions, stats.missing, stats.skipped,
              baseline->binary.c_str());
  return stats.regressions == 0 && stats.missing == 0 ? 0 : 1;
}
