// Schema checker for tzgeo_cli's observability outputs.
//
//   tzgeo_obs_check --metrics FILE.json --trace FILE.json
//
// Validates that the --metrics-out JSON parses, exposes a {"metrics": [...]}
// array whose entries carry name/kind/value (or buckets/sum/count), and
// contains the documented tzgeo_<layer>_* names; and that the --trace-out
// file is well-formed Chrome trace_event JSON with the five pipeline stage
// spans (ingest, profiles, filter, placement, gmm).  CI runs this against a
// fresh `tzgeo_cli demo` dump so a renamed metric or a dropped span fails
// the release job, not a dashboard three weeks later.
//
// util::json is a writer, so this tool carries its own small recursive-
// descent JSON scanner — validation only, no DOM: it confirms syntactic
// well-formedness and leaves content checks to substring probes against
// the (already validated) text.
#include <cctype>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace {

/// Minimal validating JSON scanner (RFC 8259 grammar, no semantics).
class JsonValidator {
 public:
  explicit JsonValidator(std::string_view text) : text_(text) {}

  /// True when the whole input is exactly one valid JSON value.
  [[nodiscard]] bool valid() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == text_.size();
  }

 private:
  [[nodiscard]] bool value() {
    if (pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case '{':
        return object();
      case '[':
        return array();
      case '"':
        return string();
      case 't':
        return literal("true");
      case 'f':
        return literal("false");
      case 'n':
        return literal("null");
      default:
        return number();
    }
  }

  [[nodiscard]] bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return true;
    }
    for (;;) {
      skip_ws();
      if (peek() != '"' || !string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == '}') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  [[nodiscard]] bool array() {
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return true;
    }
    for (;;) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == ']') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  [[nodiscard]] bool string() {
    ++pos_;  // opening quote
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (c == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) return false;
        const char esc = text_[pos_];
        if (esc == 'u') {
          for (int i = 0; i < 4; ++i) {
            ++pos_;
            if (pos_ >= text_.size() ||
                std::isxdigit(static_cast<unsigned char>(text_[pos_])) == 0) {
              return false;
            }
          }
        } else if (std::string_view{"\"\\/bfnrt"}.find(esc) == std::string_view::npos) {
          return false;
        }
      } else if (static_cast<unsigned char>(c) < 0x20) {
        return false;  // raw control character
      }
      ++pos_;
    }
    return false;  // unterminated
  }

  [[nodiscard]] bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    if (std::isdigit(static_cast<unsigned char>(peek())) == 0) return false;
    while (std::isdigit(static_cast<unsigned char>(peek())) != 0) ++pos_;
    if (peek() == '.') {
      ++pos_;
      if (std::isdigit(static_cast<unsigned char>(peek())) == 0) return false;
      while (std::isdigit(static_cast<unsigned char>(peek())) != 0) ++pos_;
    }
    if (peek() == 'e' || peek() == 'E') {
      ++pos_;
      if (peek() == '+' || peek() == '-') ++pos_;
      if (std::isdigit(static_cast<unsigned char>(peek())) == 0) return false;
      while (std::isdigit(static_cast<unsigned char>(peek())) != 0) ++pos_;
    }
    return pos_ > start;
  }

  [[nodiscard]] bool literal(std::string_view word) {
    if (text_.compare(pos_, word.size(), word) != 0) return false;
    pos_ += word.size();
    return true;
  }

  [[nodiscard]] char peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

[[nodiscard]] std::string read_file(const std::string& path) {
  std::ifstream in{path, std::ios::binary};
  if (!in) {
    std::fprintf(stderr, "tzgeo_obs_check: cannot open %s\n", path.c_str());
    std::exit(2);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

/// Metric names every pipeline run must register (a subset of the full
/// inventory in DESIGN.md §10 — one representative per layer).
constexpr const char* kRequiredMetrics[] = {
    "tzgeo_ingest_rows_ok_total",        "tzgeo_ingest_chunk_parse_us",
    "tzgeo_placement_users_total",       "tzgeo_placement_zones_pruned_total",
    "tzgeo_incremental_snapshots_total", "tzgeo_forum_polls_total",
    "tzgeo_tor_circuits_built_total",
};

/// Stage spans the acceptance criteria require in a demo/analyze trace.
constexpr const char* kRequiredSpans[] = {"ingest", "profiles", "filter", "placement", "gmm"};

[[nodiscard]] int check_metrics(const std::string& path) {
  const std::string text = read_file(path);
  int failures = 0;
  if (!JsonValidator{text}.valid()) {
    std::fprintf(stderr, "FAIL %s: not valid JSON\n", path.c_str());
    return 1;
  }
  if (text.find("\"metrics\"") == std::string::npos) {
    std::fprintf(stderr, "FAIL %s: missing top-level \"metrics\" array\n", path.c_str());
    ++failures;
  }
  for (const char* name : kRequiredMetrics) {
    if (text.find("\"" + std::string{name} + "\"") == std::string::npos) {
      std::fprintf(stderr, "FAIL %s: metric %s not present\n", path.c_str(), name);
      ++failures;
    }
  }
  for (const char* key : {"\"kind\"", "\"value\"", "\"buckets\"", "\"sum\"", "\"count\""}) {
    if (text.find(key) == std::string::npos) {
      std::fprintf(stderr, "FAIL %s: no %s field anywhere\n", path.c_str(), key);
      ++failures;
    }
  }
  return failures;
}

[[nodiscard]] int check_trace(const std::string& path) {
  const std::string text = read_file(path);
  int failures = 0;
  if (!JsonValidator{text}.valid()) {
    std::fprintf(stderr, "FAIL %s: not valid JSON\n", path.c_str());
    return 1;
  }
  if (text.find("\"traceEvents\"") == std::string::npos) {
    std::fprintf(stderr, "FAIL %s: missing \"traceEvents\" array\n", path.c_str());
    ++failures;
  }
  for (const char* key : {"\"ph\"", "\"ts\"", "\"dur\"", "\"pid\"", "\"tid\""}) {
    if (text.find(key) == std::string::npos) {
      std::fprintf(stderr, "FAIL %s: trace events missing %s\n", path.c_str(), key);
      ++failures;
    }
  }
  for (const char* span : kRequiredSpans) {
    if (text.find("\"name\": \"" + std::string{span} + "\"") == std::string::npos &&
        text.find("\"name\":\"" + std::string{span} + "\"") == std::string::npos) {
      std::fprintf(stderr, "FAIL %s: span \"%s\" not present\n", path.c_str(), span);
      ++failures;
    }
  }
  return failures;
}

}  // namespace

int main(int argc, char** argv) {
  std::string metrics_path;
  std::string trace_path;
  for (int i = 1; i + 1 < argc; i += 2) {
    const std::string_view flag = argv[i];
    if (flag == "--metrics") {
      metrics_path = argv[i + 1];
    } else if (flag == "--trace") {
      trace_path = argv[i + 1];
    } else {
      std::fprintf(stderr, "usage: tzgeo_obs_check [--metrics FILE] [--trace FILE]\n");
      return 2;
    }
  }
  if (metrics_path.empty() && trace_path.empty()) {
    std::fprintf(stderr, "usage: tzgeo_obs_check [--metrics FILE] [--trace FILE]\n");
    return 2;
  }
  int failures = 0;
  if (!metrics_path.empty()) failures += check_metrics(metrics_path);
  if (!trace_path.empty()) failures += check_trace(trace_path);
  if (failures == 0) std::printf("tzgeo_obs_check: all checks passed\n");
  return failures == 0 ? 0 : 1;
}
