// tzgeo command-line interface.
//
// The investigator-facing entry point: feed it a CSV of (author, utc_time)
// posts — or a persisted crawl dump — and get the crowd geolocation report,
// hemisphere analysis, or rest-day breakdown, without writing any code.
//
//   tzgeo_cli analyze    --input posts.csv [--dump] [--offset SECONDS]
//                        [--bootstrap N] [--no-flat-filter]
//   tzgeo_cli hemisphere --input posts.csv [--top N] [--year YYYY]
//   tzgeo_cli weekly     --input posts.csv
//   tzgeo_cli demo
//
// Reference time-zone profiles are built from the library's synthetic
// ground truth (scale 0.05); swap in your own labelled data for serious
// use (see examples/quickstart.cpp).
#include <cmath>
#include <cstdio>
#include <fstream>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "core/bootstrap.hpp"
#include "core/dossier.hpp"
#include "core/hemisphere.hpp"
#include "core/ingest.hpp"
#include "core/profile_builder.hpp"
#include "core/report.hpp"
#include "core/report_json.hpp"
#include "core/weekly.hpp"
#include "forum/calibration.hpp"
#include "forum/io.hpp"
#include "obs/health.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "synth/dataset.hpp"
#include "timezone/zone_db.hpp"
#include "util/strings.hpp"

using namespace tzgeo;

namespace {

struct Args {
  std::string command;
  std::map<std::string, std::string> options;  ///< --key value / --flag ""

  [[nodiscard]] bool has(const std::string& key) const { return options.contains(key); }
  [[nodiscard]] std::string get(const std::string& key, const std::string& fallback = "") const {
    const auto it = options.find(key);
    return it == options.end() ? fallback : it->second;
  }
  [[nodiscard]] std::int64_t get_int(const std::string& key, std::int64_t fallback) const {
    const auto it = options.find(key);
    if (it == options.end()) return fallback;
    const auto value = util::parse_int(it->second);
    if (!value) throw std::invalid_argument("--" + key + " expects an integer");
    return *value;
  }
};

[[nodiscard]] Args parse_args(int argc, char** argv) {
  Args args;
  if (argc > 1) args.command = argv[1];
  for (int i = 2; i < argc; ++i) {
    std::string token = argv[i];
    if (!util::starts_with(token, "--")) {
      throw std::invalid_argument("unexpected argument: " + token);
    }
    token = token.substr(2);
    // A value follows unless the next token is another flag or absent.
    if (i + 1 < argc && !util::starts_with(argv[i + 1], "--")) {
      args.options[token] = argv[++i];
    } else {
      args.options[token] = "";
    }
  }
  return args;
}

void print_usage() {
  std::printf(
      "tzgeo - time-zone geolocation of crowds from posting timestamps\n"
      "\n"
      "usage: tzgeo_cli <command> [options]\n"
      "\n"
      "commands:\n"
      "  analyze     geolocate the crowd of a posts CSV\n"
      "      --input FILE       author,utc_time CSV (or a crawl dump with --dump)\n"
      "      --dump             input is a persisted crawl dump (forum/io format)\n"
      "      --offset SECONDS   server-clock offset to subtract from display times\n"
      "      --bootstrap N      add N-resample confidence intervals\n"
      "      --no-flat-filter   keep flat (bot-like) profiles\n"
      "      --json             print machine-readable JSON instead of text\n"
      "  hemisphere  DST-based north/south classification of the top users\n"
      "      --input FILE --top N (default 5) --year YYYY (default 2016)\n"
      "  weekly      rest-day pattern breakdown of the placed crowd\n"
      "      --input FILE\n"
      "  dossier     full per-user readout (zone, hemisphere, rest days)\n"
      "      --input FILE [--author NAME | --top N (default 3)]\n"
      "  compare     component drift between two crawls of the same board\n"
      "      --before FILE --after FILE\n"
      "  demo        run a self-contained synthetic demonstration\n"
      "\n"
      "observability (any command):\n"
      "  --metrics-out FILE   write pipeline metrics on exit; *.json gets a JSON\n"
      "                       document, anything else Prometheus text exposition\n"
      "  --trace-out FILE     write the span trace in Chrome trace_event JSON\n"
      "                       (open in chrome://tracing or https://ui.perfetto.dev)\n"
      "  --healthz-out FILE   write the component health report (healthz JSON)\n");
}

[[nodiscard]] core::TimeZoneProfiles reference_zones() {
  std::vector<core::RegionalContribution> contributions;
  for (const auto& region : synth::table1_regions()) {
    synth::DatasetOptions options;
    options.scale = 0.05;
    const synth::Dataset dataset = synth::make_region_dataset(
        region, std::max<std::size_t>(2, region.active_users / 20), options);
    core::ActivityTrace trace;
    for (const auto& event : dataset.events) trace.add(event.user, event.time);
    core::ProfileBuildOptions build;
    build.binning = core::HourBinning::kLocal;
    build.zone = &tz::zone(region.zone);
    const core::ProfileSet profiles = core::build_profiles(trace, build);
    if (profiles.users.empty()) continue;
    contributions.push_back(core::make_contribution(
        region.name, tz::zone(region.zone).standard_offset_hours(), profiles,
        core::HourBinning::kLocal));
  }
  return core::TimeZoneProfiles::from_regions(contributions);
}

[[nodiscard]] core::ActivityTrace load_trace(const Args& args) {
  const std::string input = args.get("input");
  if (input.empty()) throw std::invalid_argument("--input FILE is required");
  if (args.has("dump")) {
    const forum::ScrapeDump dump = forum::dump_from_csv_file(input);
    std::fprintf(stderr, "loaded dump: %zu records (%zu malformed) from %s\n",
                 dump.records.size(), dump.malformed_posts, input.c_str());
    const auto offset = args.get_int("offset", 0);
    const auto posts = offset != 0 || !dump.records.empty()
                           ? forum::to_utc_posts(dump, offset)
                           : std::vector<forum::TimedPost>{};
    core::ActivityTrace trace;
    for (const auto& post : posts) trace.add(post.author, post.utc_time);
    return trace;
  }
  const core::IngestResult result = core::trace_from_csv_file(input);
  std::fprintf(stderr, "loaded %zu posts (%zu rejected rows) from %s\n", result.rows_ok,
               result.rows_rejected, input.c_str());
  return result.trace;
}

int run_analyze(const Args& args) {
  const core::ActivityTrace trace = load_trace(args);
  std::fprintf(stderr, "building reference profiles from synthetic ground truth...\n");
  const core::TimeZoneProfiles zones = reference_zones();
  const core::ProfileSet profiles = core::build_profiles(trace, {});
  std::fprintf(stderr, "active users (>=30 posts): %zu (below threshold: %zu)\n\n",
               profiles.users.size(), profiles.filtered_inactive);
  if (profiles.users.empty()) {
    std::printf("nothing to analyze: no user reaches the activity threshold\n");
    return 1;
  }

  core::GeolocationOptions options;
  options.apply_flat_filter = !args.has("no-flat-filter");

  if (args.has("bootstrap")) {
    core::BootstrapOptions bootstrap;
    bootstrap.resamples = static_cast<int>(args.get_int("bootstrap", 200));
    const core::BootstrapResult result =
        core::bootstrap_geolocation(profiles.users, zones, options, bootstrap);
    if (args.has("json")) {
      std::printf("%s\n", core::to_json(result).dump(2).c_str());
      return 0;
    }
    std::printf("%s\n", core::placement_chart("Crowd placement", result.point).c_str());
    std::printf("%s", core::describe_geolocation("Geolocation", result.point).c_str());
    std::printf("\n%s", core::describe_bootstrap("Bootstrap", result).c_str());
  } else {
    const core::GeolocationResult result =
        core::geolocate_crowd(profiles.users, zones, options);
    if (args.has("json")) {
      std::printf("%s\n", core::to_json(result).dump(2).c_str());
      return 0;
    }
    std::printf("%s\n", core::placement_chart("Crowd placement", result).c_str());
    std::printf("%s", core::describe_geolocation("Geolocation", result).c_str());
  }
  return 0;
}

int run_hemisphere(const Args& args) {
  const core::ActivityTrace trace = load_trace(args);
  core::HemisphereOptions options;
  options.year = static_cast<std::int32_t>(args.get_int("year", 2016));
  const auto top = static_cast<std::size_t>(args.get_int("top", 5));
  const auto ranked = core::classify_top_users(trace, top, options);
  std::printf("%s", core::describe_hemispheres(
                        "Hemisphere verdicts (" + std::to_string(top) + " most active users)",
                        ranked)
                        .c_str());
  return 0;
}

int run_weekly(const Args& args) {
  const core::ActivityTrace trace = load_trace(args);
  const core::TimeZoneProfiles zones = reference_zones();
  const core::ProfileSet profiles = core::build_profiles(trace, {});
  if (profiles.users.empty()) {
    std::printf("no user reaches the activity threshold\n");
    return 1;
  }
  const core::PlacementResult placement = core::place_crowd(profiles.users, zones);
  const core::RestPatternBreakdown breakdown =
      core::rest_pattern_breakdown(trace, placement);
  std::printf("rest-day patterns of the placed crowd:\n");
  std::printf("  saturday-sunday : %zu\n", breakdown.saturday_sunday);
  std::printf("  friday-saturday : %zu\n", breakdown.friday_saturday);
  std::printf("  thursday-friday : %zu\n", breakdown.thursday_friday);
  std::printf("  other           : %zu\n", breakdown.other);
  std::printf("  undetected      : %zu\n", breakdown.undetected);
  return 0;
}

int run_dossier(const Args& args) {
  const core::ActivityTrace trace = load_trace(args);
  const core::TimeZoneProfiles zones = reference_zones();
  if (args.has("author")) {
    const std::uint64_t user = core::user_id_of(args.get("author"));
    const auto& events = trace.events_of(user);
    if (events.empty()) {
      std::printf("author '%s' has no posts in this trace\n", args.get("author").c_str());
      return 1;
    }
    const core::UserDossier dossier = core::build_dossier(user, events, zones);
    if (args.has("json")) {
      std::printf("%s\n", core::to_json(dossier).dump(2).c_str());
    } else {
      std::printf("%s", core::describe_dossier(dossier).c_str());
    }
    return 0;
  }
  const auto top = static_cast<std::size_t>(args.get_int("top", 3));
  const auto dossiers = core::build_top_dossiers(trace, zones, top);
  if (args.has("json")) {
    util::JsonValue array = util::JsonValue::array();
    for (const auto& dossier : dossiers) array.push(core::to_json(dossier));
    std::printf("%s\n", array.dump(2).c_str());
    return 0;
  }
  for (const auto& dossier : dossiers) {
    std::printf("%s\n", core::describe_dossier(dossier).c_str());
  }
  return 0;
}

int run_compare(const Args& args) {
  const std::string before_path = args.get("before");
  const std::string after_path = args.get("after");
  if (before_path.empty() || after_path.empty()) {
    throw std::invalid_argument("compare needs --before FILE and --after FILE");
  }
  const core::TimeZoneProfiles zones = reference_zones();
  const auto analyze_one = [&zones](const std::string& path) {
    const core::IngestResult result = core::trace_from_csv_file(path);
    const core::ProfileSet profiles = core::build_profiles(result.trace, {});
    return core::geolocate_crowd(profiles.users, zones);
  };
  const core::GeolocationResult before = analyze_one(before_path);
  const core::GeolocationResult after = analyze_one(after_path);
  std::printf("%s\n", core::describe_geolocation("BEFORE (" + before_path + ")", before).c_str());
  std::printf("%s\n", core::describe_geolocation("AFTER  (" + after_path + ")", after).c_str());

  std::printf("component drift (matched by nearest center):\n");
  std::vector<bool> matched(after.components.size(), false);
  for (const auto& old_component : before.components) {
    double best = 1e9;
    std::size_t pick = after.components.size();
    for (std::size_t i = 0; i < after.components.size(); ++i) {
      if (matched[i]) continue;
      const double d = std::abs(after.components[i].mean_zone - old_component.mean_zone);
      if (d < best) {
        best = d;
        pick = i;
      }
    }
    if (pick < after.components.size() && best <= 3.0) {
      matched[pick] = true;
      const auto& new_component = after.components[pick];
      std::printf("  %s: weight %+.1f%%, center %+.2fh\n",
                  core::zone_label(old_component.nearest_zone).c_str(),
                  (new_component.weight - old_component.weight) * 100.0,
                  new_component.mean_zone - old_component.mean_zone);
    } else {
      std::printf("  %s: DISAPPEARED (weight was %.1f%%)\n",
                  core::zone_label(old_component.nearest_zone).c_str(),
                  old_component.weight * 100.0);
    }
  }
  for (std::size_t i = 0; i < after.components.size(); ++i) {
    if (!matched[i]) {
      std::printf("  %s: NEW component (weight %.1f%%)\n",
                  core::zone_label(after.components[i].nearest_zone).c_str(),
                  after.components[i].weight * 100.0);
    }
  }
  return 0;
}

int run_demo() {
  std::printf("generating a Dream-Market-like crowd and analyzing it...\n\n");
  synth::DatasetOptions options;
  options.seed = 4;
  const synth::Dataset crowd =
      synth::make_forum_crowd(synth::paper_forum("Dream Market"), options);
  core::ActivityTrace generated;
  for (const auto& event : crowd.events) generated.add(event.user, event.time);
  // Round-trip through the CSV codec: the demo then exercises (and traces)
  // the same ingest path an --input run takes.
  const core::ActivityTrace trace = core::trace_from_csv(core::trace_to_csv(generated)).trace;
  const core::TimeZoneProfiles zones = reference_zones();
  const core::ProfileSet profiles = core::build_profiles(trace, {});
  const core::GeolocationResult result = core::geolocate_crowd(profiles.users, zones);
  std::printf("%s\n", core::placement_chart("Demo crowd placement", result).c_str());
  std::printf("%s", core::describe_geolocation("Demo geolocation", result).c_str());
  return 0;
}

void write_file_or_die(const std::string& path, const std::string& content) {
  std::ofstream out{path, std::ios::binary};
  if (!out) throw std::runtime_error("cannot open " + path);
  out << content;
  if (!out) throw std::runtime_error("write failed for " + path);
}

/// Writes --metrics-out / --trace-out / --healthz-out files after the
/// command ran.  Metrics: JSON when the filename ends in .json,
/// Prometheus text exposition otherwise.  Trace: Chrome trace_event
/// JSON.  Healthz: the obs::Health machine-readable report.
void write_obs_outputs(const Args& args) {
  const std::string metrics_path = args.get("metrics-out");
  if (!metrics_path.empty()) {
    const bool json = util::ends_with(metrics_path, ".json");
    const auto& registry = obs::MetricsRegistry::global();
    write_file_or_die(metrics_path,
                      json ? registry.to_json().dump(2) + "\n" : registry.prometheus());
    std::fprintf(stderr, "wrote metrics (%s) to %s\n", json ? "json" : "prometheus",
                 metrics_path.c_str());
  }
  const std::string trace_path = args.get("trace-out");
  if (!trace_path.empty()) {
    write_file_or_die(trace_path, obs::TraceBuffer::global().to_chrome_trace() + "\n");
    std::fprintf(stderr, "wrote chrome trace to %s\n", trace_path.c_str());
  }
  const std::string healthz_path = args.get("healthz-out");
  if (!healthz_path.empty()) {
    write_file_or_die(healthz_path, obs::Health::global().to_json().dump(2) + "\n");
    std::fprintf(stderr, "wrote healthz report to %s\n", healthz_path.c_str());
  }
}

int run_command(const Args& args) {
  if (args.command == "analyze") return run_analyze(args);
  if (args.command == "hemisphere") return run_hemisphere(args);
  if (args.command == "weekly") return run_weekly(args);
  if (args.command == "dossier") return run_dossier(args);
  if (args.command == "compare") return run_compare(args);
  if (args.command == "demo") return run_demo();
  print_usage();
  return args.command.empty() || args.command == "help" ? 0 : 2;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const Args args = parse_args(argc, argv);
    const int status = run_command(args);
    write_obs_outputs(args);
    return status;
  } catch (const std::exception& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    return 1;
  }
}
